"""Declarative workload specifications.

A :class:`Workload` is the unit of work of the composable API: *what* to
compile (a registry algorithm, a C source, or an in-memory kernel), *where*
to run it (device, data format), and *how* to explore it (frame geometry,
iteration count, design-space knobs, constraints).  It is immutable and
hashable, so sessions can key caches on it, and every field is declarative —
building a workload never runs any stage of the flow beyond resolving the
kernel IR.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.api.registry import resolve_device
from repro.api.results import FlowOptions
from repro.dse.constraints import DseConstraints
from repro.frontend.extractor import extract_kernel_from_c
from repro.frontend.kernel_ir import StencilKernel
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import FpgaDevice

#: Single source of the flow's default knobs — Workload's field defaults
#: (and the CLI's argparse defaults) mirror FlowOptions' by construction,
#: so the surfaces cannot drift.
DEFAULT_OPTIONS = FlowOptions()
_DEFAULTS = DEFAULT_OPTIONS

#: The knobs shared 1:1 between FlowOptions and Workload.  from_options(),
#: options(), characterization_key(), and (via the FlowOptions codec)
#: to_dict()/from_dict() are all derived from this list, so a new
#: FlowOptions field (same name on Workload, codec added in
#: FlowOptions.to_dict/from_dict) flows through every surface.
_OPTION_FIELDS = tuple(f.name for f in fields(FlowOptions))

#: Option fields that do NOT shape the cone-characterization space (they
#: only parameterize the per-exploration estimates); every other shared
#: knob participates in the characterization cache key, so a newly added
#: knob conservatively splits the cache until listed here.
_NON_SHAPE_FIELDS = frozenset({"frame_width", "frame_height", "iterations",
                               "constraints",
                               "onchip_port_elements_per_cycle",
                               "stream", "chunk_rows", "stream_jobs"})


@dataclass(frozen=True)
class Workload:
    """A fully declarative, hashable description of one flow invocation.

    Exactly one of ``algorithm`` (registry name), ``c_source``, or ``kernel``
    must be given.  ``kernel_fingerprint`` is derived automatically and is
    what equality, hashing, and the session characterization cache use, so
    two workloads built from structurally identical kernels compare equal.
    """

    algorithm: Optional[str] = None
    c_source: Optional[str] = None
    c_function_name: Optional[str] = None
    kernel: Optional[StencilKernel] = field(default=None, compare=False)
    #: Accepts a full device model or a part name registered with a
    #: DeviceProvider (``device="xc6vlx760"``); names are resolved to the
    #: FpgaDevice at construction so keys/serialization see the full model.
    device: Union[FpgaDevice, str] = _DEFAULTS.device
    data_format: DataFormat = _DEFAULTS.data_format
    frame_width: int = _DEFAULTS.frame_width
    frame_height: int = _DEFAULTS.frame_height
    iterations: Optional[int] = None
    window_sides: Sequence[int] = tuple(_DEFAULTS.window_sides)
    max_depth: int = _DEFAULTS.max_depth
    max_cones_per_depth: int = _DEFAULTS.max_cones_per_depth
    calibration_windows_per_depth: int = _DEFAULTS.calibration_windows_per_depth
    synthesize_all: bool = _DEFAULTS.synthesize_all
    onchip_port_elements_per_cycle: int = _DEFAULTS.onchip_port_elements_per_cycle
    params: Optional[Tuple[Tuple[str, float], ...]] = None
    constraints: Optional[DseConstraints] = _DEFAULTS.constraints
    #: Backend names resolved through :mod:`repro.api.registry` when the
    #: explorer is built (see ``register_backend``).
    synthesizer: str = _DEFAULTS.synthesizer
    area_estimator: str = _DEFAULTS.area_estimator
    throughput_estimator: str = _DEFAULTS.throughput_estimator
    #: Out-of-core evaluation knobs (None = auto / engine default); they
    #: parameterize only the per-exploration evaluation, never the cone
    #: characterizations (listed in _NON_SHAPE_FIELDS).
    stream: Optional[bool] = _DEFAULTS.stream
    chunk_rows: Optional[int] = _DEFAULTS.chunk_rows
    stream_jobs: Optional[int] = _DEFAULTS.stream_jobs
    kernel_fingerprint: str = field(default="", init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "device", resolve_device(self.device))
        sources = [s is not None
                   for s in (self.algorithm, self.c_source, self.kernel)]
        if sum(sources) != 1:
            raise ValueError(
                "a Workload needs exactly one of: algorithm (registry name), "
                "c_source, or kernel")
        if self.frame_width < 1 or self.frame_height < 1:
            raise ValueError(
                f"frame must be at least 1x1 (got "
                f"{self.frame_width}x{self.frame_height})")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(
                f"chunk_rows must be >= 1 (got {self.chunk_rows})")
        if self.stream_jobs is not None and self.stream_jobs < 1:
            raise ValueError(
                f"stream_jobs must be >= 1 (got {self.stream_jobs})")
        object.__setattr__(self, "window_sides",
                           tuple(sorted(set(self.window_sides))))
        # Always normalize: an already-tuple params value may still be
        # unsorted or hold non-float values, which would break eq/hash and
        # the characterization-cache key.
        object.__setattr__(self, "params", _normalize_params(self.params))
        resolved = self._resolve_kernel()
        object.__setattr__(self, "_resolved_kernel", resolved)
        if self.iterations is None:
            object.__setattr__(self, "iterations", self._default_iterations())
        digest = hashlib.sha256(
            (resolved.fingerprint()
             + repr(self.params or ())).encode("utf-8")).hexdigest()[:16]
        object.__setattr__(self, "kernel_fingerprint", digest)

    # ------------------------------------------------------------------ #
    # construction helpers

    @classmethod
    def from_algorithm(cls, name: str, **overrides: Any) -> "Workload":
        """Build a workload from a registry algorithm name."""
        return cls(algorithm=name, **overrides)

    @classmethod
    def from_c(cls, source: str, function_name: Optional[str] = None,
               params: Optional[Mapping[str, float]] = None,
               **overrides: Any) -> "Workload":
        """Build a workload from a C source string."""
        return cls(c_source=source, c_function_name=function_name,
                   params=params, **overrides)

    @classmethod
    def from_kernel(cls, kernel: StencilKernel, **overrides: Any) -> "Workload":
        """Build a workload from an in-memory kernel IR."""
        return cls(kernel=kernel, **overrides)

    @classmethod
    def from_options(cls, kernel_or_c_source: Union[StencilKernel, str],
                     options: Optional[FlowOptions] = None,
                     params: Optional[Mapping[str, float]] = None,
                     c_function_name: Optional[str] = None) -> "Workload":
        """Translate the legacy ``(kernel, FlowOptions)`` surface."""
        options = options or FlowOptions()
        common = {name: getattr(options, name) for name in _OPTION_FIELDS}
        common["params"] = params
        if isinstance(kernel_or_c_source, StencilKernel):
            return cls(kernel=kernel_or_c_source, **common)
        return cls(c_source=kernel_or_c_source,
                   c_function_name=c_function_name, **common)

    def replace(self, **changes: Any) -> "Workload":
        """Return a copy with the given fields changed (fingerprint is
        recomputed).

        Supplying a new kernel source (``algorithm``/``c_source``/``kernel``)
        replaces the previous one (the other source fields are cleared), and
        — unless ``iterations`` is passed too — resets the iteration count
        to the new source's default rather than carrying over the old
        resolved value.
        """
        sources = {"algorithm", "c_source", "kernel"}
        supplied = {name for name in sources & changes.keys()
                    if changes[name] is not None}
        if supplied:
            for other in sources - changes.keys():
                changes[other] = None
            # kernel-scoped companions must not leak onto the new source:
            # stale params would silently override the new kernel's
            # same-named defaults (and split the characterization cache)
            for companion in ("iterations", "params", "c_function_name"):
                if companion not in changes:
                    changes[companion] = None
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # resolution

    def _resolve_kernel(self) -> StencilKernel:
        if self.kernel is not None:
            return self.kernel
        if self.algorithm is not None:
            from repro.algorithms import get_algorithm
            return get_algorithm(self.algorithm).kernel()
        return _extract_cached(self.c_source, self.c_function_name,
                               self.params)

    def _default_iterations(self) -> int:
        if self.algorithm is not None:
            from repro.algorithms import get_algorithm
            return get_algorithm(self.algorithm).default_iterations
        return 10

    def resolve_kernel(self) -> StencilKernel:
        """The kernel IR this workload compiles (resolved once, at build)."""
        return getattr(self, "_resolved_kernel")

    @property
    def name(self) -> str:
        """Kernel name — the human identifier of the workload."""
        return self.resolve_kernel().name

    def params_dict(self) -> Optional[Dict[str, float]]:
        return dict(self.params) if self.params else None

    def options(self) -> FlowOptions:
        """Project the exploration knobs onto the legacy options object."""
        return FlowOptions(**{name: getattr(self, name)
                              for name in _OPTION_FIELDS})

    def characterization_key(self) -> Tuple:
        """Cache key of the cone characterization this workload needs.

        Two workloads with the same key share cone shapes — and therefore
        synthesis/calibration work — regardless of frame geometry, iteration
        count, or constraints.
        """
        # The full (frozen, hashable) field values participate — notably the
        # complete device model, so two same-named device variants (a
        # what-if board sweep) never alias one explorer.
        return tuple([self.kernel_fingerprint]
                     + [getattr(self, name) for name in _OPTION_FIELDS
                        if name not in _NON_SHAPE_FIELDS])

    # ------------------------------------------------------------------ #
    # serialization

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inline kernels are serialized in full).

        The shared exploration knobs are encoded by the one
        :meth:`FlowOptions.to_dict` codec; only the kernel-source fields are
        added here.
        """
        data = self.options().to_dict()
        data.update({
            "algorithm": self.algorithm,
            "c_source": self.c_source,
            "c_function_name": self.c_function_name,
            "kernel": None if self.kernel is None else self.kernel.to_dict(),
            "params": None if self.params is None else dict(self.params),
        })
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Workload":
        options = FlowOptions.from_dict(data)
        kernel = data.get("kernel")
        return cls(
            algorithm=data.get("algorithm"),
            c_source=data.get("c_source"),
            c_function_name=data.get("c_function_name"),
            kernel=None if kernel is None else StencilKernel.from_dict(kernel),
            params=_normalize_params(data.get("params")),
            **{name: getattr(options, name) for name in _OPTION_FIELDS},
        )


@lru_cache(maxsize=64)
def _extract_cached(c_source: str, function_name: Optional[str],
                    params: Optional[Tuple[Tuple[str, float], ...]]
                    ) -> StencilKernel:
    """Memoized C-frontend extraction: replace()/from_dict of a C workload
    must not re-parse an unchanged source.  The shared kernel is treated as
    read-only, like every other resolved kernel."""
    return extract_kernel_from_c(c_source, function_name=function_name,
                                 scalar_params=dict(params) if params else None)


def _normalize_params(
        params: Optional[Union[Mapping[str, float],
                               Sequence[Tuple[str, float]]]]
        ) -> Optional[Tuple[Tuple[str, float], ...]]:
    """Normalize a parameter mapping to a sorted, hashable tuple of pairs."""
    if params is None:
        return None
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), float(v)) for k, v in items))
