"""The composable public API of the flow.

Three concepts:

* :class:`Workload` — a declarative, hashable description of one flow
  invocation (kernel or C source + device + data format + frame geometry +
  iterations + constraints);
* :class:`Pipeline` — the staged flow (``frontend`` → ``analyze`` →
  ``characterize`` → ``explore`` → ``pareto`` → ``codegen``) over one
  workload, each stage independently runnable and producing a serializable
  artifact;
* :class:`Session` — cached, batched execution: workloads sharing a
  characterization key reuse cone characterizations and calibrations instead
  of re-running the synthesizer, and :meth:`Session.run_many` schedules
  batches through a pluggable execution strategy
  (:mod:`repro.api.executor`): ``serial``, ``threads`` (default), or
  ``processes`` — which shards cold CPU-bound sweeps by characterization
  key across worker processes with deterministic assignment and
  byte-identical results.

Two supporting subsystems make the flow extensible and persistent:

* :mod:`repro.api.registry` — protocol-based extension points
  (:class:`SynthesizerBackend`, :class:`AreaEstimator`,
  :class:`ThroughputEstimator`, :class:`DeviceProvider`) behind a named
  registry (:func:`register_backend` / :func:`get_backend`), with plugin
  discovery via the ``REPRO_BACKENDS`` environment variable;
* :mod:`repro.api.store` — a disk-backed, content-addressed
  :class:`ArtifactStore` (``Session(store=...)``) that persists cone
  characterizations, calibration points, and flow results across processes.

Quick start::

    from repro.api import Session, Workload

    session = Session()
    result = session.run(Workload.from_algorithm("blur"))
    for point in result.pareto:
        print(point.summary())
"""

from repro.api.registry import (
    AreaEstimator,
    BackendError,
    CatalogDeviceProvider,
    DeviceProvider,
    SynthesizerBackend,
    ThroughputEstimator,
    backend_signature,
    create_backend,
    discover_backends,
    get_backend,
    list_backends,
    list_devices,
    register_backend,
    register_device,
    resolve_device,
    unregister_backend,
)
from repro.api.results import FlowOptions, FlowResult, ValidationResult
from repro.api.store import (
    ArtifactStore,
    CharacterizationStoreAdapter,
    default_store_path,
)
from repro.api.workload import Workload
from repro.api.executor import (
    EXECUTOR_NAMES,
    ExecutionStrategy,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    shard_workloads,
)
from repro.api.pipeline import (
    Pipeline,
    PipelineError,
    STAGE_NAMES,
    build_explorer,
    generate_vhdl_files,
)
from repro.api.session import (
    Session,
    SessionEvent,
    SessionStats,
    default_session,
)

__all__ = [
    "FlowOptions",
    "FlowResult",
    "ValidationResult",
    "Workload",
    "Pipeline",
    "PipelineError",
    "STAGE_NAMES",
    "build_explorer",
    "generate_vhdl_files",
    "Session",
    "SessionEvent",
    "SessionStats",
    "default_session",
    # registry (extension points)
    "SynthesizerBackend",
    "AreaEstimator",
    "ThroughputEstimator",
    "DeviceProvider",
    "CatalogDeviceProvider",
    "BackendError",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "create_backend",
    "backend_signature",
    "list_backends",
    "register_device",
    "resolve_device",
    "list_devices",
    "discover_backends",
    # persistent store
    "ArtifactStore",
    "CharacterizationStoreAdapter",
    "default_store_path",
    # batch execution strategies
    "EXECUTOR_NAMES",
    "ExecutionStrategy",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "shard_workloads",
]
