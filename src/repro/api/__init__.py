"""The composable public API of the flow.

Three concepts:

* :class:`Workload` — a declarative, hashable description of one flow
  invocation (kernel or C source + device + data format + frame geometry +
  iterations + constraints);
* :class:`Pipeline` — the staged flow (``frontend`` → ``analyze`` →
  ``characterize`` → ``explore`` → ``pareto`` → ``codegen``) over one
  workload, each stage independently runnable and producing a serializable
  artifact;
* :class:`Session` — cached, batched execution: workloads sharing a
  characterization key reuse cone characterizations and calibrations instead
  of re-running the synthesizer, and :meth:`Session.run_many` fans batches
  out over a thread pool.

Quick start::

    from repro.api import Session, Workload

    session = Session()
    result = session.run(Workload.from_algorithm("blur"))
    for point in result.pareto:
        print(point.summary())
"""

from repro.api.results import FlowOptions, FlowResult
from repro.api.workload import Workload
from repro.api.pipeline import (
    Pipeline,
    PipelineError,
    STAGE_NAMES,
    build_explorer,
    generate_vhdl_files,
)
from repro.api.session import (
    Session,
    SessionEvent,
    SessionStats,
    default_session,
)

__all__ = [
    "FlowOptions",
    "FlowResult",
    "Workload",
    "Pipeline",
    "PipelineError",
    "STAGE_NAMES",
    "build_explorer",
    "generate_vhdl_files",
    "Session",
    "SessionEvent",
    "SessionStats",
    "default_session",
]
