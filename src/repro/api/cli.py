"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``list``
    Show the registered algorithms (and, with ``--devices``, the device
    catalog).
``explore``
    Run the staged flow for one algorithm and print the Pareto set (or, with
    ``--json``, the full serialized :class:`FlowResult`).
``codegen``
    Generate the VHDL of a design point (best fitting by default) into a
    directory or list the files that would be produced.
``sweep``
    Batch-explore several algorithms / frame sizes / devices / data formats
    through one session, sharing cone characterizations, and report
    per-workload results plus session statistics.  Multi-device and
    multi-format scenarios (``--devices a,b --formats fixed16,fixed32``)
    evaluate their frontiers from one shared columnar architecture table
    (:mod:`repro.dse.engine`): the enumerated candidate space depends only
    on the shape knobs, so it is materialized once and re-costed per
    scenario instead of re-enumerated per workload.
``validate``
    Simulate the cone architecture on the workload's frame geometry and
    check it against the software golden model (``python -m repro
    validate blur --frames 640x480``): prints the equivalence evidence
    (interior max error, per-field digests, scalar-oracle bit-identity)
    and exits non-zero on a mismatch.  Also available service-side as
    ``submit --job validate``.
``cache``
    Inspect (``stats``), empty (``clear``), or dump (``export``) a
    persistent artifact store directory.
``serve``
    Run the long-lived exploration service (:mod:`repro.service`): one
    shared session behind an HTTP JSON job API that coalesces identical
    in-flight requests and dispatches compatible bursts as batched
    ``run_many`` calls.  ``--store`` gives the daemon a persistent cache;
    ``--port 0`` binds an ephemeral port (printed on startup).
``fleet``
    Run the worker-fleet tier (:mod:`repro.fleet`): a consistent-hash
    router fronting N exploration workers behind the same job API.
    ``--workers N`` spawns N in-process workers sharing one ``--store``
    (the warm-through-store cache tier); ``--worker URL`` (repeatable)
    attaches to already-running ``serve`` processes instead.
``submit``
    Send one workload to a running service (``--server URL``) or fleet
    router (``--fleet URL``), wait for the result, and print it like
    ``explore`` — or ``--no-wait`` to just queue it and print the job
    id.  Shed submissions (``503 + Retry-After``) are retried with
    capped backoff (``--retries``); ``--role`` names the requester's
    role for fleet admission control.  The submission carries this
    process's span context in ``X-Repro-Trace``, so the server-side
    trace joins the caller's; the receipt's trace id is printed for
    ``trace`` to fetch.
``trace``
    Fetch recorded traces from a running service or fleet router
    (:mod:`repro.obs`): list the trace index, or fetch one trace as
    JSONL (default) or Chrome ``trace_event`` JSON (``--chrome``; load
    in chrome://tracing or Perfetto).

``explore``, ``codegen``, and ``sweep`` accept ``--store [DIR]`` to persist
characterizations and results across invocations (default directory:
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so a rerun of the same command
completes with zero synthesizer invocations.  Devices and backends are
resolved through :mod:`repro.api.registry`; plugins named in the
``REPRO_BACKENDS`` environment variable are imported first, so their
synthesizers/estimators/devices are addressable from every subcommand.

``explore`` and ``sweep`` additionally accept ``--executor
{serial,threads,processes}`` and ``--jobs N`` to pick the batch scheduling
strategy (any strategy registered under the ``executor`` backend kind is
accepted).  Rule of thumb: ``processes`` wins on *cold*, CPU-bound sweeps of
several distinct kernels (it sidesteps the GIL by sharding the batch across
worker processes); ``threads`` (the default) is better for warm batches —
persistent-store hits are I/O-bound, and a warm ``processes`` run detects
the store hits and stays in-process anyway — and for single-kernel batches,
which share one characterization and cannot be sharded.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.api.registry import list_backends, list_devices, resolve_device
from repro.api.session import Session, SessionEvent
from repro.api.store import ArtifactStore, default_store_path
from repro.api.workload import DEFAULT_OPTIONS, Workload
from repro.dse.constraints import DseConstraints
from repro.ir.operators import DataFormat

#: argparse defaults are derived from the flow's single default source
_FRAME = f"{DEFAULT_OPTIONS.frame_width}x{DEFAULT_OPTIONS.frame_height}"
_DEVICE = DEFAULT_OPTIONS.device.name
_FORMAT = DEFAULT_OPTIONS.data_format.value


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (KeyError, ValueError) as error:
        # str(KeyError) is the repr of its argument (extra quotes); unwrap
        message = (error.args[0] if isinstance(error, KeyError) and error.args
                   else error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # e.g. `python -m repro ... | head`: die quietly like other CLIs
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


# ---------------------------------------------------------------------- #
# parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cone-based HLS flow for iterative stencil loops "
                    "(DAC 2013 reproduction).")
    from repro import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser(
        "list", help="list registered algorithms (and devices)")
    list_cmd.add_argument("--devices", action="store_true",
                          help="also list the FPGA device catalog")
    list_cmd.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON")
    list_cmd.set_defaults(handler=cmd_list)

    explore = commands.add_parser(
        "explore", help="explore the design space of one algorithm")
    _add_workload_arguments(explore)
    _add_executor_arguments(explore)
    explore.add_argument("--json", action="store_true",
                         help="emit the full FlowResult as JSON")
    explore.add_argument("-o", "--output", metavar="FILE",
                         help="write the JSON payload to FILE")
    explore.add_argument("--profile", action="store_true",
                         help="sample the exploration with the built-in "
                              "profiler and write flamegraph-ready JSON "
                              "(repro-profile.json)")
    explore.set_defaults(handler=cmd_explore)

    codegen = commands.add_parser(
        "codegen", help="generate VHDL for a design point")
    _add_workload_arguments(codegen)
    codegen.add_argument("--point", metavar="LABEL",
                         help="architecture label to generate "
                              "(default: best point fitting the device)")
    codegen.add_argument("--out", metavar="DIR",
                         help="directory to write the VHDL files into "
                              "(default: list files without writing)")
    codegen.add_argument("--json", action="store_true",
                         help="emit the file manifest as JSON")
    codegen.set_defaults(handler=cmd_codegen)

    sweep = commands.add_parser(
        "sweep", help="batch-explore algorithms x frame sizes x devices")
    sweep.add_argument("--algorithms", default="blur",
                       help="comma-separated registry names (default: blur)")
    sweep.add_argument("--frames", default=_FRAME,
                       help="comma-separated WxH frame sizes "
                            f"(default: {_FRAME})")
    sweep.add_argument("--devices", default=_DEVICE,
                       help="comma-separated device part names "
                            f"(default: {_DEVICE})")
    sweep.add_argument("--formats", default=_FORMAT,
                       help="comma-separated datapath number formats "
                            f"({', '.join(f.value for f in DataFormat)}; "
                            f"default: {_FORMAT}); multi-format frontiers "
                            "share one columnar architecture table")
    sweep.add_argument("--iterations", type=int, default=None,
                       help="iteration count override (default: per-algorithm)")
    sweep.add_argument("--windows", default=None,
                       help="comma-separated cone window sides")
    sweep.add_argument("--max-depth", type=int,
                       default=DEFAULT_OPTIONS.max_depth)
    sweep.add_argument("--max-cones", type=int,
                       default=DEFAULT_OPTIONS.max_cones_per_depth,
                       help="maximum cone instances per depth "
                            "(large values grow the candidate space; "
                            "combine with --stream)")
    sweep.add_argument("--stream", action="store_true", default=None,
                       help="force the out-of-core chunked evaluation for "
                            "every scenario (default: auto above the "
                            "engine's row threshold; streamed results "
                            "materialize only the Pareto frontier)")
    sweep.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                       help="rows materialized per streaming chunk")
    _add_executor_arguments(sweep)
    sweep.add_argument("--json", action="store_true",
                       help="emit per-workload summaries plus session stats "
                            "as JSON")
    sweep.add_argument("-o", "--output", metavar="FILE",
                       help="write the JSON payload to FILE")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress progress events on stderr")
    sweep.add_argument("--store", metavar="DIR", nargs="?",
                       const=default_store_path(), default=None,
                       help="persist characterizations/results under DIR "
                            "(default when DIR is omitted: "
                            f"{default_store_path()})")
    sweep.add_argument("--profile", action="store_true",
                       help="sample the sweep with the built-in profiler "
                            "and write flamegraph-ready JSON "
                            "(repro-profile.json)")
    sweep.set_defaults(handler=cmd_sweep)

    serve = commands.add_parser(
        "serve", help="run the long-lived exploration service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default: 8177; 0 binds an "
                            "ephemeral port, printed on startup)")
    serve.add_argument("--backend", default="local", metavar="NAME",
                       help="service backend from the registry "
                            "(default: local)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="largest run_many batch one dispatch may form "
                            "(default: 16)")
    serve.add_argument("--batch-window", type=float, default=0.05,
                       metavar="S",
                       help="seconds the scheduler lingers for a burst to "
                            "finish arriving before sealing a batch "
                            "(default: 0.05)")
    _add_executor_arguments(serve)
    serve.add_argument("--store", metavar="DIR", nargs="?",
                       const=default_store_path(), default=None,
                       help="persist characterizations/results under DIR "
                            "(default when DIR is omitted: "
                            f"{default_store_path()})")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress job/stage events on stderr")
    serve.add_argument("--max-pending", type=int, default=None, metavar="N",
                       help="bound the job queue at N pending jobs; a "
                            "saturated server sheds submissions with "
                            "503 + Retry-After (default: unbounded)")
    serve.add_argument("--worker-id", default=None, metavar="NAME",
                       help="stable worker identity reported to fleet "
                            "routers (default: worker-<pid>)")
    serve.add_argument("--announce", default=None, metavar="ROUTER_URL",
                       help="register this worker with a running fleet "
                            "router after binding")
    serve.set_defaults(handler=cmd_serve)

    fleet = commands.add_parser(
        "fleet", help="run a consistent-hash routed worker fleet")
    fleet.add_argument("--workers", type=int, default=2, metavar="N",
                       help="in-process workers to spawn (default: 2); "
                            "ignored when --worker URLs are given")
    fleet.add_argument("--worker", action="append", default=None,
                       metavar="[NAME=]URL",
                       help="attach to a running worker at URL instead of "
                            "spawning (repeatable; workers keep their own "
                            "lifecycle).  NAME fixes the worker's ring "
                            "identity — and therefore placement — across "
                            "router restarts (default: the URL)")
    fleet.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    fleet.add_argument("--port", type=int, default=None,
                       help="TCP port (default: 8177; 0 binds an "
                            "ephemeral port, printed on startup)")
    fleet.add_argument("--replicas", type=int, default=None, metavar="N",
                       help="virtual nodes per worker on the hash ring "
                            "(default: 64)")
    fleet.add_argument("--max-pending", type=int, default=None, metavar="N",
                       help="per-worker queue bound for spawned workers "
                            "(default: unbounded)")
    fleet.add_argument("--default-role", default="operator", metavar="ROLE",
                       help="admission role of submissions that name none "
                            "(default: operator; use guest for "
                            "multi-tenant fleets)")
    fleet.add_argument("--healthcheck-interval", type=float, default=1.0,
                       metavar="S",
                       help="seconds between worker healthchecks "
                            "(default: 1.0)")
    fleet.add_argument("--max-batch", type=int, default=16,
                       help="largest run_many batch per worker dispatch "
                            "(default: 16)")
    fleet.add_argument("--batch-window", type=float, default=0.05,
                       metavar="S",
                       help="per-worker batch linger window "
                            "(default: 0.05)")
    _add_executor_arguments(fleet)
    fleet.add_argument("--store", metavar="DIR", nargs="?",
                       const=default_store_path(), default=None,
                       help="shared persistent store of the spawned "
                            "workers — the fleet's warm-through cache "
                            "tier (default when DIR is omitted: "
                            f"{default_store_path()})")
    fleet.set_defaults(handler=cmd_fleet)

    validate = commands.add_parser(
        "validate", help="simulate one workload and check it against the "
                         "golden model")
    _add_workload_arguments(validate)
    validate.add_argument("--window", type=int, default=None, metavar="W",
                          help="cone window side to simulate "
                               "(default: the workload's largest)")
    validate.add_argument("--mode", default="region",
                          choices=["region", "expression"],
                          help="cone evaluation mode (default: region)")
    validate.add_argument("--json", action="store_true",
                          help="emit the full ValidationResult as JSON")
    validate.add_argument("-o", "--output", metavar="FILE",
                          help="write the JSON payload to FILE")
    validate.set_defaults(handler=cmd_validate)

    submit = commands.add_parser(
        "submit", help="submit one workload to a running service")
    _add_workload_arguments(submit, include_store=False)
    submit.add_argument("--server", default="http://127.0.0.1:8177",
                        metavar="URL",
                        help="service endpoint "
                             "(default: http://127.0.0.1:8177)")
    submit.add_argument("--fleet", default=None, metavar="URL",
                        help="fleet router endpoint (overrides --server)")
    submit.add_argument("--priority", default="batch",
                        choices=["interactive", "batch", "background"],
                        help="priority class (default: batch)")
    submit.add_argument("--job", default="explore",
                        choices=["explore", "validate"],
                        help="job class: explore the design space "
                             "(default) or validate the simulated "
                             "architecture against the golden model")
    submit.add_argument("--role", default=None, metavar="ROLE",
                        help="requester role for fleet admission control "
                             "(default: the router's default role)")
    submit.add_argument("--retries", type=int, default=4, metavar="N",
                        help="shed-retry budget: resubmissions after "
                             "503 + Retry-After before giving up "
                             "(default: 4; 0 disables)")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job timeout budget in seconds "
                             "(default: unbounded)")
    submit.add_argument("--no-wait", action="store_true",
                        help="queue the job and print its id instead of "
                             "waiting for the result")
    submit.add_argument("--json", action="store_true",
                        help="emit the full FlowResult as JSON")
    submit.add_argument("-o", "--output", metavar="FILE",
                        help="write the JSON payload to FILE")
    submit.set_defaults(handler=cmd_submit)

    trace_cmd = commands.add_parser(
        "trace", help="fetch recorded traces from a running service")
    trace_cmd.add_argument("trace_id", nargs="?", default=None,
                           help="trace id to fetch (omit to list the "
                                "server's trace index)")
    trace_cmd.add_argument("--server", default="http://127.0.0.1:8177",
                           metavar="URL",
                           help="service or fleet router endpoint "
                                "(default: http://127.0.0.1:8177)")
    trace_cmd.add_argument("--chrome", action="store_true",
                           help="emit Chrome trace_event JSON instead of "
                                "JSONL (load in chrome://tracing or "
                                "Perfetto)")
    trace_cmd.add_argument("--json", action="store_true",
                           help="emit the trace index as JSON (listing "
                                "mode only)")
    trace_cmd.add_argument("-o", "--output", metavar="FILE",
                           help="write the payload to FILE")
    trace_cmd.set_defaults(handler=cmd_trace)

    cache = commands.add_parser(
        "cache", help="inspect or maintain a persistent artifact store")
    cache_actions = cache.add_subparsers(dest="cache_command", required=True)
    for action, handler, description in (
            ("stats", cmd_cache_stats, "artifact counts and sizes"),
            ("clear", cmd_cache_clear, "delete the stored artifacts"),
            ("export", cmd_cache_export, "dump every artifact as JSON")):
        sub = cache_actions.add_parser(action, help=description)
        sub.add_argument("--store", metavar="DIR", default=None,
                         help="store directory (default: "
                              f"{default_store_path()})")
        if action != "clear":
            sub.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON")
            sub.add_argument("-o", "--output", metavar="FILE",
                             help="write the JSON payload to FILE")
        sub.set_defaults(handler=handler)

    return parser


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", default="threads", metavar="NAME",
                        help="batch scheduling strategy: serial, threads "
                             "(default), processes (cold CPU-bound sweeps), "
                             "or any registered executor backend")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker threads/processes for the batch — and, "
                             "with --stream, for the chunk-shard fan-out of "
                             "each streamed exploration (default: auto / "
                             "serial fold)")


def _add_workload_arguments(parser: argparse.ArgumentParser,
                            include_store: bool = True) -> None:
    parser.add_argument("algorithm", help="registry algorithm name "
                                          "(see `python -m repro list`)")
    parser.add_argument("--frame", "--frames", dest="frame", default=_FRAME,
                        metavar="WxH",
                        help=f"frame size (default: {_FRAME})")
    parser.add_argument("--iterations", type=int, default=None,
                        help="total iteration count "
                             "(default: the algorithm's)")
    parser.add_argument("--device", default=_DEVICE,
                        help=f"FPGA part name (default: {_DEVICE})")
    parser.add_argument("--format", default=_FORMAT,
                        choices=[f.value for f in DataFormat],
                        help=f"datapath number format (default: {_FORMAT})")
    parser.add_argument("--windows", default=None,
                        help="comma-separated cone window sides "
                             "(default: 1..9)")
    parser.add_argument("--max-depth", type=int,
                        default=DEFAULT_OPTIONS.max_depth,
                        help="maximum cone depth "
                             f"(default: {DEFAULT_OPTIONS.max_depth})")
    parser.add_argument("--max-cones", type=int,
                        default=DEFAULT_OPTIONS.max_cones_per_depth,
                        help="maximum cone instances per depth "
                             f"(default: {DEFAULT_OPTIONS.max_cones_per_depth})")
    parser.add_argument("--synthesize-all", action="store_true",
                        help="synthesize every cone instead of using the "
                             "Equation-1 estimate")
    parser.add_argument("--min-fps", type=float, default=None,
                        help="throughput constraint (frames per second)")
    parser.add_argument("--max-area-kluts", type=float, default=None,
                        help="area constraint (kLUTs)")
    parser.add_argument("--device-only", action="store_true",
                        help="keep only design points fitting the device")
    parser.add_argument("--stream", action="store_true", default=None,
                        help="force the out-of-core chunked evaluation "
                             "(default: auto above the engine's row "
                             "threshold; streamed results materialize "
                             "only the Pareto frontier)")
    parser.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                        help="rows materialized per streaming chunk "
                             "(default: the engine default)")
    if include_store:
        parser.add_argument("--store", metavar="DIR", nargs="?",
                            const=default_store_path(), default=None,
                            help="persist characterizations/results under "
                                 "DIR (default when DIR is omitted: "
                                 f"{default_store_path()})")
        parser.add_argument("--quiet", action="store_true",
                            help="suppress progress events on stderr")


# ---------------------------------------------------------------------- #
# argument helpers


def parse_frame(text: str) -> Tuple[int, int]:
    try:
        width, height = (int(part) for part in text.lower().split("x"))
    except ValueError:
        raise ValueError(f"invalid frame size {text!r}; expected WxH, "
                         f"e.g. 1024x768") from None
    if width < 1 or height < 1:
        raise ValueError(f"frame must be at least 1x1 (got {text})")
    return width, height


def parse_windows(text: Optional[str]) -> Optional[Tuple[int, ...]]:
    if text is None:
        return None
    return tuple(int(part) for part in text.split(",") if part.strip())


def _constraints_from(args: argparse.Namespace) -> Optional[DseConstraints]:
    if (args.min_fps is None and args.max_area_kluts is None
            and not args.device_only):
        return None
    return DseConstraints(
        min_frames_per_second=args.min_fps,
        max_area_luts=(None if args.max_area_kluts is None
                       else args.max_area_kluts * 1000.0),
        device_only=args.device_only,
    )


def _stream_jobs_from(args: argparse.Namespace) -> Optional[int]:
    """``--jobs`` doubles as the streamed chunk-shard fan-out width.

    Validated with the batch executor's own check so an invalid count gets
    the same ``max_workers`` diagnostic whichever layer would hit it first.
    """
    from repro.api.executor import validate_max_workers

    return validate_max_workers(getattr(args, "jobs", None))


def workload_from_args(args: argparse.Namespace) -> Workload:
    frame_width, frame_height = parse_frame(args.frame)
    windows = parse_windows(args.windows)
    keywords = dict(
        device=resolve_device(args.device),
        data_format=DataFormat(args.format),
        frame_width=frame_width,
        frame_height=frame_height,
        iterations=args.iterations,
        max_depth=args.max_depth,
        max_cones_per_depth=args.max_cones,
        synthesize_all=args.synthesize_all,
        constraints=_constraints_from(args),
        stream=args.stream,
        chunk_rows=args.chunk_rows,
        stream_jobs=_stream_jobs_from(args),
    )
    if windows is not None:
        keywords["window_sides"] = windows
    return Workload.from_algorithm(args.algorithm, **keywords)


def _session(args: argparse.Namespace) -> Session:
    store = getattr(args, "store", None)
    quiet = getattr(args, "quiet", False) or getattr(args, "json", False)
    # streamed explorations fan chunk shards through the same strategy
    # the batch scheduling picked (--executor), so `--stream --jobs N`
    # means N workers whichever layer ends up doing the work
    stream_executor = getattr(args, "executor", None)
    if quiet:
        return Session(store=store, stream_executor=stream_executor)
    return Session(on_event=_print_event, store=store,
                   stream_executor=stream_executor)


def _print_event(event: SessionEvent) -> None:
    if event.kind == "stage-finished":
        print(f"  [{event.workload.name}] {event.stage:<12} "
              f"{event.elapsed_s:7.3f}s", file=sys.stderr)
    elif event.kind == "cache-hit":
        print(f"  [{event.workload.name}] cache hit "
              f"({event.detail or 'characterization'})", file=sys.stderr)
    elif event.kind == "workload-failed":
        print(f"  [{event.workload.name}] FAILED: {event.detail}",
              file=sys.stderr)
    elif event.kind in ("job-queued", "job-coalesced", "job-finished",
                        "job-failed"):
        # service-mode lifecycle stream (the detail carries the job id)
        elapsed = ("" if event.elapsed_s is None
                   else f" {event.elapsed_s:7.3f}s")
        print(f"  [{event.workload.name}] {event.kind[4:]:<12} "
              f"{event.detail}{elapsed}", file=sys.stderr)


def _write_payload(payload: object, args: argparse.Namespace) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    output = getattr(args, "output", None)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {output}", file=sys.stderr)
    else:
        print(text)


# ---------------------------------------------------------------------- #
# subcommands


def cmd_list(args: argparse.Namespace) -> int:
    backends = list_backends()
    if args.json:
        payload = {
            "algorithms": {
                name: {"description": spec.description,
                       "default_iterations": spec.default_iterations,
                       "paper_section": spec.paper_section}
                for name, spec in sorted(ALGORITHMS.items())
            },
            "backends": backends,
        }
        if args.devices:
            payload["devices"] = {name: device.to_dict()
                                  for name, device in
                                  sorted(list_devices().items())}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("registered algorithms:")
    for name, spec in sorted(ALGORITHMS.items()):
        print(f"  {name:<10} {spec.description} "
              f"(default {spec.default_iterations} iterations)")
    print()
    print("registered backends:")
    for kind, names in backends.items():
        print(f"  {kind:<12} {', '.join(names) or '(none)'}")
    if args.devices:
        print()
        print("device catalog:")
        for name, device in sorted(list_devices().items()):
            print(f"  {name:<12} {device.family:<14} "
                  f"{device.slice_luts:>8} LUTs, "
                  f"{device.typical_clock_hz / 1e6:6.1f} MHz")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.obs.profile import maybe_profile

    workload = workload_from_args(args)
    session = _session(args)
    profiled = maybe_profile(args.profile)
    with profiled:
        result = session.run_many([workload], max_workers=args.jobs,
                                  executor=args.executor)[0]
    if profiled.output:
        print(f"profile written to {profiled.output}", file=sys.stderr)
    if args.json or args.output:
        _write_payload(result.to_dict(), args)
        return 0
    from repro.flow.report import flow_summary, pareto_table
    print(flow_summary(result.exploration))
    print()
    print(pareto_table(result.pareto))
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    import os

    workload = workload_from_args(args)
    session = _session(args)
    result = session.run(workload)
    point = (result.point_by_label(args.point) if args.point
             else result.best_fitting_point())
    if point is None:
        print("error: no design point fits the device; relax the "
              "constraints or pick --point explicitly", file=sys.stderr)
        return 1
    files = session.generate_vhdl(workload, point=point)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for name, code in sorted(files.items()):
            with open(os.path.join(args.out, name), "w",
                      encoding="utf-8") as handle:
                handle.write(code)
        print(f"wrote {len(files)} VHDL files for {point.label} "
              f"to {args.out}")
    elif args.json:
        print(json.dumps({"point": point.to_dict(),
                          "files": {name: len(code)
                                    for name, code in sorted(files.items())}},
                         indent=2, sort_keys=True))
    else:
        print(f"design point: {point.summary()}")
        for name, code in sorted(files.items()):
            print(f"  {name} ({len(code.splitlines())} lines)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    algorithms = [name.strip() for name in args.algorithms.split(",")
                  if name.strip()]
    frames = [parse_frame(part) for part in args.frames.split(",")
              if part.strip()]
    devices = [resolve_device(name.strip())
               for name in args.devices.split(",") if name.strip()]
    formats = [DataFormat(part.strip())
               for part in args.formats.split(",") if part.strip()]
    windows = parse_windows(args.windows)
    workloads: List[Workload] = []
    for name in algorithms:
        get_algorithm(name)  # fail fast on unknown names
        for device in devices:
            for data_format in formats:
                for frame_width, frame_height in frames:
                    keywords = dict(device=device,
                                    data_format=data_format,
                                    frame_width=frame_width,
                                    frame_height=frame_height,
                                    iterations=args.iterations,
                                    max_depth=args.max_depth,
                                    max_cones_per_depth=args.max_cones,
                                    stream=args.stream,
                                    chunk_rows=args.chunk_rows,
                                    stream_jobs=_stream_jobs_from(args))
                    if windows is not None:
                        keywords["window_sides"] = windows
                    workloads.append(Workload.from_algorithm(name, **keywords))

    from repro.obs.profile import maybe_profile

    session = _session(args)
    profiled = maybe_profile(args.profile)
    with profiled:
        results = session.run_many(workloads, max_workers=args.jobs,
                                   executor=args.executor)
    if profiled.output:
        print(f"profile written to {profiled.output}", file=sys.stderr)
    stats = session.stats

    summaries = []
    for workload, result in zip(workloads, results):
        best = result.best_fitting_point()
        summaries.append({
            "algorithm": workload.algorithm,
            "kernel": workload.name,
            "device": workload.device.name,
            "format": workload.data_format.value,
            "frame": [workload.frame_width, workload.frame_height],
            "iterations": workload.iterations,
            "design_points": len(result.design_points),
            "pareto_points": len(result.pareto),
            "synthesis_runs": result.exploration.synthesis_runs,
            "streaming": result.exploration.streaming,
            "best_fitting": None if best is None else best.to_dict(),
        })
    payload = {"workloads": summaries, "session": stats.to_dict()}

    if args.json or args.output:
        _write_payload(payload, args)
        return 0
    print(f"swept {len(workloads)} workloads "
          f"({len(algorithms)} algorithms x {len(frames)} frames x "
          f"{len(devices)} devices x {len(formats)} formats)")
    for summary in summaries:
        best = summary["best_fitting"]
        fps = ("-" if best is None
               else f"{best['performance']['frames_per_second']:8.2f} fps")
        print(f"  {summary['kernel']:<10} {summary['device']:<12} "
              f"{summary['format']:<8} "
              f"{summary['frame'][0]}x{summary['frame'][1]:<5} "
              f"{summary['design_points']:>5} points  best {fps}")
    print(f"synthesis runs: {stats.synthesis_runs} "
          f"(cache hits {stats.characterization_cache_hits}, "
          f"tool time avoided ~{stats.tool_runtime_avoided_s:.0f}s)")
    if session.store is not None:
        print(f"persistent store: {stats.store_disk_hits} disk hit(s), "
              f"{stats.store_writes} write(s) under {session.store.root}")
    return 0


# ---------------------------------------------------------------------- #
# service mode


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.api.registry import create_backend
    from repro.service.server import DEFAULT_PORT

    session = _session(args)
    server = create_backend("service", args.backend, session=session,
                            executor=args.executor,
                            max_workers=args.jobs,
                            max_batch=args.max_batch,
                            batch_window_s=args.batch_window,
                            max_pending=args.max_pending,
                            worker_id=args.worker_id)
    port = DEFAULT_PORT if args.port is None else args.port
    host, bound_port = server.serve_http(args.host, port)
    # stdout, flushed: the line tooling (scripts/service_smoke.py) parses
    # to discover an ephemeral --port 0 binding
    print(f"repro service listening on http://{host}:{bound_port}",
          flush=True)
    if session.store is not None:
        print(f"  persistent store: {session.store.root}", file=sys.stderr)
    print(f"  executor={args.executor} max_batch={args.max_batch} "
          f"(POST /shutdown or Ctrl-C drains and stops)", file=sys.stderr)
    if args.announce:
        from repro.service.client import ReproClient
        reply = ReproClient(args.announce).register(
            {"url": f"http://{host}:{bound_port}", "name": args.worker_id})
        print(f"  announced to fleet router {args.announce} "
              f"({reply.get('workers_alive')}/"
              f"{reply.get('workers_total')} workers alive)",
              file=sys.stderr)

    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not on the main thread (tests drive cmd_serve directly)
    try:
        server.wait()
    except KeyboardInterrupt:
        print("interrupt: draining queued jobs...", file=sys.stderr)
    server.close()
    print("repro service stopped", file=sys.stderr)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import signal

    from repro.fleet.admission import AdmissionPolicy
    from repro.fleet.ring import DEFAULT_REPLICAS
    from repro.fleet.router import FleetRouter
    from repro.service.server import DEFAULT_PORT

    policy = AdmissionPolicy(default_role=args.default_role)
    replicas = (DEFAULT_REPLICAS if args.replicas is None
                else args.replicas)
    if args.worker:
        specs = []
        for item in args.worker:
            # NAME=URL pins the ring identity; a bare URL names itself
            head = item.split("://", 1)[0]
            if "=" in head:
                name, url = item.split("=", 1)
                specs.append((name, url))
            else:
                specs.append(item)
        router = FleetRouter(
            specs, policy=policy, replicas=replicas,
            healthcheck_interval_s=args.healthcheck_interval,
            close_workers=False)
    else:
        router = FleetRouter.local(
            args.workers, store=args.store, policy=policy,
            max_pending=args.max_pending, replicas=replicas,
            healthcheck_interval_s=args.healthcheck_interval,
            executor=args.executor, max_workers=args.jobs,
            max_batch=args.max_batch, batch_window_s=args.batch_window)
    port = DEFAULT_PORT if args.port is None else args.port
    host, bound_port = router.serve_http(args.host, port)
    # stdout, flushed: scripts/fleet_smoke.py parses this line to discover
    # an ephemeral --port 0 binding
    print(f"repro fleet listening on http://{host}:{bound_port}",
          flush=True)
    counters = router.membership.counters()
    print(f"  {counters['workers_alive']}/{counters['workers_total']} "
          f"worker(s) alive, {replicas} ring replicas each, "
          f"default role {policy.default_role!r} "
          f"(POST /shutdown or Ctrl-C drains the fleet)", file=sys.stderr)
    if args.store and not args.worker:
        print(f"  shared persistent store: {args.store}", file=sys.stderr)

    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not on the main thread (tests drive cmd_fleet directly)
    try:
        router.wait()
    except KeyboardInterrupt:
        print("interrupt: draining the fleet...", file=sys.stderr)
    router.close()
    print("repro fleet stopped", file=sys.stderr)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    workload = workload_from_args(args)
    session = _session(args)
    result = session.validate(workload, window_side=args.window,
                              mode=args.mode)
    if args.json or args.output:
        _write_payload(result.to_dict(), args)
    else:
        print(result.summary())
    return 0 if result.passed else 1


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.api.results import ValidationResult
    from repro.obs import trace as obs_trace
    from repro.service.client import ReproClient
    from repro.service.jobs import ServiceError

    workload = workload_from_args(args)
    client = ReproClient(args.fleet or args.server, retries=args.retries)
    # root the trace in this process so the server-side spans join the
    # caller's trace id (propagated via the X-Repro-Trace header)
    obs_trace.auto_enable()
    try:
        with obs_trace.span("cli.submit", workload=workload.name):
            handle = client.submit(workload, priority=args.priority,
                                   timeout_s=args.timeout, role=args.role,
                                   job=args.job)
            if args.no_wait:
                print(handle.id)
                if handle.trace_id:
                    print(f"trace: {handle.trace_id}", file=sys.stderr)
                return 0
            result = handle.result(timeout=args.timeout)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if handle.trace_id:
        print(f"trace: {handle.trace_id} "
              f"(fetch with `python -m repro trace {handle.trace_id}`)",
              file=sys.stderr)
    if args.json or args.output:
        _write_payload(result.to_dict(), args)
        return 0
    if isinstance(result, ValidationResult):
        print(result.summary())
        return 0 if result.passed else 1
    from repro.flow.report import flow_summary, pareto_table
    print(flow_summary(result.exploration))
    print()
    print(pareto_table(result.pareto))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import trace as obs_trace
    from repro.service.client import ReproClient
    from repro.service.jobs import ServiceError

    client = ReproClient(args.server)
    try:
        payload = client.trace(args.trace_id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.trace_id is None:
        if args.json or args.output:
            _write_payload(payload, args)
            return 0
        traces = payload.get("traces", [])
        if not traces:
            print("no traces recorded")
            return 0
        for entry in traces:
            print(f"{entry['trace_id']}  {entry['spans']:>4} span(s)  "
                  f"{entry['wall_s'] * 1e3:9.1f} ms  root {entry['root']}")
        return 0
    spans = payload.get("spans", [])
    if args.chrome:
        text = json.dumps(obs_trace.to_chrome_trace(spans),
                          indent=2, sort_keys=True) + "\n"
    else:
        text = obs_trace.to_jsonl(spans)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(spans)} span(s) to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


# ---------------------------------------------------------------------- #
# cache maintenance


def _store_from(args: argparse.Namespace) -> ArtifactStore:
    return ArtifactStore(args.store or default_store_path())


def cmd_cache_stats(args: argparse.Namespace) -> int:
    description = _store_from(args).describe()
    if args.json or args.output:
        _write_payload(description, args)
        return 0
    print(f"store {description['root']} (schema v{description['schema']}):")
    for kind, entry in description["kinds"].items():
        print(f"  {kind:<18} {entry['artifacts']:>5} artifact(s)  "
              f"{entry['bytes']:>9} bytes")
    print(f"  {'total':<18} {description['artifacts']:>5} artifact(s)  "
          f"{description['bytes']:>9} bytes")
    if description["stale_artifacts"]:
        print(f"  {'stale':<18} "
              f"{description['stale_artifacts']:>5} file(s)      "
              f"{description['stale_bytes']:>9} bytes "
              f"(old schemas/interrupted writes; reclaimed by `cache clear`)")
    return 0


def cmd_cache_clear(args: argparse.Namespace) -> int:
    store = _store_from(args)
    removed = store.clear()
    print(f"removed {removed} artifact(s) from {store.root}")
    return 0


def cmd_cache_export(args: argparse.Namespace) -> int:
    _write_payload(_store_from(args).export_payload(), args)
    return 0
