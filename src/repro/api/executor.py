"""Pluggable batch-execution strategies for :meth:`Session.run_many`.

The characterization/exploration stages are pure Python, so a thread pool
parallelizes only their (few) lock-free gaps — multi-kernel sweeps are
effectively GIL-serialized.  This module turns batch scheduling into an
extension point with three built-in strategies, registered under the
``executor`` kind of :mod:`repro.api.registry`:

``serial``
    Run the batch in input order on the calling thread.  The baseline every
    other strategy must agree with byte-for-byte.
``threads``
    The classic shared-session thread pool: workloads sharing a
    characterization key serialize on the session's per-key locks, distinct
    kernels overlap wherever the interpreter allows.  Best when the batch is
    warm (persistent-store hits are I/O bound) or small.
``processes``
    Shard the batch by characterization key across a
    ``ProcessPoolExecutor``: each worker process runs its shard through its
    own :class:`~repro.api.session.Session` and ships the serialized
    :class:`~repro.api.results.FlowResult`\\ s back; characterizations and
    results are merged through the shared :class:`~repro.api.store
    .ArtifactStore` (when the parent session has one) and the results are
    promoted into the parent session's memory cache.  Best for cold,
    CPU-bound sweeps of several distinct kernels.

Scheduling is deterministic regardless of strategy and worker count:
results always come back in input order, and shard assignment depends only
on the *set* of characterization keys in the batch (see
:func:`shard_workloads`) — not on submission order, pool size, or timing.

Out-of-tree strategies plug in like every other backend::

    from repro.api import register_backend

    register_backend("executor", "slurm", SlurmExecutor)
    session.run_many(workloads, executor="slurm")

A strategy factory is invoked with no arguments and must return an object
with ``run_batch(session, workloads, max_workers=None) -> List[FlowResult]``
(see :class:`ExecutionStrategy`).  Strategies may additionally expose the
optional ``map_tasks(fn, payloads, max_workers=None)`` capability — a plain
deterministic ``map`` over picklable payloads used by the streaming
exploration engine (:mod:`repro.dse.stream`) to fan chunk shards out; a
strategy without it still works everywhere, callers just fall back to an
in-process loop.

The ``processes`` strategy resolves workloads inside fresh worker processes,
so their kernels/backends must be importable there: registry algorithms,
C-source and inline kernels always are (they serialize in full); custom
backends registered at runtime are visible under the default ``fork`` start
method on POSIX, while spawn-based platforms need them importable via the
``REPRO_BACKENDS`` plugin mechanism.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.api.registry import register_backend
from repro.api.results import FlowResult
from repro.api.workload import Workload
from repro.obs import trace as obs_trace

if TYPE_CHECKING:  # imported lazily at runtime to avoid a session cycle
    from repro.api.session import Session

#: The built-in strategy names, in documentation order.
EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "threads", "processes")


@runtime_checkable
class ExecutionStrategy(Protocol):
    """What :meth:`Session.run_many` needs from a batch executor."""

    #: Human-readable strategy name (diagnostics only).
    name: str

    def run_batch(self, session: "Session", workloads: Sequence[Workload],
                  max_workers: Optional[int] = None) -> List[FlowResult]:
        """Run every workload through ``session``; results in input order."""
        ...


def resolve_strategy(executor: Union[str, ExecutionStrategy, None]
                     ) -> ExecutionStrategy:
    """Resolve ``run_many``'s ``executor`` argument to a strategy instance.

    ``None`` means the default (``threads``); a string is looked up under
    the ``executor`` kind of :mod:`repro.api.registry`; a strategy object
    passes through unchanged.  The one hand-off point shared by
    :meth:`Session.run_many` and the service scheduler
    (:mod:`repro.service.scheduler`), so both surfaces accept exactly the
    same executor names — and a long-lived server validates its configured
    name at startup instead of on the first burst.
    """
    if executor is None:
        executor = "threads"
    if isinstance(executor, str):
        from repro.api.registry import create_backend

        return create_backend("executor", executor)
    return executor


def validate_max_workers(max_workers: Optional[int]) -> Optional[int]:
    """Reject worker counts that would otherwise be silently "repaired".

    ``None`` means "size the pool automatically"; anything else must be a
    positive integer — ``0``, negatives, bools, and fractional counts are
    configuration errors, not requests for a default.
    """
    if max_workers is None:
        return None
    if isinstance(max_workers, bool) or not isinstance(max_workers, int):
        raise ValueError(
            f"max_workers must be a positive integer or None (got "
            f"{max_workers!r})")
    if max_workers < 1:
        raise ValueError(
            f"max_workers must be >= 1 (got {max_workers}); pass None to "
            f"size the worker pool from os.cpu_count()")
    return max_workers


def resolve_worker_count(max_workers: Optional[int], batch_size: int) -> int:
    """The effective pool size for a batch (validated, auto-sized, capped)."""
    validate_max_workers(max_workers)
    if max_workers is None:
        max_workers = min(batch_size, max(2, (os.cpu_count() or 2)))
    return max(1, min(max_workers, batch_size))


def shard_workloads(workloads: Sequence[Workload],
                    shard_count: int) -> List[List[int]]:
    """Deterministically assign batch indices to at most ``shard_count``
    shards.

    Workloads sharing a characterization key land in the same shard (they
    share cone characterizations, so splitting them would duplicate the
    expensive synthesis/calibration work in two processes).  Key groups are
    ordered largest-first with ties broken by the key's deterministic repr,
    then greedily packed onto the least-loaded shard — a function of the
    *multiset of keys only*, so shuffling the submission order, changing the
    strategy, or resizing the pool never changes which keys run together.
    Within each shard, indices keep input order.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1 (got {shard_count})")
    groups: Dict[Tuple, List[int]] = {}
    for index, workload in enumerate(workloads):
        groups.setdefault(workload.characterization_key(), []).append(index)
    ordered = sorted(groups.items(),
                     key=lambda item: (-len(item[1]), repr(item[0])))
    shards: List[List[int]] = [[] for _ in range(min(shard_count,
                                                     len(groups)))]
    loads = [0] * len(shards)
    for _key, indices in ordered:
        target = loads.index(min(loads))  # first least-loaded: deterministic
        shards[target].extend(indices)
        loads[target] += len(indices)
    for shard in shards:
        shard.sort()
    return shards


# ---------------------------------------------------------------------- #
# built-in strategies


class SerialExecutor:
    """Run the batch sequentially on the calling thread (the baseline)."""

    name = "serial"

    def run_batch(self, session: "Session", workloads: Sequence[Workload],
                  max_workers: Optional[int] = None) -> List[FlowResult]:
        validate_max_workers(max_workers)
        return [session.run(workload) for workload in workloads]

    def map_tasks(self, fn, payloads: Sequence[Any],
                  max_workers: Optional[int] = None) -> List[Any]:
        """Apply ``fn`` to every payload in input order, in-process."""
        validate_max_workers(max_workers)
        return [fn(payload) for payload in payloads]


class ThreadExecutor:
    """Fan the batch out over a shared-session thread pool."""

    name = "threads"

    def run_batch(self, session: "Session", workloads: Sequence[Workload],
                  max_workers: Optional[int] = None) -> List[FlowResult]:
        workers = resolve_worker_count(max_workers, len(workloads))
        if workers <= 1 or len(workloads) == 1:
            return [session.run(workload) for workload in workloads]
        # contextvars do not follow work into pool threads: capture the
        # batch's trace context here and re-enter it around each run, so
        # per-workload spans parent under the run_many span
        context = obs_trace.context_payload()

        def traced_run(workload: Workload) -> FlowResult:
            with obs_trace.adopt(context):
                return session.run(workload)

        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="repro-session") as pool:
            return list(pool.map(traced_run, workloads))

    def map_tasks(self, fn, payloads: Sequence[Any],
                  max_workers: Optional[int] = None) -> List[Any]:
        """Apply ``fn`` over a thread pool; results in input order."""
        workers = resolve_worker_count(max_workers, len(payloads))
        if workers <= 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="repro-map") as pool:
            return list(pool.map(fn, payloads))


class ProcessExecutor:
    """Shard the batch by characterization key across worker processes.

    Workloads the parent session can already serve cheaply are answered
    in-process — a full result in the in-memory caches or the persistent
    store, or an in-memory explorer whose characterization the workload
    would reuse (a worker process could not see it and would re-synthesize
    from scratch).  A warm rerun therefore forks nothing and takes the
    exact same code path as :class:`SerialExecutor`, and repeated
    in-session batches never pay pool startup.  Only the cold remainder is
    sharded; each
    worker process runs its shard through a fresh session pointed at the
    parent's store directory, so characterizations and results written there
    are immediately reusable by the parent and by later runs.  The workers'
    session statistics are folded into the parent's and every shipped result
    is promoted into the parent's in-memory cache.
    """

    name = "processes"

    def __init__(self, start_method: Optional[str] = None) -> None:
        self._start_method = start_method

    def _context(self):
        if self._start_method is None:
            return None
        import multiprocessing

        return multiprocessing.get_context(self._start_method)

    def run_batch(self, session: "Session", workloads: Sequence[Workload],
                  max_workers: Optional[int] = None) -> List[FlowResult]:
        workers = resolve_worker_count(max_workers, len(workloads))
        results: List[Optional[FlowResult]] = [None] * len(workloads)

        cold: List[int] = []
        for index, workload in enumerate(workloads):
            if session._prefers_in_process(workload):
                results[index] = session.run(workload)
            else:
                cold.append(index)
        if not cold:
            return results  # fully warm: nothing forked

        shards = shard_workloads([workloads[i] for i in cold],
                                 workers if workers > 1 else 1)
        if workers <= 1 or len(shards) <= 1:
            # one shard would only add fork/pickle overhead: run in-process
            for index in cold:
                results[index] = session.run(workloads[index])
            return results

        store = session.store
        store_root = store.root if store is not None else None
        failures: List[Tuple[int, BaseException]] = []
        trace_context = obs_trace.context_payload()
        with ProcessPoolExecutor(max_workers=len(shards),
                                 mp_context=self._context()) as pool:
            futures = []
            for shard in shards:
                indices = [cold[i] for i in shard]
                payloads = [workloads[i].to_dict() for i in indices]
                futures.append((indices,
                                pool.submit(_run_shard, payloads,
                                            store_root, trace_context)))
            # Consume every shard before re-raising a failure, so the
            # statistics (and store artifacts) of completed shards are
            # never lost to one bad workload.
            for indices, future in futures:
                (shard_results, stats, elapsed, failure,
                 shard_spans) = future.result()
                session._absorb_child_stats(stats)
                obs_trace.absorb(shard_spans)
                for index, payload, spent in zip(indices, shard_results,
                                                 elapsed):
                    workload = workloads[index]
                    session._emit_batch_event("workload-started", workload)
                    results[index] = session._adopt_result(
                        workload, FlowResult.from_dict(payload))
                    session._emit_batch_event("workload-finished", workload,
                                              elapsed_s=spent)
                if failure is not None:
                    position, error, spent = failure
                    index = indices[position]
                    if not stats.get("workloads_failed"):
                        # the workload died before the child session could
                        # account it (e.g. deserialization): count it here
                        session._absorb_child_stats({"workloads_failed": 1})
                    session._emit_batch_event("workload-started",
                                              workloads[index])
                    session._emit_batch_event("workload-failed",
                                              workloads[index],
                                              elapsed_s=spent,
                                              detail=str(error))
                    failures.append((index, error))
        if failures:
            # match serial/threads semantics: the earliest failure in input
            # order is re-raised after the batch completes scheduling
            failures.sort(key=lambda entry: entry[0])
            raise failures[0][1]
        return results

    def map_tasks(self, fn, payloads: Sequence[Any],
                  max_workers: Optional[int] = None) -> List[Any]:
        """Apply ``fn`` over a process pool; results in input order.

        ``fn`` and every payload must be picklable (module-level function,
        plain-data arguments).  A single payload (or a one-worker pool)
        runs in-process — forking would only add pickle overhead.
        """
        workers = resolve_worker_count(max_workers, len(payloads))
        if workers <= 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=self._context()) as pool:
            return list(pool.map(fn, payloads))


#: One failed shard entry: (position within the shard, the exception, the
#: seconds spent on the failing workload).
ShardFailure = Optional[Tuple[int, BaseException, float]]


def _run_shard(workload_payloads: List[Dict[str, Any]],
               store_root: Optional[str],
               trace_context: Optional[Dict[str, Any]] = None
               ) -> Tuple[List[Dict[str, Any]], Dict[str, Any], List[float],
                          ShardFailure, List[Dict[str, Any]]]:
    """Worker-process entry point: run one shard through a fresh session.

    Ships everything back as plain JSON-ready dicts — the parent
    reconstructs :class:`FlowResult` objects and folds the statistics, so
    the only non-builtin pickled across the process boundary is a failing
    workload's exception.  A failure aborts the rest of the shard (like the
    serial path) but is *returned*, not raised, so the shard's completed
    results and its session statistics survive the error.

    With ``trace_context`` (the parent's span handoff payload), the shard
    runs under an ``executor.shard`` span parented into the caller's trace;
    worker-side spans cannot reach the parent's recorder, so they are
    captured locally and shipped back as the last tuple element for the
    parent to re-anchor with :func:`repro.obs.trace.absorb`.
    """
    from repro.api.session import Session

    session = Session(store=store_root)
    results: List[Dict[str, Any]] = []
    elapsed: List[float] = []
    failure: ShardFailure = None

    def execute() -> None:
        nonlocal failure
        for position, payload in enumerate(workload_payloads):
            started = time.perf_counter()
            try:
                workload = Workload.from_dict(payload)
                results.append(session.run(workload).to_dict())
            except Exception as error:
                failure = (position, error, time.perf_counter() - started)
                break
            elapsed.append(time.perf_counter() - started)

    spans: List[Dict[str, Any]] = []
    if trace_context is not None:
        with obs_trace.capture(spans), obs_trace.adopt(trace_context):
            with obs_trace.span("executor.shard",
                                workloads=len(workload_payloads)):
                execute()
    else:
        execute()
    return results, session.stats.to_dict(), elapsed, failure, spans


register_backend("executor", SerialExecutor.name, SerialExecutor)
register_backend("executor", ThreadExecutor.name, ThreadExecutor)
register_backend("executor", ProcessExecutor.name, ProcessExecutor)
