"""Pluggable backend registry: the flow's extension points.

Every component the flow used to hardwire — the synthesis backend standing in
for ISE/Vivado, the Equation-1 area estimator, the throughput model, and the
FPGA device catalog — is resolved here by *name*.  A :class:`Workload` names
its backends declaratively (``synthesizer="analytic"``,
``device="xc6vlx760"``); :func:`repro.api.pipeline.build_explorer` turns those
names into instances through this registry, so a new backend (a real Vivado
driver, an ML area model, another device family) plugs in without touching a
single ``repro`` module::

    from repro.api import register_backend, Session, Workload

    register_backend("synthesizer", "vivado", VivadoDriver)
    result = Session().run(
        Workload.from_algorithm("blur", synthesizer="vivado"))

Backends are registered under one of four *kinds*:

``synthesizer``
    Factory ``(device, library) ->`` :class:`SynthesizerBackend`.
``area``
    Factory ``(library) ->`` :class:`AreaEstimator` (the per-depth-family
    Equation-1 role).
``throughput``
    Factory ``(device, data_format, readonly_components,
    onchip_port_elements_per_cycle) ->`` :class:`ThroughputEstimator`.
``device``
    Factory ``() ->`` :class:`DeviceProvider`; the provider's devices become
    resolvable by part name through :func:`resolve_device`.
``executor``
    Factory ``() ->`` batch-execution strategy for
    :meth:`repro.api.Session.run_many` (``run_batch(session, workloads,
    max_workers=None)``); the built-ins (``serial``/``threads``/
    ``processes``) live in :mod:`repro.api.executor`.
``service``
    Factory ``(session=..., executor=..., max_batch=..., ...) ->`` a
    long-lived exploration server exposing the job API (``submit`` /
    ``status`` / ``result`` / ``stats`` / ``healthz``); the built-in
    (``local``, :class:`repro.service.server.ReproServer`) lives in
    :mod:`repro.service` and backs ``python -m repro serve``; ``fleet``
    (:class:`repro.fleet.router.FleetRouter`) fronts N of those workers
    behind the same job API and backs ``python -m repro fleet``.  An
    out-of-tree deployment (a gRPC frontend, a queue-backed farm) plugs
    in by registering a factory with the same surface.

Factories are invoked with keyword arguments only, so the built-in classes
(:class:`repro.synth.Synthesizer`, :class:`repro.estimation.RegisterAreaModel`,
:class:`repro.estimation.ThroughputModel`) serve as their own factories.

Out-of-tree discovery follows the entry-point idiom without requiring
packaging metadata: the ``REPRO_BACKENDS`` environment variable names modules
(comma- or ``os.pathsep``-separated) that are imported on first registry
access; a module-level ``register_repro_backends()`` hook, when present, is
called after import.  Registering at module import time works too.
"""

from __future__ import annotations

import importlib
import os
import threading
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.estimation.area_model import (
    AreaEstimate,
    CalibrationPoint,
    RegisterAreaModel,
)
from repro.estimation.throughput_model import (
    ArchitecturePerformance,
    ThroughputModel,
)
from repro.synth.fpga_device import DEVICE_CATALOG, FpgaDevice
from repro.synth.synthesizer import SynthesisReport, Synthesizer

#: Environment variable listing plugin modules to import before the first
#: registry lookup (comma- or os.pathsep-separated module paths).
DISCOVERY_ENV_VAR = "REPRO_BACKENDS"

#: The extension-point kinds the registry knows.
BACKEND_KINDS: Tuple[str, ...] = ("synthesizer", "area", "throughput",
                                  "device", "executor", "service")


class BackendError(KeyError):
    """Raised for unknown backend kinds/names and duplicate registrations."""

    def __str__(self) -> str:  # KeyError repr-quotes its argument; don't
        return self.args[0] if self.args else ""


# ---------------------------------------------------------------------- #
# protocols


@runtime_checkable
class SynthesizerBackend(Protocol):
    """What the flow needs from a synthesis backend (the ISE/Vivado role).

    Besides synthesizing one cone datapath, a backend keeps the two counters
    the session accounting folds into :class:`repro.api.SessionStats`.
    """

    #: Number of synthesis runs performed by this backend instance.
    runs: int
    #: Cumulative tool CPU time of those runs (seconds).
    total_tool_runtime_s: float

    def synthesize(self, graph: Any) -> SynthesisReport:
        """Synthesize one :class:`~repro.ir.dfg.DataflowGraph`."""
        ...


@runtime_checkable
class AreaEstimator(Protocol):
    """The Equation-1 role: area prediction for one depth family of cones."""

    def calibrate(self, points: Sequence[CalibrationPoint]) -> float:
        """Fit the model from two or more reference syntheses."""
        ...

    def estimate_series(self, register_counts: Mapping[int, int]
                        ) -> List[AreaEstimate]:
        """Estimate the area of every cone in the family."""
        ...


@runtime_checkable
class ThroughputEstimator(Protocol):
    """Frame-level performance estimation of one cone architecture."""

    def evaluate(self, architecture: Any,
                 cone_performance: Mapping[int, Any],
                 frame_width: int, frame_height: int
                 ) -> ArchitecturePerformance:
        ...


@runtime_checkable
class DeviceProvider(Protocol):
    """A source of FPGA device models, keyed by part name."""

    def devices(self) -> Mapping[str, FpgaDevice]:
        ...


class CatalogDeviceProvider:
    """A :class:`DeviceProvider` over a plain part-name -> device mapping."""

    def __init__(self, catalog: Optional[Mapping[str, FpgaDevice]] = None
                 ) -> None:
        self._catalog: Dict[str, FpgaDevice] = dict(catalog or {})

    def add(self, device: FpgaDevice) -> None:
        self._catalog[device.name] = device

    def devices(self) -> Mapping[str, FpgaDevice]:
        return dict(self._catalog)


# ---------------------------------------------------------------------- #
# the registry


_registry_lock = threading.RLock()
_backends: Dict[str, Dict[str, Callable[..., Any]]] = {
    kind: {} for kind in BACKEND_KINDS}
#: Device-provider instances, created once per registered factory.
_provider_instances: Dict[str, DeviceProvider] = {}
#: Serializes plugin discovery separately from _registry_lock: imports must
#: never run under the registry lock (Python's per-module import lock would
#: invert against it), but concurrent first lookups must still wait for the
#: plugins to finish registering.  Re-entrant, so a plugin whose import
#: calls back into the registry cannot self-deadlock.
_discovery_lock = threading.RLock()
_discovered = False


def _check_kind(kind: str) -> str:
    if kind not in BACKEND_KINDS:
        raise BackendError(
            f"unknown backend kind {kind!r}; kinds are "
            f"{', '.join(BACKEND_KINDS)}")
    return kind


def register_backend(kind: str, name: str, factory: Callable[..., Any],
                     replace: bool = False) -> None:
    """Register ``factory`` under ``(kind, name)``.

    ``name`` is matched case-insensitively by :func:`get_backend`.
    Re-registering an existing name raises unless ``replace`` is given (so a
    plugin cannot silently shadow a built-in).

    ``replace=True`` takes effect the next time an explorer is *built*: the
    persistent store invalidates by implementation signature automatically
    (:func:`backend_signature`), but a live :class:`~repro.api.Session`
    memoizes explorers/results per workload and keeps serving what the
    previous implementation computed — call :meth:`Session.evict` (or use a
    fresh session) after swapping an implementation mid-process.
    """
    _check_kind(kind)
    key = name.lower()
    with _registry_lock:
        if not replace and key in _backends[kind]:
            raise BackendError(
                f"{kind} backend {name!r} is already registered; pass "
                f"replace=True to override it")
        _backends[kind][key] = factory
        if kind == "device":
            _provider_instances.pop(key, None)


def unregister_backend(kind: str, name: str) -> None:
    """Remove a backend registration (no-op if absent); for tests/plugins."""
    _check_kind(kind)
    with _registry_lock:
        _backends[kind].pop(name.lower(), None)
        if kind == "device":
            _provider_instances.pop(name.lower(), None)


def _ensure_executor_builtins() -> None:
    """Import :mod:`repro.api.executor` so its built-ins are registered.

    The executor module registers itself at import time (like plugins do);
    importing it lazily here — instead of from this module's tail — keeps
    the registry import-cycle free while still making ``executor`` lookups
    work for callers that imported :mod:`repro.api.registry` alone.
    """
    with _registry_lock:
        registered = bool(_backends["executor"])
    if not registered:
        importlib.import_module("repro.api.executor")


def _ensure_service_builtins() -> None:
    """Import the service tier so ``service`` built-ins exist.

    Same lazy self-registration idiom as the executors: the service tier
    lives outside :mod:`repro.api` (it *uses* sessions), so the registry
    must not import it eagerly — only when a ``service`` lookup asks.
    ``local`` registers from :mod:`repro.service.server`, ``fleet`` from
    :mod:`repro.fleet.router`.
    """
    with _registry_lock:
        registered = len(_backends["service"]) >= 2
    if not registered:
        importlib.import_module("repro.service.server")
        importlib.import_module("repro.fleet.router")


def get_backend(kind: str, name: str) -> Callable[..., Any]:
    """The factory registered under ``(kind, name)``.

    Runs :func:`discover_backends` first, so ``REPRO_BACKENDS`` plugins are
    visible to every lookup path.
    """
    _check_kind(kind)
    if kind == "executor":
        _ensure_executor_builtins()
    elif kind == "service":
        _ensure_service_builtins()
    discover_backends()
    with _registry_lock:
        factory = _backends[kind].get(name.lower())
    if factory is None:
        raise BackendError(
            f"unknown {kind} backend {name!r}; registered: "
            f"{', '.join(sorted(_backends[kind])) or '(none)'}")
    return factory


def create_backend(kind: str, name: str, **kwargs: Any) -> Any:
    """Instantiate the backend ``(kind, name)`` with keyword context."""
    return get_backend(kind, name)(**kwargs)


def backend_signature(kind: str, name: str) -> str:
    """Name plus implementation identity of a registered backend.

    Persistent-store keys embed this, so swapping the implementation behind
    a name (``replace=True``, or a plugin upgrade moving the factory) makes
    old artifacts miss and recompute instead of serving stale results.
    """
    factory = get_backend(kind, name)
    module = getattr(factory, "__module__", type(factory).__module__)
    qualname = getattr(factory, "__qualname__", type(factory).__qualname__)
    return f"{name.lower()}@{module}.{qualname}"


def list_backends(kind: Optional[str] = None) -> Dict[str, List[str]]:
    """Registered backend names, per kind (or only the requested kind)."""
    if kind is None or kind == "executor":
        _ensure_executor_builtins()
    if kind is None or kind == "service":
        _ensure_service_builtins()
    discover_backends()
    with _registry_lock:
        kinds = (_check_kind(kind),) if kind is not None else BACKEND_KINDS
        return {k: sorted(_backends[k]) for k in kinds}


# ---------------------------------------------------------------------- #
# devices


def register_device(device: FpgaDevice) -> None:
    """Register one device model so workloads/CLI can name it.

    Devices added this way live in the ``custom`` :class:`DeviceProvider`
    and take precedence over same-named built-ins (see :func:`list_devices`);
    whole families are better served by registering a dedicated provider via
    ``register_backend("device", ...)``.
    """
    _custom_devices.add(device)


def _providers() -> List[DeviceProvider]:
    discover_backends()
    with _registry_lock:
        # registration order, not sorted: precedence is defined by it
        names = list(_backends["device"])
        providers = []
        for name in names:
            provider = _provider_instances.get(name)
            if provider is None:
                provider = _backends["device"][name]()
                _provider_instances[name] = provider
            providers.append(provider)
        return providers


def list_devices() -> Dict[str, FpgaDevice]:
    """Every resolvable device, merged across registered providers.

    Providers are merged in registration order with the *latest* winning a
    part-name collision, so :func:`register_device` (the ``custom`` provider
    registered after ``builtin``) and plugin providers can deliberately
    override a built-in device model.
    """
    merged: Dict[str, FpgaDevice] = {}
    for provider in _providers():
        for name, device in provider.devices().items():
            merged[name.upper()] = device
    return merged


def resolve_device(device: Union[str, FpgaDevice]) -> FpgaDevice:
    """Resolve a part name (case-insensitive) through the device providers.

    An :class:`FpgaDevice` instance passes through unchanged, so call sites
    accept both forms.
    """
    if isinstance(device, FpgaDevice):
        return device
    catalog = list_devices()
    resolved = catalog.get(device.upper())
    if resolved is None:
        raise BackendError(
            f"unknown device {device!r}; registered: "
            f"{', '.join(sorted(catalog))}")
    return resolved


# ---------------------------------------------------------------------- #
# discovery


def discover_backends(force: bool = False) -> List[str]:
    """Import the plugin modules named by ``REPRO_BACKENDS`` (once).

    Returns the module names imported by this call.  A module that fails to
    import (or whose ``register_repro_backends()`` hook raises) is skipped
    with a warning rather than breaking every registry lookup.
    """
    global _discovered
    # Everything happens under the discovery lock (never the registry
    # lock): a concurrent first lookup blocks here until the plugins have
    # registered, while register_backend() calls from plugin import/hook
    # code take _registry_lock without us holding it — so there is no
    # ordering against Python's per-module import lock to invert.
    # _discovered flips before the imports so a plugin calling back into
    # the registry re-enters and returns instead of recursing.
    with _discovery_lock:
        if _discovered and not force:
            return []
        _discovered = True
        spec = os.environ.get(DISCOVERY_ENV_VAR, "")
        imported: List[str] = []
        for chunk in spec.replace(os.pathsep, ",").split(","):
            module_name = chunk.strip()
            if not module_name:
                continue
            try:
                module = importlib.import_module(module_name)
                hook = getattr(module, "register_repro_backends", None)
                if callable(hook):
                    hook()
                imported.append(module_name)
            except Exception as error:  # a broken plugin must not brick
                warnings.warn(
                    f"{DISCOVERY_ENV_VAR} module {module_name!r} failed to "
                    f"load: {error}", RuntimeWarning, stacklevel=2)
    return imported


def reset_discovery() -> None:
    """Forget that discovery ran (so the next lookup re-reads the env var)."""
    global _discovered
    with _discovery_lock:
        _discovered = False


# ---------------------------------------------------------------------- #
# built-ins

#: Mutable catalog behind :func:`register_device`.
_custom_devices = CatalogDeviceProvider()

register_backend("synthesizer", "analytic", Synthesizer)
register_backend("area", "register-model", RegisterAreaModel)
register_backend("throughput", "analytic", ThroughputModel)
register_backend("device", "builtin",
                 lambda: CatalogDeviceProvider(DEVICE_CATALOG))
register_backend("device", "custom", lambda: _custom_devices)
