"""The staged compilation pipeline.

The paper's flow (Figure 2) is a cascade of stages; :class:`Pipeline` exposes
them as named, independently runnable steps over one :class:`Workload`:

``frontend``
    Resolve the workload to a kernel IR (registry lookup, C parsing, or an
    inline kernel).
``analyze``
    Semantic analysis plus symbolic ISL verification (domain narrowness,
    translation invariance).
``characterize``
    Cone characterization and Equation-1 area-model calibration — the
    expensive, cacheable step (the only one that runs the synthesizer).
``explore``
    Area/throughput estimation of every architecture in the space.
``pareto``
    Pareto extraction and assembly of the final :class:`FlowResult`.
``codegen``
    VHDL generation for a selected design point.

Each stage stores its artifact under its name in :attr:`Pipeline.artifacts`;
every artifact is serializable (``to_dict``/``from_dict``), so a pipeline can
be cut at any stage boundary and resumed elsewhere.  Running a stage runs any
missing prerequisite stages first.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.api.results import FlowResult
from repro.api.workload import Workload
from repro.codegen.vhdl_toplevel import generate_architecture_toplevel
from repro.codegen.vhdl_writer import FIXED_POINT_PACKAGE, VhdlWriter
from repro.dse.design_point import DesignPoint
from repro.dse.explorer import DesignSpaceExplorer
from repro.frontend.kernel_ir import KernelValidationError, StencilKernel
from repro.frontend.semantic import validate_kernel
from repro.ir.dfg import build_dfg_from_cone
from repro.ir.operators import DataFormat
from repro.obs import trace as obs_trace
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.symbolic.invariance import verify_kernel

#: Stage names in execution order.
STAGE_NAMES: Tuple[str, ...] = ("frontend", "analyze", "characterize",
                                "explore", "pareto", "codegen")

#: Observer signature: ``(stage_name, status, elapsed_seconds)`` where status
#: is ``"started"`` or ``"finished"`` (elapsed is ``None`` on start).
StageObserver = Callable[[str, str, Optional[float]], None]


class PipelineError(RuntimeError):
    """Raised when a stage cannot run (bad workload, non-ISL kernel, ...)."""


class Pipeline:
    """Runs the staged flow for one workload, one stage at a time."""

    def __init__(self, workload: Workload,
                 explorer: Optional[DesignSpaceExplorer] = None,
                 observer: Optional[StageObserver] = None,
                 stream_executor: object = None) -> None:
        self.workload = workload
        self.artifacts: Dict[str, Any] = {}
        self.timings: Dict[str, float] = {}
        self._explorer = explorer
        self._observer = observer
        #: Executor strategy for streamed explorations (``stream_jobs``);
        #: anything ``resolve_strategy`` accepts, ``None`` → threads.
        self._stream_executor = stream_executor
        # Serializes stage execution: sessions share one pipeline between
        # equal workloads, which may run on different threads.  Reentrant
        # because the codegen stage runs result() -> pareto internally.
        self._exec_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # stage access

    @property
    def explorer(self) -> DesignSpaceExplorer:
        """The (possibly session-shared) explorer driving stages 3-5."""
        if self._explorer is None:
            self._explorer = build_explorer(self.workload)
        return self._explorer

    def has_run(self, stage: str) -> bool:
        return stage in self.artifacts

    def run_stage(self, stage: str, force: bool = False,
                  **stage_args: Any) -> Any:
        """Run one named stage (and any missing prerequisites); return its
        artifact.

        Stages are idempotent: a stage whose artifact is already cached
        returns it without re-executing unless ``force`` is given.  The
        exception is ``codegen``, which always executes (its output depends
        on the selected design point and is never cached).
        """
        if stage not in STAGE_NAMES:
            raise PipelineError(
                f"unknown stage {stage!r}; stages are {', '.join(STAGE_NAMES)}")
        with self._exec_lock:
            for prerequisite in STAGE_NAMES[:STAGE_NAMES.index(stage)]:
                if not self.has_run(prerequisite):
                    self._execute(prerequisite)
            if not force and stage != "codegen" and self.has_run(stage):
                return self.artifacts[stage]
            return self._execute(stage, **stage_args)

    def run(self, until: str = "pareto") -> "Pipeline":
        """Run every stage up to and including ``until``; return self."""
        self.run_stage(until)
        return self

    def result(self) -> FlowResult:
        """The assembled flow result (runs through ``pareto`` if needed)."""
        if not self.has_run("pareto"):
            self.run_stage("pareto")
        return self.artifacts["pareto"]

    # ------------------------------------------------------------------ #
    # execution

    def _execute(self, stage: str, **stage_args: Any) -> Any:
        if self._observer is not None:
            self._observer(stage, "started", None)
        started = time.perf_counter()
        with obs_trace.span(f"stage.{stage}",
                            workload=self.workload.name):
            artifact = getattr(self, f"_stage_{stage}")(**stage_args)
        elapsed = time.perf_counter() - started
        if stage != "codegen":
            # codegen re-executes on every request (the selected point may
            # differ), so retaining its output — the full VHDL text — would
            # only hold memory, never serve a later stage.
            self.artifacts[stage] = artifact
            # a (re-)executed stage supersedes everything built on top of
            # it: drop downstream artifacts so they are rebuilt on demand
            for later in STAGE_NAMES[STAGE_NAMES.index(stage) + 1:]:
                self.artifacts.pop(later, None)
        self.timings[stage] = elapsed
        if self._observer is not None:
            self._observer(stage, "finished", elapsed)
        return artifact

    def _stage_frontend(self) -> StencilKernel:
        return self.workload.resolve_kernel()

    def _stage_analyze(self) -> Dict[str, Any]:
        kernel = self.artifacts["frontend"]
        try:
            properties = validate_kernel(kernel)
        except KernelValidationError as error:
            raise PipelineError(str(error)) from error
        invariance = verify_kernel(kernel)
        if not invariance.is_isl:
            raise PipelineError(
                f"kernel {kernel.name!r} is outside the ISL class the flow "
                f"targets: {invariance.detail}")
        return {"properties": properties, "invariance": invariance}

    def _stage_characterize(self) -> Dict[str, Any]:
        characterizations, validations = self.explorer.characterize_cones(
            self.workload.iterations)
        return {"characterizations": characterizations,
                "validations": validations}

    def _stage_explore(self):
        workload = self.workload
        return self.explorer.explore(
            total_iterations=workload.iterations,
            frame_width=workload.frame_width,
            frame_height=workload.frame_height,
            constraints=workload.constraints,
            onchip_port_elements_per_cycle=(
                workload.onchip_port_elements_per_cycle),
            stream=workload.stream,
            chunk_rows=workload.chunk_rows,
            stream_jobs=workload.stream_jobs,
            stream_executor=self._stream_executor,
        )

    def _stage_pareto(self) -> FlowResult:
        analysis = self.artifacts["analyze"]
        return FlowResult(
            kernel=self.artifacts["frontend"],
            properties=analysis["properties"],
            invariance=analysis["invariance"],
            exploration=self.artifacts["explore"],
            options=self.workload.options(),
        )

    def _stage_codegen(self, point: Optional[DesignPoint] = None,
                       fractional_bits: int = 12) -> Dict[str, str]:
        result = self.result()
        if point is None:
            point = result.best_fitting_point() or result.smallest_point()
        if point is None:
            raise PipelineError(
                "codegen needs a design point, but the exploration produced "
                "none (constraints too tight?)")
        return generate_vhdl_files(
            kernel=self.artifacts["frontend"],
            params=self.workload.params_dict(),
            data_format=self.workload.data_format,
            point=point,
            fractional_bits=fractional_bits,
        )


# ---------------------------------------------------------------------- #
# stage helpers shared with the compatibility shim


def build_explorer(workload: Workload,
                   family_store: Optional[Any] = None) -> DesignSpaceExplorer:
    """Construct the design-space explorer a workload asks for.

    The synthesizer, area estimator, and throughput estimator are resolved
    by name through :mod:`repro.api.registry` (``workload.synthesizer`` et
    al.), so a backend registered with ``register_backend`` is exercised
    end-to-end without any explorer change.  ``family_store`` (usually a
    :class:`repro.api.store.CharacterizationStoreAdapter` built by the
    session) persists depth-family characterizations across processes.
    """
    from repro.api import registry

    return DesignSpaceExplorer(
        kernel=workload.resolve_kernel(),
        device=workload.device,
        data_format=workload.data_format,
        window_sides=workload.window_sides,
        max_depth=workload.max_depth,
        max_cones_per_depth=workload.max_cones_per_depth,
        calibration_windows_per_depth=workload.calibration_windows_per_depth,
        synthesize_all=workload.synthesize_all,
        onchip_port_elements_per_cycle=workload.onchip_port_elements_per_cycle,
        params=workload.params_dict(),
        synthesizer_factory=registry.get_backend("synthesizer",
                                                 workload.synthesizer),
        area_model_factory=registry.get_backend("area",
                                                workload.area_estimator),
        throughput_model_factory=registry.get_backend(
            "throughput", workload.throughput_estimator),
        family_store=family_store,
    )


def generate_vhdl_files(kernel: StencilKernel,
                        params: Optional[Mapping[str, float]],
                        data_format: DataFormat,
                        point: DesignPoint,
                        fractional_bits: int = 12) -> Dict[str, str]:
    """Generate the VHDL of every cone of a design point plus the top level.

    Returns a mapping ``file name -> VHDL source`` (the support package, one
    entity per cone depth, and the structural top level).
    """
    architecture = point.architecture
    builder = ConeExpressionBuilder(kernel, params)
    writer = VhdlWriter(data_format=data_format,
                        fractional_bits=fractional_bits)
    files: Dict[str, str] = {"isl_fixed_pkg.vhd": FIXED_POINT_PACKAGE}
    entity_names: Dict[int, str] = {}
    for depth in architecture.distinct_depths:
        cone = builder.build(architecture.window_side, depth)
        dfg = build_dfg_from_cone(cone)
        module = writer.generate(dfg)
        entity_names[depth] = module.entity_name
        files[f"{module.entity_name}.vhd"] = module.code
    files[f"{architecture.label()}_top.vhd"] = generate_architecture_toplevel(
        architecture, entity_names, data_width=data_format.width)
    return files
