"""Persistent, cross-process artifact store.

An :class:`ArtifactStore` is a content-addressed JSON cache on disk: every
artifact is filed under ``<root>/v<schema>/<kind>/<sha256(key)>.json`` with
its schema version and full key embedded, so a new process — or a fresh
``python -m repro sweep`` — resumes a workload batch with zero re-synthesis.
Three artifact kinds are stored today:

``characterization``
    One explorer depth-family: the :class:`ConeCharacterization` of every
    window plus the Equation-1 calibration points and validation — the unit
    the in-memory family cache already shares (see
    :class:`CharacterizationStoreAdapter`).
``result``
    A complete :class:`~repro.api.results.FlowResult`, keyed by the full
    workload description.
``calibration`` (reserved)
    Standalone calibration-point sets for backends that calibrate outside a
    depth family.

Robustness contract: a corrupted, truncated, or schema-incompatible artifact
is *never* an error — :meth:`get` returns ``None`` and the caller recomputes
(the bad file is removed so it cannot poison later runs).  Writes go through
a per-process temp file and an atomic ``os.replace``, so concurrent writers
(threads of one :meth:`~repro.api.Session.run_many`, or separate processes
sharing one cache dir) can only ever land complete artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dse.explorer import ConeCharacterization
from repro.estimation.area_model import AreaModelValidation

#: Bumped whenever an artifact payload changes incompatibly; artifacts of
#: other versions are ignored (recomputed), never migrated in place.
SCHEMA_VERSION = 1

#: The artifact kinds the store files separately.
ARTIFACT_KINDS: Tuple[str, ...] = ("characterization", "result",
                                   "calibration")

#: Environment override for the default cache location.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def default_store_path() -> str:
    """The default cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


class ArtifactStore:
    """Disk-backed, content-addressed JSON artifacts (thread/process safe)."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = os.path.abspath(str(root) if root is not None
                                    else default_store_path())
        # Runtime counters of THIS store object (a Session additionally
        # keeps per-session counters in SessionStats).
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # pickling (executor worker processes receive store handles)

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle everything but the (process-local) counter lock.

        The on-disk contents are shared through the filesystem; the runtime
        counters travel as a snapshot and diverge per process — exactly like
        two independently constructed stores over one root.
        """
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # addressing

    @staticmethod
    def digest(key: str) -> str:
        """Content address of a key string."""
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]

    def _kind_dir(self, kind: str) -> str:
        if kind not in ARTIFACT_KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}; kinds are "
                             f"{', '.join(ARTIFACT_KINDS)}")
        return os.path.join(self.root, f"v{SCHEMA_VERSION}", kind)

    def path_for(self, kind: str, key: str) -> str:
        """The file an artifact for ``(kind, key)`` lives at."""
        return os.path.join(self._kind_dir(kind), self.digest(key) + ".json")

    # ------------------------------------------------------------------ #
    # get / put

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``(kind, key)``, or ``None``.

        ``None`` covers missing, truncated/corrupted, schema-mismatched, and
        digest-colliding artifacts alike: the caller's only obligation is to
        recompute.  Unreadable files are deleted so the slot heals itself.
        """
        path = self.path_for(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            if (not isinstance(envelope, dict)
                    or envelope.get("schema") != SCHEMA_VERSION
                    or envelope.get("kind") != kind
                    or envelope.get("key") != key):
                raise ValueError("artifact envelope mismatch")
            payload = envelope["payload"]
        except FileNotFoundError:
            self._count("misses")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._count("corrupt")
            self._remove_quietly(path)
            return None
        self._count("hits")
        return payload

    def put(self, kind: str, key: str,
            payload: Dict[str, Any]) -> Optional[str]:
        """Atomically write an artifact; returns its path, or ``None``.

        A failed write (full/read-only disk) degrades to a ``None``-returning
        no-op: the store is a cache, and the in-memory result is still good —
        but callers must not account a write that never landed.
        """
        path = self.path_for(kind, key)
        envelope = {"schema": SCHEMA_VERSION, "kind": kind, "key": key,
                    "payload": payload}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(envelope, handle)
                os.replace(tmp_path, path)
            except BaseException:
                self._remove_quietly(tmp_path)
                raise
        except (OSError, TypeError, ValueError):
            # full/read-only disk, or a payload json can't encode (e.g. a
            # third-party backend leaking non-JSON scalars into a result):
            # the computed result is still good, only the cache write is lost
            return None
        self._count("writes")
        return path

    def has(self, kind: str, key: str) -> bool:
        """Whether an artifact exists for ``(kind, key)``.

        A bare existence probe — no read, no deserialization, no counter
        traffic — for callers deciding whether a write is still needed.
        """
        return os.path.exists(self.path_for(kind, key))

    # ------------------------------------------------------------------ #
    # maintenance (CLI `cache` subcommands)

    def artifact_paths(self, kind: Optional[str] = None) -> List[str]:
        """Every current-schema artifact file (optionally one kind)."""
        kinds = (kind,) if kind is not None else ARTIFACT_KINDS
        paths: List[str] = []
        for each in kinds:
            directory = self._kind_dir(each)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            paths.extend(os.path.join(directory, name) for name in names
                         if name.endswith(".json"))
        return paths

    def _stale_version_paths(self) -> List[str]:
        """Artifact files left behind by other schema versions.

        Schema bumps never migrate artifacts in place, so without this the
        maintenance commands could neither see nor reclaim ``v<old>/``
        trees and the cache directory would grow monotonically.
        """
        current = f"v{SCHEMA_VERSION}"
        paths: List[str] = []
        try:
            entries = sorted(os.listdir(self.root))
        except OSError:
            return paths
        for entry in entries:
            if (entry == current or not entry.startswith("v")
                    or not entry[1:].isdigit()):
                continue
            for directory, _subdirs, names in os.walk(
                    os.path.join(self.root, entry)):
                paths.extend(os.path.join(directory, name)
                             for name in sorted(names)
                             if name.endswith(".json"))
        return paths

    def _orphaned_tmp_paths(self) -> List[str]:
        """Temp files left behind by writers killed mid-``put``.

        ``os.replace`` normally consumes them; a SIGKILL/power-loss between
        ``mkstemp`` and the replace leaks one, and nothing else ever touches
        it — so the maintenance sweep must.
        """
        paths: List[str] = []
        for directory, _subdirs, names in os.walk(self.root):
            paths.extend(os.path.join(directory, name)
                         for name in sorted(names) if name.endswith(".tmp"))
        return paths

    def describe(self) -> Dict[str, Any]:
        """Size/count summary of the on-disk contents (for ``cache stats``)."""
        kinds: Dict[str, Dict[str, int]] = {}
        total_files = 0
        total_bytes = 0
        for kind in ARTIFACT_KINDS:
            paths = self.artifact_paths(kind)
            size = 0
            for path in paths:
                try:
                    size += os.path.getsize(path)
                except OSError:
                    pass
            kinds[kind] = {"artifacts": len(paths), "bytes": size}
            total_files += len(paths)
            total_bytes += size
        stale = self._stale_version_paths() + self._orphaned_tmp_paths()
        stale_bytes = 0
        for path in stale:
            try:
                stale_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {"root": self.root, "schema": SCHEMA_VERSION, "kinds": kinds,
                "artifacts": total_files, "bytes": total_bytes,
                "stale_artifacts": len(stale),
                "stale_bytes": stale_bytes}

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete stored artifacts (optionally only one kind); returns the
        number removed.  A full clear also reclaims artifacts left behind
        by other schema versions and temp files of interrupted writes."""
        removed = 0
        paths = list(self.artifact_paths(kind))
        if kind is None:
            paths.extend(self._stale_version_paths())
            paths.extend(self._orphaned_tmp_paths())
        for path in paths:
            if self._remove_quietly(path):
                removed += 1
        return removed

    def export_payload(self) -> Dict[str, Any]:
        """Every readable artifact as one JSON document (``cache export``)."""
        artifacts = []
        for path in self.artifact_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
            except (OSError, ValueError):
                continue
            artifacts.append(envelope)
        return {"schema": SCHEMA_VERSION, "root": self.root,
                "artifacts": artifacts}

    # ------------------------------------------------------------------ #

    def counters(self) -> Dict[str, int]:
        """Atomic snapshot of the runtime counters.

        Reading the attributes one by one from another thread can tear
        (a ``get`` between two reads skews hit/miss ratios); service
        ``stats()`` and tests read through this instead.
        """
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "writes": self.writes, "corrupt": self.corrupt}

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    @staticmethod
    def _remove_quietly(path: str) -> bool:
        try:
            os.remove(path)
            return True
        except OSError:
            return False


# ---------------------------------------------------------------------- #
# explorer binding


#: Observer signature for store traffic: called with ``"hit"``, ``"miss"``,
#: or ``"write"`` (a Session maps these onto SessionStats counters).
StoreObserver = Callable[[str], None]


class CharacterizationStoreAdapter:
    """Binds an :class:`ArtifactStore` to one explorer's depth-family cache.

    The explorer's unit of sharing is a *depth family* — the per-window
    :class:`ConeCharacterization` table plus the Equation-1 validation for
    one ``(depth, window tuple)``.  The adapter scopes those families under
    the workload's characterization key, mirrors them to disk, and reports
    hits/misses/writes to its observer.
    """

    def __init__(self, store: ArtifactStore, scope: str,
                 observer: Optional[StoreObserver] = None) -> None:
        self.store = store
        self.scope = scope
        self._observer = observer

    def _notify(self, event: str) -> None:
        if self._observer is not None:
            self._observer(event)

    def _key(self, depth: int, windows: Sequence[int]) -> str:
        return f"{self.scope}|depth={depth}|windows={tuple(windows)!r}"

    def load(self, depth: int, windows: Sequence[int]
             ) -> Optional[Tuple[Dict[int, ConeCharacterization],
                                 AreaModelValidation]]:
        payload = self.store.get("characterization",
                                 self._key(depth, windows))
        if payload is None:
            self._notify("miss")
            return None
        try:
            per_window = {
                int(window): ConeCharacterization.from_dict(entry)
                for window, entry in payload["per_window"].items()}
            validation = AreaModelValidation.from_dict(payload["validation"])
            if sorted(per_window) != sorted(int(w) for w in windows):
                raise ValueError("stored family covers different windows")
        except (KeyError, ValueError, TypeError):
            # decodes like a schema drift: recompute, never crash
            self._notify("miss")
            return None
        self._notify("hit")
        return per_window, validation

    def save(self, depth: int, windows: Sequence[int],
             family: Tuple[Dict[int, ConeCharacterization],
                           AreaModelValidation]) -> None:
        per_window, validation = family
        payload = {
            "per_window": {str(window): characterization.to_dict()
                           for window, characterization
                           in per_window.items()},
            "validation": validation.to_dict(),
            # The reference syntheses Equation 1 was calibrated from, kept
            # self-describing for external consumers of the cache.
            "calibration": [
                {"key": window * window,
                 "register_count": per_window[window].register_count,
                 "actual_area_luts": per_window[window].actual_area_luts}
                for window in sorted(per_window)
                if per_window[window].synthesized],
        }
        written = self.store.put("characterization",
                                 self._key(depth, windows), payload)
        if written is not None:
            self._notify("write")
