"""Canonical, serializable result and option types of the flow.

These used to live in :mod:`repro.flow.hls_flow`; they are now owned by the
composable API so that every stage artifact can be written to and restored
from JSON.  :mod:`repro.flow` re-exports them for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.explorer import ExplorationResult
from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import KernelProperties
from repro.ir.operators import DataFormat
from repro.symbolic.invariance import InvarianceReport
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760

# The validate job class returns simulation-layer evidence; re-exported here
# so API consumers can type/parse results without importing repro.simulation.
from repro.simulation.validation import ValidationResult  # noqa: F401


@dataclass(frozen=True)
class FlowOptions:
    """User-tunable knobs of the flow.

    The ``synthesizer``/``area_estimator``/``throughput_estimator`` fields
    name backends in :mod:`repro.api.registry`; they are resolved to
    instances only when an explorer is built, so options (and workloads)
    remain declarative and serializable whatever the backend is.
    """

    device: FpgaDevice = VIRTEX6_XC6VLX760
    data_format: DataFormat = DataFormat.FIXED16
    frame_width: int = 1024
    frame_height: int = 768
    iterations: int = 10
    window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9)
    max_depth: int = 5
    max_cones_per_depth: int = 16
    calibration_windows_per_depth: int = 2
    synthesize_all: bool = False
    onchip_port_elements_per_cycle: int = 16
    constraints: Optional[DseConstraints] = None
    synthesizer: str = "analytic"
    area_estimator: str = "register-model"
    throughput_estimator: str = "analytic"
    #: Out-of-core evaluation knobs (:mod:`repro.dse.stream`): ``stream``
    #: is tri-state (None = auto-select above the engine's row threshold),
    #: ``chunk_rows`` bounds the rows materialized per chunk (None = the
    #: engine default), ``stream_jobs`` fans chunk shards across workers
    #: (None = serial fold; results are bit-identical either way).
    stream: Optional[bool] = None
    chunk_rows: Optional[int] = None
    stream_jobs: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "device": self.device.to_dict(),
            "data_format": self.data_format.value,
            "frame_width": self.frame_width,
            "frame_height": self.frame_height,
            "iterations": self.iterations,
            "window_sides": list(self.window_sides),
            "max_depth": self.max_depth,
            "max_cones_per_depth": self.max_cones_per_depth,
            "calibration_windows_per_depth": self.calibration_windows_per_depth,
            "synthesize_all": self.synthesize_all,
            "onchip_port_elements_per_cycle": self.onchip_port_elements_per_cycle,
            "constraints": (None if self.constraints is None
                            else self.constraints.to_dict()),
            "synthesizer": self.synthesizer,
            "area_estimator": self.area_estimator,
            "throughput_estimator": self.throughput_estimator,
            "stream": self.stream,
            "chunk_rows": self.chunk_rows,
            "stream_jobs": self.stream_jobs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FlowOptions":
        constraints = data.get("constraints")
        return cls(
            device=FpgaDevice.from_dict(data["device"]),
            data_format=DataFormat(data["data_format"]),
            frame_width=data["frame_width"],
            frame_height=data["frame_height"],
            iterations=data["iterations"],
            window_sides=tuple(data["window_sides"]),
            max_depth=data["max_depth"],
            max_cones_per_depth=data["max_cones_per_depth"],
            calibration_windows_per_depth=data["calibration_windows_per_depth"],
            synthesize_all=data["synthesize_all"],
            onchip_port_elements_per_cycle=data["onchip_port_elements_per_cycle"],
            constraints=(None if constraints is None
                         else DseConstraints.from_dict(constraints)),
            # .get: payloads written before the backend registry existed
            synthesizer=data.get("synthesizer", "analytic"),
            area_estimator=data.get("area_estimator", "register-model"),
            throughput_estimator=data.get("throughput_estimator", "analytic"),
            # .get: payloads written before the streaming engine existed
            stream=data.get("stream"),
            chunk_rows=data.get("chunk_rows"),
            stream_jobs=data.get("stream_jobs"),
        )


@dataclass
class FlowResult:
    """Everything the flow produces for one workload."""

    kernel: StencilKernel
    properties: KernelProperties
    invariance: InvarianceReport
    exploration: ExplorationResult
    options: FlowOptions

    @property
    def pareto(self) -> List[DesignPoint]:
        return self.exploration.pareto

    @property
    def design_points(self) -> List[DesignPoint]:
        return self.exploration.design_points

    def best_fitting_point(self) -> Optional[DesignPoint]:
        return self.exploration.best_fitting_point()

    def fastest_point(self) -> Optional[DesignPoint]:
        """Fastest explored point, or ``None`` when no point survived the
        constraints."""
        if not self.design_points:
            return None
        return min(self.design_points, key=lambda p: p.seconds_per_frame)

    def smallest_point(self) -> Optional[DesignPoint]:
        """Smallest explored point, or ``None`` when no point survived the
        constraints."""
        if not self.design_points:
            return None
        return min(self.design_points, key=lambda p: p.area_luts)

    def point_by_label(self, label: str) -> DesignPoint:
        """Look up a design point by its architecture label."""
        for point in self.design_points:
            if point.label == label:
                return point
        raise KeyError(f"no design point labelled {label!r} among "
                       f"{len(self.design_points)} explored points")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of the complete result."""
        return {
            "kernel": self.kernel.to_dict(),
            "properties": self.properties.to_dict(),
            "invariance": self.invariance.to_dict(),
            "exploration": self.exploration.to_dict(),
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FlowResult":
        return cls(
            kernel=StencilKernel.from_dict(data["kernel"]),
            properties=KernelProperties.from_dict(data["properties"]),
            invariance=InvarianceReport.from_dict(data["invariance"]),
            exploration=ExplorationResult.from_dict(data["exploration"]),
            options=FlowOptions.from_dict(data["options"]),
        )
