"""Sessions: cached, batched execution of workloads.

A :class:`Session` owns a characterization/calibration cache keyed by
:meth:`Workload.characterization_key` — ``(kernel fingerprint, device, data
format, cone-shape knobs)``.  Workloads that share a key share one
:class:`DesignSpaceExplorer` (and hence its synthesizer and its per-iteration
characterization cache), so exploring the same kernel on several frame sizes,
or sweeping constraints, never re-synthesizes a cone shape that has already
been characterized.

:meth:`Session.run_many` delegates batch scheduling to a pluggable execution
strategy (:mod:`repro.api.executor`): ``serial`` runs in input order,
``threads`` (the default) fans out over a shared-session thread pool, and
``processes`` shards cold CPU-bound batches by characterization key across
worker processes, merging results and store writes back through the
session's :class:`ArtifactStore`.  Whatever the strategy or worker count,
results come back in input order and are byte-identical to a serial run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.api.pipeline import (
    Pipeline,
    PipelineError,
    STAGE_NAMES,
    build_explorer,
)
from repro.api.registry import backend_signature
from repro.api.results import FlowResult
from repro.api.store import ArtifactStore, CharacterizationStoreAdapter
from repro.api.workload import Workload
from repro.dse.design_point import DesignPoint
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.simulation.validation import ValidationResult, validate_workload


@dataclass(frozen=True)
class SessionEvent:
    """One progress notification emitted by a session.

    ``kind`` is one of ``workload-started``, ``stage-started``,
    ``stage-finished``, ``workload-finished``, ``workload-failed``,
    ``cache-hit``.  Callbacks registered on a session receive every event;
    during :meth:`Session.run_many` they may be invoked from worker threads.

    With tracing enabled (:mod:`repro.obs.trace`), ``trace_id``/``span_id``
    carry the enclosing span's identity so logs and traces join on one key;
    both stay ``None`` when recording is off.
    """

    kind: str
    workload: Workload
    stage: Optional[str] = None
    elapsed_s: Optional[float] = None
    detail: str = ""
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-ready representation (workload by name)."""
        return {
            "kind": self.kind,
            "workload": self.workload.name,
            "stage": self.stage,
            "elapsed_s": self.elapsed_s,
            "detail": self.detail,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }


def _event(kind: str, workload: Workload, stage: Optional[str] = None,
           elapsed_s: Optional[float] = None, detail: str = "") \
        -> SessionEvent:
    """Build an event stamped with the enclosing span's identity."""
    trace_id, span_id = obs_trace.current_ids()
    return SessionEvent(kind, workload, stage=stage, elapsed_s=elapsed_s,
                        detail=detail, trace_id=trace_id, span_id=span_id)


@dataclass
class SessionStats:
    """Aggregate accounting across every workload a session has run."""

    workloads_run: int = 0
    workloads_failed: int = 0
    characterization_cache_hits: int = 0
    characterization_cache_misses: int = 0
    synthesis_runs: int = 0
    tool_runtime_spent_s: float = 0.0
    tool_runtime_avoided_s: float = 0.0
    #: Persistent-store traffic (all zero on sessions without a store):
    #: artifacts served from disk, lookups that fell through to recompute,
    #: and artifacts written back.
    store_disk_hits: int = 0
    store_disk_misses: int = 0
    store_writes: int = 0
    #: Cumulative per-workload latency.  Under ``run_many`` this sums over
    #: concurrent workers (including time blocked on shared-key locks), so
    #: it can exceed real elapsed wall time — time the batch yourself for a
    #: wall figure.
    workload_time_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "workloads_run": self.workloads_run,
            "workloads_failed": self.workloads_failed,
            "characterization_cache_hits": self.characterization_cache_hits,
            "characterization_cache_misses": self.characterization_cache_misses,
            "synthesis_runs": self.synthesis_runs,
            "tool_runtime_spent_s": self.tool_runtime_spent_s,
            "tool_runtime_avoided_s": self.tool_runtime_avoided_s,
            "workload_time_s": self.workload_time_s,
            "store_disk_hits": self.store_disk_hits,
            "store_disk_misses": self.store_disk_misses,
            "store_writes": self.store_writes,
        }


class Session:
    """Runs workloads through the staged pipeline with process-wide caching.

    With ``store`` (a directory path or an :class:`ArtifactStore`), caching
    extends across processes: cone characterizations and full flow results
    are mirrored to disk, so a later session — or a ``python -m repro``
    rerun — pointed at the same store completes the same workloads with zero
    synthesizer invocations (observable as ``stats.store_disk_hits`` with
    ``stats.synthesis_runs == 0``).  Without a store (the default), caching
    stays in-memory exactly as before.

    Sessions are safe for concurrent :meth:`run` callers (the service tier
    shares one session across every request thread): the cache registries
    are guarded by an internal lock, racing threads on one cold
    characterization key serialize on that key's lock so the synthesis
    happens exactly once, and the statistics counters take a dedicated
    stats lock so no increment is ever lost to a read-modify-write race.
    """

    def __init__(self, on_event: Optional[Callable[[SessionEvent], None]] = None,
                 store: Optional[Union[str, os.PathLike,
                                       ArtifactStore]] = None,
                 stream_executor: object = None) -> None:
        if store is None or isinstance(store, ArtifactStore):
            self._store = store
        else:
            self._store = ArtifactStore(os.fspath(store))
        #: Executor strategy handed to streamed explorations (a workload's
        #: ``stream_jobs`` knob); anything ``resolve_strategy`` accepts,
        #: ``None`` → the threads default.  Public and mutable: the service
        #: scheduler adopts its own batch executor here when unset, so
        #: streamed dispatch and batch dispatch share one pool strategy.
        self.stream_executor = stream_executor
        self._explorers: Dict[Tuple, DesignSpaceExplorer] = {}
        self._key_locks: Dict[Tuple, threading.Lock] = {}
        self._pipelines: Dict[Workload, Pipeline] = {}
        #: Results restored from the persistent store, promoted here so
        #: same-session reruns are memory hits (no repeat disk reads).
        self._restored_results: Dict[Workload, FlowResult] = {}
        #: Validation evidence per workload; validation is deterministic so
        #: equal workloads share one immutable result.
        self._validations: Dict[Workload, ValidationResult] = {}
        #: Result-store key of each pipeline, captured at pipeline creation:
        #: write-back must file a result under the signature of the backend
        #: implementation that computed it, which a later register_backend
        #: (replace=True) may no longer be the registered one.
        self._result_keys: Dict[Workload, str] = {}
        #: Keys with work in flight (refcounts); evict() leaves them alone.
        self._active_keys: Dict[Tuple, int] = {}
        self._registry_lock = threading.Lock()
        self._callbacks_lock = threading.Lock()
        self._callbacks: List[Callable[[SessionEvent], None]] = []
        # SessionStats mutations get their own (uncontended) lock: store
        # observers and per-workload accounting fire from every worker
        # thread of a batch — and from every service scheduler dispatch —
        # so funnelling them through the registry lock would serialize
        # bookkeeping against cache lookups, and leaving them bare would
        # lose increments to the classic read-modify-write race.
        self._stats_lock = threading.Lock()
        self._stats = SessionStats()
        # events raised while this thread holds a key lock are buffered here
        # and flushed after release, so callbacks never run under internal
        # locks (a re-entrant callback would deadlock otherwise)
        self._deferred = threading.local()
        if on_event is not None:
            self._callbacks.append(on_event)

    # ------------------------------------------------------------------ #
    # events

    def on_event(self, callback: Callable[[SessionEvent], None]) -> None:
        """Register an additional progress/event callback.

        Safe to call while other threads run workloads (the service
        registers observers against a live session); events emitted
        concurrently with the registration may or may not reach the new
        callback.
        """
        with self._callbacks_lock:
            self._callbacks.append(callback)

    def _emit(self, event: SessionEvent) -> None:
        pending = getattr(self._deferred, "pending", None)
        if pending is not None:
            pending.append(event)
            return
        with self._callbacks_lock:
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(event)

    def _locked_section(self):
        """Context manager buffering events raised inside internal locks."""
        return _DeferredEvents(self)

    # ------------------------------------------------------------------ #
    # characterization cache

    def explorer_for(self, workload: Workload) -> DesignSpaceExplorer:
        """The cached explorer for a workload's characterization key.

        Escape hatch for direct explorer use.  Unlike :meth:`run`, work done
        on the returned object is not guarded against a concurrent
        :meth:`evict` (its counters may be folded out from under it); on
        sessions shared across threads, prefer :meth:`run`.
        """
        explorer, _ = self._explorer_entry(workload)
        return explorer

    def _explorer_entry(self, workload: Workload
                        ) -> Tuple[DesignSpaceExplorer, threading.Lock]:
        """Cached (explorer, lock) pair for the workload's key."""
        key = workload.characterization_key()
        with self._registry_lock:
            explorer = self._explorers.get(key)
            # Key locks outlive eviction (see evict()), so grab the lock
            # while still holding the registry lock.
            lock = self._key_locks.setdefault(key, threading.Lock())
        if explorer is None:
            # Build outside the registry lock — kernel validation and
            # footprint analysis would otherwise serialize batch startup
            # across distinct kernels.  A duplicate build from a racing
            # thread is discarded by setdefault (it performs no synthesis).
            built = build_explorer(
                workload, family_store=self._family_store_for(workload))
            with self._registry_lock:
                explorer = self._explorers.setdefault(key, built)
        return explorer, lock

    # ------------------------------------------------------------------ #
    # persistent store

    @property
    def store(self) -> Optional[ArtifactStore]:
        """The persistent artifact store, or ``None`` (in-memory only)."""
        return self._store

    def _family_store_for(self, workload: Workload
                          ) -> Optional[CharacterizationStoreAdapter]:
        """The disk binding for one characterization key's depth families.

        The scope string is the repr of the (fully value-typed, hashable)
        characterization key — every participating type has a deterministic
        repr, so the same workload addresses the same artifacts from any
        process — extended with the backend *implementation* signatures:
        re-registering a different class under the same backend name must
        invalidate, not reuse, the old implementation's artifacts.
        """
        if self._store is None:
            return None
        scope = "|".join([repr(workload.characterization_key())]
                         + self._backend_signatures(workload))
        return CharacterizationStoreAdapter(
            self._store, scope=scope, observer=self._record_store_event)

    @staticmethod
    def _backend_signatures(workload: Workload) -> List[str]:
        return [backend_signature("synthesizer", workload.synthesizer),
                backend_signature("area", workload.area_estimator),
                backend_signature("throughput",
                                  workload.throughput_estimator)]

    def _record_store_event(self, event: str) -> None:
        # dedicated stats lock: store traffic is reported from every
        # worker thread, and a bare += here would drop counts under
        # concurrency (read-modify-write) — see tests/api/test_concurrency
        with self._stats_lock:
            if event == "hit":
                self._stats.store_disk_hits += 1
            elif event == "miss":
                self._stats.store_disk_misses += 1
            elif event == "write":
                self._stats.store_writes += 1

    @classmethod
    def _result_store_key(cls, workload: Workload) -> str:
        # canonical JSON of the full declarative workload: two equal
        # workloads address the same artifact from any process
        payload = workload.to_dict()
        # to_dict() records algorithm workloads by registry name only; the
        # fingerprint ties the artifact to the kernel's actual content, so
        # editing an algorithm definition can never serve a stale result
        payload["kernel_fingerprint"] = workload.kernel_fingerprint
        # likewise, swapping the implementation behind a backend name must
        # miss instead of serving the old implementation's result
        payload["backend_signatures"] = cls._backend_signatures(workload)
        return json.dumps(payload, sort_keys=True)

    def _load_stored_result(self, workload: Workload) -> Optional[FlowResult]:
        payload = self._store.get("result", self._result_store_key(workload))
        if payload is None:
            self._record_store_event("miss")
            return None
        try:
            result = FlowResult.from_dict(payload)
        except (KeyError, ValueError, TypeError):
            # schema drift inside the payload: recompute instead of crashing
            self._record_store_event("miss")
            return None
        self._record_store_event("hit")
        return result

    @property
    def cached_keys(self) -> List[Tuple]:
        """Characterization keys currently held by the session."""
        with self._registry_lock:
            return list(self._explorers)

    def evict(self, workload: Optional[Workload] = None) -> None:
        """Release cached state to bound memory in long-lived sessions.

        With a workload, drop only that workload's pipeline (its result and
        stage artifacts); its characterizations stay shared.  Without one,
        drop every pipeline and every *idle* explorer — keys with runs in
        flight are left untouched — folding the synthesizer counters of
        evicted explorers into :attr:`stats` so accounting survives
        eviction.

        Also the way to pick up a backend implementation re-registered under
        an existing name (``register_backend(..., replace=True)``): the
        memoized explorers/results were built against the old implementation
        and are served as-is until evicted.
        """
        with self._registry_lock:
            if workload is not None:
                self._pipelines.pop(workload, None)
                self._restored_results.pop(workload, None)
                self._result_keys.pop(workload, None)
                return
            self._pipelines.clear()
            self._restored_results.clear()
            self._result_keys.clear()
            # Keys with work in flight keep their explorer, so a concurrent
            # run never loses its synthesis accounting.
            for key in [k for k in self._explorers
                        if k not in self._active_keys]:
                explorer = self._explorers.pop(key)
                with self._stats_lock:
                    self._fold_explorer(self._stats, explorer)
            # _key_locks is deliberately kept: an in-flight run may hold one
            # of these locks, and a post-evict rebuild of the same key must
            # serialize against it rather than against a fresh lock.

    # ------------------------------------------------------------------ #
    # execution

    def pipeline(self, workload: Workload) -> Pipeline:
        """The pipeline over the workload wired to this session's cache.

        Pipelines are cached per workload, so stages already run for an
        equal workload (analyze, explore, ...) are not executed again by
        later calls such as :meth:`generate_vhdl`.
        """
        explorer, _ = self._explorer_entry(workload)
        result_key = (self._result_store_key(workload)
                      if self._store is not None else None)
        with self._registry_lock:
            pipeline = self._pipelines.get(workload)
            if pipeline is None:

                def observe(stage: str, status: str,
                            elapsed: Optional[float]) -> None:
                    if status == "finished" and elapsed is not None:
                        obs_metrics.registry().histogram(
                            "repro_session_stage_seconds").observe(elapsed)
                    self._emit(_event(f"stage-{status}", workload,
                                      stage=stage, elapsed_s=elapsed))

                pipeline = Pipeline(workload, explorer=explorer,
                                    observer=observe,
                                    stream_executor=self.stream_executor)
                self._pipelines[workload] = pipeline
                if result_key is not None:
                    self._result_keys[workload] = result_key
        return pipeline

    def _mark_active(self, key: Tuple, delta: int) -> None:
        with self._registry_lock:
            count = self._active_keys.get(key, 0) + delta
            if count > 0:
                self._active_keys[key] = count
            else:
                self._active_keys.pop(key, None)

    def run(self, workload: Workload, until: str = "pareto") -> Any:
        """Run one workload through the pipeline stage ``until`` (default:
        Pareto extraction) and return that stage's artifact — a
        :class:`FlowResult` for the default, the respective stage artifact
        (kernel, analysis dict, :class:`ExplorationResult`, ...) otherwise.

        The heavy artifacts (design points, characterizations) of equal
        workloads are cached and shared, but each call returns a fresh
        result wrapper with freshly copied point/Pareto lists, so in-place
        reordering or filtering by one caller never corrupts the cache or
        another caller's view.  Treat the shared entries themselves
        (individual characterizations) as read-only.
        """
        if until not in STAGE_NAMES:
            raise PipelineError(
                f"unknown stage {until!r}; stages are "
                f"{', '.join(STAGE_NAMES)}")
        with obs_trace.span("session.run", workload=workload.name,
                            until=until):
            return self._run_traced(workload, until)

    def _run_traced(self, workload: Workload, until: str) -> Any:
        started = time.perf_counter()
        key = workload.characterization_key()
        self._emit(_event("workload-started", workload))
        memory_hit = False
        try:
            # The in-memory caches stay the first level: the store is
            # consulted only for a workload this session has neither
            # computed through `pareto` nor already restored, and a restored
            # result is promoted into memory so same-session reruns never
            # re-read the disk.  (Inside the try: a bad backend name raises
            # from the key computation and must be accounted/announced like
            # any other workload failure.)
            stored: Optional[FlowResult] = None
            if until == "pareto":
                detail = "restored result: full flow result"
                with self._registry_lock:
                    cached_pipeline = self._pipelines.get(workload)
                    memory_hit = (cached_pipeline is not None
                                  and cached_pipeline.has_run("pareto"))
                    stored = self._restored_results.get(workload)
                if (stored is None and not memory_hit
                        and self._store is not None):
                    stored = self._load_stored_result(workload)
                    if stored is not None:
                        detail = "persistent store: full flow result"
                        with self._registry_lock:
                            stored = self._restored_results.setdefault(
                                workload, stored)
                if stored is not None:
                    elapsed = time.perf_counter() - started
                    with self._stats_lock:
                        self._stats.workloads_run += 1
                        self._stats.workload_time_s += elapsed
                    self._emit(_event("cache-hit", workload,
                                            detail=detail))
                    self._emit(_event("workload-finished", workload,
                                            elapsed_s=elapsed))
                    return _defensive_copy(stored)
            # Mark the key in flight before the explorer becomes reachable,
            # so a concurrent evict() can never fold-and-drop an explorer
            # this run is about to use.
            self._mark_active(key, +1)
            try:
                explorer, lock = self._explorer_entry(workload)
                pipeline = self.pipeline(workload)
                needs_characterization = (STAGE_NAMES.index(until)
                                          >= STAGE_NAMES.index("characterize"))
                if needs_characterization:
                    # Serialize only the characterize stage across workloads
                    # sharing a key, so the expensive synthesis/calibration
                    # work happens exactly once while per-frame explorations
                    # still run in parallel.  Events raised inside the lock
                    # are buffered and delivered after release.
                    with self._locked_section(), lock:
                        runs_before = explorer.synthesizer.runs
                        pipeline.run_stage("characterize")
                        # Ground-truth accounting: a hit means this run's
                        # characterization needed no new synthesis — partial
                        # reuse (e.g. new depth families for a higher
                        # iteration count) honestly counts as a miss.
                        hit = explorer.synthesizer.runs == runs_before
                        with self._stats_lock:
                            if hit:
                                self._stats.characterization_cache_hits += 1
                            else:
                                self._stats.characterization_cache_misses += 1
                        if hit:
                            self._emit(_event(
                                "cache-hit", workload,
                                detail="shared cone characterization"))
                result = _defensive_copy(pipeline.run_stage(until))
            finally:
                self._mark_active(key, -1)
        except Exception as error:
            with self._stats_lock:
                self._stats.workloads_failed += 1
            self._emit(_event("workload-failed", workload,
                                    elapsed_s=time.perf_counter() - started,
                                    detail=str(error)))
            raise
        if (self._store is not None and until == "pareto"
                and isinstance(result, FlowResult)):
            # Gate on existence, not on how this run was served: the pareto
            # stage may have first run as a prerequisite of generate_vhdl
            # (a memory hit here with nothing on disk yet), and rewriting an
            # artifact that is already present would only churn the disk.
            # The key recorded at pipeline creation is used, so a result a
            # since-replaced backend computed is never filed under the new
            # implementation's signature.
            with self._registry_lock:
                key_string = self._result_keys.get(workload)
            if key_string is None:
                key_string = self._result_store_key(workload)
            if not self._store.has("result", key_string):
                written = self._store.put("result", key_string,
                                          result.to_dict())
                if written is not None:
                    self._record_store_event("write")
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._stats.workloads_run += 1
            self._stats.workload_time_s += elapsed
        self._emit(_event("workload-finished", workload,
                                elapsed_s=elapsed))
        return result

    def validate(self, workload: Workload, *,
                 window_side: Optional[int] = None,
                 mode: str = "region") -> ValidationResult:
        """Validate ``workload``: simulate the cone architecture on its frame
        geometry and compare against the golden model, returning the
        :class:`~repro.simulation.validation.ValidationResult` evidence.

        Validation is pure and deterministic, so equal ``(workload,
        window_side, mode)`` requests are served from an in-memory cache
        (announced with a ``cache-hit`` event) and count toward the same
        run/time statistics as :meth:`run`.  The result is immutable — safe
        to share across callers.
        """
        with obs_trace.span("session.validate", workload=workload.name,
                            mode=mode):
            return self._validate_traced(workload, window_side=window_side,
                                         mode=mode)

    def _validate_traced(self, workload: Workload, *,
                         window_side: Optional[int],
                         mode: str) -> ValidationResult:
        started = time.perf_counter()
        self._emit(_event("workload-started", workload))
        try:
            cache_key = workload
            if window_side is not None or mode != "region":
                # Non-default knobs get their own entries; the plain-workload
                # key stays reserved for the service's canonical validation.
                cache_key = (workload, window_side, mode)  # type: ignore[assignment]
            with self._registry_lock:
                cached = self._validations.get(cache_key)
            hit = cached is not None
            if cached is None:
                result = validate_workload(workload, window_side=window_side,
                                           mode=mode)
                with self._registry_lock:
                    cached = self._validations.setdefault(cache_key, result)
        except Exception as error:
            with self._stats_lock:
                self._stats.workloads_failed += 1
            self._emit(_event("workload-failed", workload,
                                    elapsed_s=time.perf_counter() - started,
                                    detail=str(error)))
            raise
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._stats.workloads_run += 1
            self._stats.workload_time_s += elapsed
        if hit:
            self._emit(_event("cache-hit", workload,
                                    detail="validation evidence"))
        self._emit(_event("workload-finished", workload,
                                elapsed_s=elapsed))
        return cached

    def run_many(self, workloads: Sequence[Workload],
                 max_workers: Optional[int] = None,
                 executor: Union[str, "ExecutionStrategy", None] = None
                 ) -> List[FlowResult]:
        """Run a batch of workloads, sharing characterizations across them.

        Results are returned in input order, byte-identical whatever the
        strategy or worker count.  ``executor`` picks the scheduling
        strategy — a name resolved through the ``executor`` kind of
        :mod:`repro.api.registry` (built-ins: ``serial``, ``threads``,
        ``processes``) or a strategy instance; the default is ``threads``.
        ``max_workers`` must be a positive integer (or ``None`` for
        auto-sizing); the first failure is re-raised after the batch
        completes scheduling.  ``processes`` suits cold CPU-bound sweeps of
        distinct kernels; warm batches — cached/stored results, or kernels
        whose cone characterizations this session already holds in memory —
        stay in-process either way (no pool startup).
        """
        from repro.api.executor import resolve_strategy, validate_max_workers

        validate_max_workers(max_workers)
        workloads = list(workloads)
        if not workloads:
            return []
        strategy = resolve_strategy(executor)
        with obs_trace.span(
                "session.run_many", workloads=len(workloads),
                executor=getattr(strategy, "name",
                                 type(strategy).__name__)):
            return list(strategy.run_batch(self, workloads,
                                           max_workers=max_workers))

    # ------------------------------------------------------------------ #
    # executor support (used by repro.api.executor strategies)

    def _has_local_result(self, workload: Workload) -> bool:
        """Whether :meth:`run` would serve this workload without computing
        (cached pipeline, promoted result, or persistent-store artifact) —
        the probe the ``processes`` strategy uses to keep warm workloads
        in-process instead of forking for them."""
        with self._registry_lock:
            pipeline = self._pipelines.get(workload)
            if pipeline is not None and pipeline.has_run("pareto"):
                return True
            if workload in self._restored_results:
                return True
        if self._store is None:
            return False
        return self._store.has("result", self._result_store_key(workload))

    def _prefers_in_process(self, workload: Workload) -> bool:
        """Whether a batch executor should answer this workload in-process
        instead of forking a worker for it.

        True when a full result is already at hand (:meth:`_has_local_result`
        — memory caches first, the persistent store second) *or* when this
        session holds an explorer for the workload's characterization key
        whose in-memory family cache already covers every depth family the
        workload's iteration count needs: the expensive
        synthesis/calibration work is done, a worker process could not see
        it (it would re-characterize from scratch), and the remaining
        per-frame exploration is cheaper than a pool startup.  Repeated
        in-session batches — reruns, or new frame sizes over
        already-characterized kernels — therefore never pay pool startup,
        while an iteration count that introduces uncharacterized depth
        families still counts as cold (forking genuinely parallelizes its
        synthesis).
        """
        if self._has_local_result(workload):
            return True
        with self._registry_lock:
            explorer = self._explorers.get(workload.characterization_key())
        return (explorer is not None
                and explorer.has_characterized(workload.iterations))

    def _adopt_result(self, workload: Workload,
                      result: FlowResult) -> FlowResult:
        """Promote a worker-process result into the in-memory cache and
        return the caller's isolated view of it."""
        with self._registry_lock:
            result = self._restored_results.setdefault(workload, result)
        return _defensive_copy(result)

    def _absorb_child_stats(self, payload: Mapping[str, Any]) -> None:
        """Fold a worker-process session's ``SessionStats.to_dict()`` into
        this session's counters (worker explorers die with their process, so
        their already-folded totals arrive through the payload)."""
        with self._stats_lock:
            for field in dataclasses.fields(SessionStats):
                value = payload.get(field.name, 0)
                setattr(self._stats, field.name,
                        getattr(self._stats, field.name) + value)

    def _emit_batch_event(self, kind: str, workload: Workload,
                          elapsed_s: Optional[float] = None,
                          detail: str = "") -> None:
        """Emit a workload lifecycle event on behalf of a batch executor."""
        self._emit(_event(kind, workload, elapsed_s=elapsed_s,
                                detail=detail))

    def generate_vhdl(self, workload: Workload,
                      point: Optional[DesignPoint] = None,
                      fractional_bits: int = 12) -> Dict[str, str]:
        """Run the codegen stage for a workload (reusing cached stages)."""
        key = workload.characterization_key()
        self._mark_active(key, +1)
        try:
            _, lock = self._explorer_entry(workload)
            pipeline = self.pipeline(workload)
            # hold the key lock only for the shared characterize step, as
            # run() does; the pipeline's own lock serializes the rest, so
            # codegen for sibling workloads proceeds in parallel
            with self._locked_section(), lock:
                pipeline.run_stage("characterize")
            return pipeline.run_stage("codegen", point=point,
                                      fractional_bits=fractional_bits)
        finally:
            self._mark_active(key, -1)

    # ------------------------------------------------------------------ #
    # accounting

    @property
    def stats(self) -> SessionStats:
        """Aggregated counters, including synthesizer totals of every cached
        explorer."""
        # registry -> stats nesting (same order as evict's fold), so a
        # concurrent evict() can never fold an explorer's counters into
        # _stats between our base snapshot and our explorer listing —
        # which would drop that explorer's synthesis totals from the view
        with self._registry_lock:
            with self._stats_lock:
                # full-field snapshot (includes counters folded in from
                # explorers evicted earlier)
                stats = dataclasses.replace(self._stats)
            explorers = list(self._explorers.values())
        for explorer in explorers:
            self._fold_explorer(stats, explorer)
        return stats

    @staticmethod
    def _fold_explorer(stats: SessionStats,
                       explorer: DesignSpaceExplorer) -> None:
        """Fold one explorer's synthesizer counters into a stats object."""
        stats.synthesis_runs += explorer.synthesizer.runs
        stats.tool_runtime_spent_s += explorer.synthesizer.total_tool_runtime_s
        stats.tool_runtime_avoided_s += explorer.tool_runtime_avoided_total_s()


class _DeferredEvents:
    """Buffers a session's events for the current thread, flushing on exit
    (outside whatever lock the with-block holds)."""

    def __init__(self, session: "Session") -> None:
        self._session = session
        self._outermost = False

    def __enter__(self) -> "_DeferredEvents":
        if getattr(self._session._deferred, "pending", None) is None:
            self._session._deferred.pending = []
            self._outermost = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if not self._outermost:
            return
        pending = self._session._deferred.pending
        self._session._deferred.pending = None
        for event in pending:
            self._session._emit(event)


def _defensive_copy(artifact: Any) -> Any:
    """Fresh wrapper with copied containers over shared entries.

    Shields the pipeline's cached stage artifacts from in-place mutation of
    the containers callers naturally reorder/filter; the frozen design
    points and the (read-only by contract) characterization entries stay
    shared.  Artifacts with no mutable containers (the kernel) pass through.
    """
    if isinstance(artifact, FlowResult):
        return dataclasses.replace(
            artifact, exploration=_defensive_copy(artifact.exploration))
    if isinstance(artifact, ExplorationResult):
        return dataclasses.replace(
            artifact,
            characterizations=dict(artifact.characterizations),
            design_points=list(artifact.design_points),
            pareto=list(artifact.pareto),
            area_validations=dict(artifact.area_validations),
        )
    if isinstance(artifact, dict):
        # one level of container copying: the characterize artifact nests
        # the dicts a caller would naturally filter
        return {key: (dict(value) if isinstance(value, dict)
                      else list(value) if isinstance(value, list) else value)
                for key, value in artifact.items()}
    return artifact


#: Lazily created process-wide session for library callers that want
#: cross-call characterization caching without passing a Session around.
#: (Each ``python -m repro`` invocation is its own process and builds its
#: own session instead.)
_default_session: Optional[Session] = None
_default_session_lock = threading.Lock()


def default_session() -> Session:
    """The process-wide shared session (created on first use)."""
    global _default_session
    with _default_session_lock:
        if _default_session is None:
            _default_session = Session()
        return _default_session
