"""Sessions: cached, batched execution of workloads.

A :class:`Session` owns a characterization/calibration cache keyed by
:meth:`Workload.characterization_key` — ``(kernel fingerprint, device, data
format, cone-shape knobs)``.  Workloads that share a key share one
:class:`DesignSpaceExplorer` (and hence its synthesizer and its per-iteration
characterization cache), so exploring the same kernel on several frame sizes,
or sweeping constraints, never re-synthesizes a cone shape that has already
been characterized.

:meth:`Session.run_many` fans a batch of workloads out over a thread pool
(the flow is pure Python but the stages release no state between workloads;
distinct kernels proceed in parallel while workloads sharing a
characterization key are serialized on a per-key lock so the cache is filled
exactly once).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.pipeline import (
    Pipeline,
    PipelineError,
    STAGE_NAMES,
    build_explorer,
)
from repro.api.results import FlowResult
from repro.api.workload import Workload
from repro.dse.design_point import DesignPoint
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult


@dataclass(frozen=True)
class SessionEvent:
    """One progress notification emitted by a session.

    ``kind`` is one of ``workload-started``, ``stage-started``,
    ``stage-finished``, ``workload-finished``, ``workload-failed``,
    ``cache-hit``.  Callbacks registered on a session receive every event;
    during :meth:`Session.run_many` they may be invoked from worker threads.
    """

    kind: str
    workload: Workload
    stage: Optional[str] = None
    elapsed_s: Optional[float] = None
    detail: str = ""


@dataclass
class SessionStats:
    """Aggregate accounting across every workload a session has run."""

    workloads_run: int = 0
    workloads_failed: int = 0
    characterization_cache_hits: int = 0
    characterization_cache_misses: int = 0
    synthesis_runs: int = 0
    tool_runtime_spent_s: float = 0.0
    tool_runtime_avoided_s: float = 0.0
    #: Cumulative per-workload latency.  Under ``run_many`` this sums over
    #: concurrent workers (including time blocked on shared-key locks), so
    #: it can exceed real elapsed wall time — time the batch yourself for a
    #: wall figure.
    workload_time_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "workloads_run": self.workloads_run,
            "workloads_failed": self.workloads_failed,
            "characterization_cache_hits": self.characterization_cache_hits,
            "characterization_cache_misses": self.characterization_cache_misses,
            "synthesis_runs": self.synthesis_runs,
            "tool_runtime_spent_s": self.tool_runtime_spent_s,
            "tool_runtime_avoided_s": self.tool_runtime_avoided_s,
            "workload_time_s": self.workload_time_s,
        }


class Session:
    """Runs workloads through the staged pipeline with process-wide caching."""

    def __init__(self, on_event: Optional[Callable[[SessionEvent], None]] = None
                 ) -> None:
        self._explorers: Dict[Tuple, DesignSpaceExplorer] = {}
        self._key_locks: Dict[Tuple, threading.Lock] = {}
        self._pipelines: Dict[Workload, Pipeline] = {}
        #: Keys with work in flight (refcounts); evict() leaves them alone.
        self._active_keys: Dict[Tuple, int] = {}
        self._registry_lock = threading.Lock()
        self._callbacks: List[Callable[[SessionEvent], None]] = []
        self._stats = SessionStats()
        # events raised while this thread holds a key lock are buffered here
        # and flushed after release, so callbacks never run under internal
        # locks (a re-entrant callback would deadlock otherwise)
        self._deferred = threading.local()
        if on_event is not None:
            self._callbacks.append(on_event)

    # ------------------------------------------------------------------ #
    # events

    def on_event(self, callback: Callable[[SessionEvent], None]) -> None:
        """Register an additional progress/event callback."""
        self._callbacks.append(callback)

    def _emit(self, event: SessionEvent) -> None:
        pending = getattr(self._deferred, "pending", None)
        if pending is not None:
            pending.append(event)
            return
        for callback in self._callbacks:
            callback(event)

    def _locked_section(self):
        """Context manager buffering events raised inside internal locks."""
        return _DeferredEvents(self)

    # ------------------------------------------------------------------ #
    # characterization cache

    def explorer_for(self, workload: Workload) -> DesignSpaceExplorer:
        """The cached explorer for a workload's characterization key.

        Escape hatch for direct explorer use.  Unlike :meth:`run`, work done
        on the returned object is not guarded against a concurrent
        :meth:`evict` (its counters may be folded out from under it); on
        sessions shared across threads, prefer :meth:`run`.
        """
        explorer, _ = self._explorer_entry(workload)
        return explorer

    def _explorer_entry(self, workload: Workload
                        ) -> Tuple[DesignSpaceExplorer, threading.Lock]:
        """Cached (explorer, lock) pair for the workload's key."""
        key = workload.characterization_key()
        with self._registry_lock:
            explorer = self._explorers.get(key)
            # Key locks outlive eviction (see evict()), so grab the lock
            # while still holding the registry lock.
            lock = self._key_locks.setdefault(key, threading.Lock())
        if explorer is None:
            # Build outside the registry lock — kernel validation and
            # footprint analysis would otherwise serialize batch startup
            # across distinct kernels.  A duplicate build from a racing
            # thread is discarded by setdefault (it performs no synthesis).
            built = build_explorer(workload)
            with self._registry_lock:
                explorer = self._explorers.setdefault(key, built)
        return explorer, lock

    @property
    def cached_keys(self) -> List[Tuple]:
        """Characterization keys currently held by the session."""
        with self._registry_lock:
            return list(self._explorers)

    def evict(self, workload: Optional[Workload] = None) -> None:
        """Release cached state to bound memory in long-lived sessions.

        With a workload, drop only that workload's pipeline (its result and
        stage artifacts); its characterizations stay shared.  Without one,
        drop every pipeline and every *idle* explorer — keys with runs in
        flight are left untouched — folding the synthesizer counters of
        evicted explorers into :attr:`stats` so accounting survives
        eviction.
        """
        with self._registry_lock:
            if workload is not None:
                self._pipelines.pop(workload, None)
                return
            self._pipelines.clear()
            # Keys with work in flight keep their explorer, so a concurrent
            # run never loses its synthesis accounting.
            for key in [k for k in self._explorers
                        if k not in self._active_keys]:
                self._fold_explorer(self._stats, self._explorers.pop(key))
            # _key_locks is deliberately kept: an in-flight run may hold one
            # of these locks, and a post-evict rebuild of the same key must
            # serialize against it rather than against a fresh lock.

    # ------------------------------------------------------------------ #
    # execution

    def pipeline(self, workload: Workload) -> Pipeline:
        """The pipeline over the workload wired to this session's cache.

        Pipelines are cached per workload, so stages already run for an
        equal workload (analyze, explore, ...) are not executed again by
        later calls such as :meth:`generate_vhdl`.
        """
        explorer, _ = self._explorer_entry(workload)
        with self._registry_lock:
            pipeline = self._pipelines.get(workload)
            if pipeline is None:

                def observe(stage: str, status: str,
                            elapsed: Optional[float]) -> None:
                    self._emit(SessionEvent(f"stage-{status}", workload,
                                            stage=stage, elapsed_s=elapsed))

                pipeline = Pipeline(workload, explorer=explorer,
                                    observer=observe)
                self._pipelines[workload] = pipeline
        return pipeline

    def _mark_active(self, key: Tuple, delta: int) -> None:
        with self._registry_lock:
            count = self._active_keys.get(key, 0) + delta
            if count > 0:
                self._active_keys[key] = count
            else:
                self._active_keys.pop(key, None)

    def run(self, workload: Workload, until: str = "pareto") -> Any:
        """Run one workload through the pipeline stage ``until`` (default:
        Pareto extraction) and return that stage's artifact — a
        :class:`FlowResult` for the default, the respective stage artifact
        (kernel, analysis dict, :class:`ExplorationResult`, ...) otherwise.

        The heavy artifacts (design points, characterizations) of equal
        workloads are cached and shared, but each call returns a fresh
        result wrapper with freshly copied point/Pareto lists, so in-place
        reordering or filtering by one caller never corrupts the cache or
        another caller's view.  Treat the shared entries themselves
        (individual characterizations) as read-only.
        """
        if until not in STAGE_NAMES:
            raise PipelineError(
                f"unknown stage {until!r}; stages are "
                f"{', '.join(STAGE_NAMES)}")
        started = time.perf_counter()
        key = workload.characterization_key()
        self._emit(SessionEvent("workload-started", workload))
        try:
            # Mark the key in flight before the explorer becomes reachable,
            # so a concurrent evict() can never fold-and-drop an explorer
            # this run is about to use.
            self._mark_active(key, +1)
            try:
                explorer, lock = self._explorer_entry(workload)
                pipeline = self.pipeline(workload)
                needs_characterization = (STAGE_NAMES.index(until)
                                          >= STAGE_NAMES.index("characterize"))
                if needs_characterization:
                    # Serialize only the characterize stage across workloads
                    # sharing a key, so the expensive synthesis/calibration
                    # work happens exactly once while per-frame explorations
                    # still run in parallel.  Events raised inside the lock
                    # are buffered and delivered after release.
                    with self._locked_section(), lock:
                        runs_before = explorer.synthesizer.runs
                        pipeline.run_stage("characterize")
                        # Ground-truth accounting: a hit means this run's
                        # characterization needed no new synthesis — partial
                        # reuse (e.g. new depth families for a higher
                        # iteration count) honestly counts as a miss.
                        hit = explorer.synthesizer.runs == runs_before
                        with self._registry_lock:
                            if hit:
                                self._stats.characterization_cache_hits += 1
                            else:
                                self._stats.characterization_cache_misses += 1
                        if hit:
                            self._emit(SessionEvent(
                                "cache-hit", workload,
                                detail="shared cone characterization"))
                result = _defensive_copy(pipeline.run_stage(until))
            finally:
                self._mark_active(key, -1)
        except Exception as error:
            with self._registry_lock:
                self._stats.workloads_failed += 1
            self._emit(SessionEvent("workload-failed", workload,
                                    elapsed_s=time.perf_counter() - started,
                                    detail=str(error)))
            raise
        elapsed = time.perf_counter() - started
        with self._registry_lock:
            self._stats.workloads_run += 1
            self._stats.workload_time_s += elapsed
        self._emit(SessionEvent("workload-finished", workload,
                                elapsed_s=elapsed))
        return result

    def run_many(self, workloads: Sequence[Workload],
                 max_workers: Optional[int] = None) -> List[FlowResult]:
        """Run a batch of workloads, sharing characterizations across them.

        Results are returned in input order.  Workloads with distinct
        characterization keys run concurrently on a thread pool; the first
        failure is re-raised after the batch completes scheduling.
        """
        workloads = list(workloads)
        if not workloads:
            return []
        if max_workers is None:
            max_workers = min(len(workloads), max(2, (os.cpu_count() or 2)))
        if max_workers <= 1 or len(workloads) == 1:
            return [self.run(w) for w in workloads]
        with ThreadPoolExecutor(max_workers=max_workers,
                                thread_name_prefix="repro-session") as pool:
            return list(pool.map(self.run, workloads))

    def generate_vhdl(self, workload: Workload,
                      point: Optional[DesignPoint] = None,
                      fractional_bits: int = 12) -> Dict[str, str]:
        """Run the codegen stage for a workload (reusing cached stages)."""
        key = workload.characterization_key()
        self._mark_active(key, +1)
        try:
            _, lock = self._explorer_entry(workload)
            pipeline = self.pipeline(workload)
            # hold the key lock only for the shared characterize step, as
            # run() does; the pipeline's own lock serializes the rest, so
            # codegen for sibling workloads proceeds in parallel
            with self._locked_section(), lock:
                pipeline.run_stage("characterize")
            return pipeline.run_stage("codegen", point=point,
                                      fractional_bits=fractional_bits)
        finally:
            self._mark_active(key, -1)

    # ------------------------------------------------------------------ #
    # accounting

    @property
    def stats(self) -> SessionStats:
        """Aggregated counters, including synthesizer totals of every cached
        explorer."""
        with self._registry_lock:
            # full-field snapshot (includes counters folded in from
            # explorers evicted earlier)
            stats = dataclasses.replace(self._stats)
            explorers = list(self._explorers.values())
        for explorer in explorers:
            self._fold_explorer(stats, explorer)
        return stats

    @staticmethod
    def _fold_explorer(stats: SessionStats,
                       explorer: DesignSpaceExplorer) -> None:
        """Fold one explorer's synthesizer counters into a stats object."""
        stats.synthesis_runs += explorer.synthesizer.runs
        stats.tool_runtime_spent_s += explorer.synthesizer.total_tool_runtime_s
        stats.tool_runtime_avoided_s += explorer.tool_runtime_avoided_total_s()


class _DeferredEvents:
    """Buffers a session's events for the current thread, flushing on exit
    (outside whatever lock the with-block holds)."""

    def __init__(self, session: "Session") -> None:
        self._session = session
        self._outermost = False

    def __enter__(self) -> "_DeferredEvents":
        if getattr(self._session._deferred, "pending", None) is None:
            self._session._deferred.pending = []
            self._outermost = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if not self._outermost:
            return
        pending = self._session._deferred.pending
        self._session._deferred.pending = None
        for event in pending:
            self._session._emit(event)


def _defensive_copy(artifact: Any) -> Any:
    """Fresh wrapper with copied containers over shared entries.

    Shields the pipeline's cached stage artifacts from in-place mutation of
    the containers callers naturally reorder/filter; the frozen design
    points and the (read-only by contract) characterization entries stay
    shared.  Artifacts with no mutable containers (the kernel) pass through.
    """
    if isinstance(artifact, FlowResult):
        return dataclasses.replace(
            artifact, exploration=_defensive_copy(artifact.exploration))
    if isinstance(artifact, ExplorationResult):
        return dataclasses.replace(
            artifact,
            characterizations=dict(artifact.characterizations),
            design_points=list(artifact.design_points),
            pareto=list(artifact.pareto),
            area_validations=dict(artifact.area_validations),
        )
    if isinstance(artifact, dict):
        # one level of container copying: the characterize artifact nests
        # the dicts a caller would naturally filter
        return {key: (dict(value) if isinstance(value, dict)
                      else list(value) if isinstance(value, list) else value)
                for key, value in artifact.items()}
    return artifact


#: Lazily created process-wide session for library callers that want
#: cross-call characterization caching without passing a Session around.
#: (Each ``python -m repro`` invocation is its own process and builds its
#: own session instead.)
_default_session: Optional[Session] = None
_default_session_lock = threading.Lock()


def default_session() -> Session:
    """The process-wide shared session (created on first use)."""
    global _default_session
    with _default_session_lock:
        if _default_session is None:
            _default_session = Session()
        return _default_session
