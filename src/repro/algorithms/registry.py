"""Registry of the case-study algorithms known to the flow and the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.frontend.kernel_ir import StencilKernel
from repro.algorithms import gaussian, chambolle, jacobi, heat, convolution, morphology


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the flow needs to run one case study end to end."""

    name: str
    build_kernel: Callable[[], StencilKernel]
    c_source: Optional[str]
    default_iterations: int
    description: str
    paper_section: str = ""
    typical_frame: Tuple[int, int] = (1024, 768)

    def kernel(self) -> StencilKernel:
        return self.build_kernel()


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "blur": AlgorithmSpec(
        name="blur",
        build_kernel=gaussian.iterative_gaussian_filter_kernel,
        c_source=gaussian.IGF_C_SOURCE,
        default_iterations=gaussian.DEFAULT_ITERATIONS,
        description="Iterative Gaussian filter (3x3 binomial kernel)",
        paper_section="4.1",
    ),
    "chamb": AlgorithmSpec(
        name="chamb",
        build_kernel=chambolle.chambolle_kernel,
        c_source=chambolle.CHAMBOLLE_C_SOURCE,
        default_iterations=chambolle.DEFAULT_ITERATIONS,
        description="Chambolle total-variation minimisation (dual projection)",
        paper_section="4.2",
    ),
    "jacobi": AlgorithmSpec(
        name="jacobi",
        build_kernel=jacobi.jacobi_kernel,
        c_source=jacobi.JACOBI_C_SOURCE,
        default_iterations=jacobi.DEFAULT_ITERATIONS,
        description="5-point Jacobi relaxation (Poisson problems)",
        paper_section="2 (reference [17])",
    ),
    "heat": AlgorithmSpec(
        name="heat",
        build_kernel=heat.heat_equation_kernel,
        c_source=heat.HEAT_C_SOURCE,
        default_iterations=heat.DEFAULT_ITERATIONS,
        description="Explicit 2D heat-equation time stepping",
        paper_section="2 (scientific computation)",
    ),
    "conv3x3": AlgorithmSpec(
        name="conv3x3",
        build_kernel=convolution.convolution_3x3_kernel,
        c_source=convolution.CONVOLUTION_C_SOURCE,
        default_iterations=convolution.DEFAULT_ITERATIONS,
        description="Iterated 3x3 convolution with constant coefficients",
        paper_section="4.1 (literature comparison, reference [16])",
    ),
    "erode": AlgorithmSpec(
        name="erode",
        build_kernel=morphology.erosion_kernel,
        c_source=None,
        default_iterations=morphology.DEFAULT_ITERATIONS,
        description="Iterated 3x3 grey-scale erosion (min-filter)",
        paper_section="additional workload",
    ),
    "dilate": AlgorithmSpec(
        name="dilate",
        build_kernel=morphology.dilation_kernel,
        c_source=None,
        default_iterations=morphology.DEFAULT_ITERATIONS,
        description="Iterated 3x3 grey-scale dilation (max-filter)",
        paper_section="additional workload",
    ),
}


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name."""
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}")
    return ALGORITHMS[name]


def list_algorithms() -> List[str]:
    return sorted(ALGORITHMS)
