"""Grey-scale morphology: iterated erosion and dilation.

Included as additional ISL workloads that exercise the MIN/MAX operators of
the datapath (the arithmetic case studies of the paper are add/mul/div
dominated).  Iterating an erosion with a 3x3 structuring element n times is
equivalent to eroding with a (2n+1)x(2n+1) element — the same
"large effect from a small iterated kernel" trick as the IGF.
"""

from __future__ import annotations

from repro.frontend.dsl import ExprHandle, KernelBuilder, stencil_kernel
from repro.frontend.kernel_ir import StencilKernel

DEFAULT_ITERATIONS = 8


def _neighbourhood(builder: KernelBuilder, f, reducer) -> ExprHandle:
    result = None
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            value = f(dx, dy)
            result = value if result is None else reducer(result, value)
    return result


def erosion_kernel(name: str = "erode") -> StencilKernel:
    """3x3 grey-scale erosion (neighbourhood minimum), iterated."""

    def definition(builder: KernelBuilder) -> None:
        f = builder.field("f")
        builder.update(f, _neighbourhood(builder, f, builder.minimum))

    return stencil_kernel(name, definition,
                          description="Iterated 3x3 grey-scale erosion")


def dilation_kernel(name: str = "dilate") -> StencilKernel:
    """3x3 grey-scale dilation (neighbourhood maximum), iterated."""

    def definition(builder: KernelBuilder) -> None:
        f = builder.field("f")
        builder.update(f, _neighbourhood(builder, f, builder.maximum))

    return stencil_kernel(name, definition,
                          description="Iterated 3x3 grey-scale dilation")
