"""Generic (iterated) 3x3 convolution.

Covers the convolution workloads the paper cites ([13], [15], [16]): a 3x3
kernel with arbitrary coefficients applied once (classic filtering) or
iterated (e.g. the 20-iteration convolution of the Section 4.1 literature
comparison).
"""

from __future__ import annotations

from typing import Sequence

from repro.frontend.dsl import KernelBuilder, stencil_kernel
from repro.frontend.kernel_ir import StencilKernel

#: Sharpen-like default coefficients (row-major 3x3), normalised to sum 1.
DEFAULT_COEFFICIENTS = (
    0.05, 0.10, 0.05,
    0.10, 0.40, 0.10,
    0.05, 0.10, 0.05,
)

DEFAULT_ITERATIONS = 20


def convolution_3x3_kernel(coefficients: Sequence[float] = DEFAULT_COEFFICIENTS,
                           name: str = "conv3x3") -> StencilKernel:
    """Build an iterated 3x3 convolution with the given row-major coefficients."""
    values = [float(c) for c in coefficients]
    if len(values) != 9:
        raise ValueError(f"a 3x3 convolution needs 9 coefficients, got {len(values)}")

    def definition(builder: KernelBuilder) -> None:
        f = builder.field("f")
        terms = None
        index = 0
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                term = values[index] * f(dx, dy)
                terms = term if terms is None else terms + term
                index += 1
        builder.update(f, terms)

    return stencil_kernel(
        name, definition,
        description="Iterated 3x3 convolution with constant coefficients",
    )


CONVOLUTION_C_SOURCE = """\
/* One pass of a 3x3 convolution with constant coefficients. */
#define C00 0.05f
#define C01 0.10f
#define C02 0.05f
#define C10 0.10f
#define C11 0.40f
#define C12 0.10f
#define C20 0.05f
#define C21 0.10f
#define C22 0.05f

void conv3x3(float out[H][W], const float f[H][W]) {
    for (int y = 1; y < H - 1; y++) {
        for (int x = 1; x < W - 1; x++) {
            out[y][x] = C00 * f[y - 1][x - 1] + C01 * f[y - 1][x] + C02 * f[y - 1][x + 1]
                      + C10 * f[y][x - 1]     + C11 * f[y][x]     + C12 * f[y][x + 1]
                      + C20 * f[y + 1][x - 1] + C21 * f[y + 1][x] + C22 * f[y + 1][x + 1];
        }
    }
}
"""
