"""Iterative Gaussian filter (IGF) — the first case study of the paper (§4.1).

A Gaussian blur with a large kernel is implemented as the repeated
convolution of the frame with a small 3x3 Gaussian kernel; the iteration
count controls the effective blur radius.  The 3x3 kernel is the separable
binomial approximation (1/16, 2/16, 4/16).
"""

from __future__ import annotations

from repro.frontend.dsl import KernelBuilder, stencil_kernel
from repro.frontend.kernel_ir import StencilKernel

#: Binomial 3x3 Gaussian coefficients: centre, edge-adjacent, corner.
CENTER_COEFF = 0.25
EDGE_COEFF = 0.125
CORNER_COEFF = 0.0625


def _definition(builder: KernelBuilder) -> None:
    f = builder.field("f")
    blurred = (
        CENTER_COEFF * f(0, 0)
        + EDGE_COEFF * (f(1, 0) + f(-1, 0) + f(0, 1) + f(0, -1))
        + CORNER_COEFF * (f(1, 1) + f(-1, 1) + f(1, -1) + f(-1, -1))
    )
    builder.update(f, blurred)


def iterative_gaussian_filter_kernel(name: str = "blur") -> StencilKernel:
    """Build the IGF kernel (3x3 binomial Gaussian, iterated)."""
    return stencil_kernel(
        name, _definition,
        description="Iterative Gaussian filter: repeated 3x3 binomial convolution",
    )


#: Number of iterations used in Figure 7 of the paper (10 iterations on a
#: 1024x768 frame), and in the literature comparison of Section 4.1
#: (20 iterations, Cope's Virtex-II Pro implementation).
DEFAULT_ITERATIONS = 10
LITERATURE_COMPARISON_ITERATIONS = 20

IGF_C_SOURCE = """\
/* Iterative Gaussian filter: one iteration of the 3x3 binomial blur. */
#define W_C 0.25f
#define W_E 0.125f
#define W_D 0.0625f

void blur(float out[H][W], const float f[H][W]) {
    for (int y = 1; y < H - 1; y++) {
        for (int x = 1; x < W - 1; x++) {
            float centre = W_C * f[y][x];
            float edges = W_E * (f[y][x + 1] + f[y][x - 1]
                               + f[y + 1][x] + f[y - 1][x]);
            float corners = W_D * (f[y + 1][x + 1] + f[y + 1][x - 1]
                                 + f[y - 1][x + 1] + f[y - 1][x - 1]);
            out[y][x] = centre + edges + corners;
        }
    }
}
"""
