"""Chambolle's total-variation minimisation — the second case study (§4.2).

Chambolle's projection algorithm [Chambolle 2004] iterates a dual vector
field ``p = (p0, p1)``:

    u        = div(p) - g / lambda
    grad_u   = forward-difference gradient of u
    p^{n+1}  = (p^n + tau * grad_u) / (1 + tau * |grad_u|)

``g`` is the observed image (a read-only input field) and ``tau``/``lambda``
are scalar parameters.  One iteration reads ``p`` in a 3x3 neighbourhood
(stencil radius 1) and ``g`` in a small neighbourhood, and updates both
components of ``p`` — which is why the paper uses it as the "complex data
dependencies" case study: the cone carries a two-component state.
"""

from __future__ import annotations

from repro.frontend.dsl import ExprHandle, KernelBuilder, stencil_kernel
from repro.frontend.kernel_ir import StencilKernel

DEFAULT_TAU = 0.25
DEFAULT_LAMBDA = 0.1

#: Iteration count used by the paper's Chambolle tables (labels ``..to11``).
DEFAULT_ITERATIONS = 11


def _definition(builder: KernelBuilder) -> None:
    p = builder.field("p", components=2)
    p0 = p.component(0)
    p1 = p.component(1)
    g = builder.field("g")
    tau = builder.param("tau", DEFAULT_TAU)
    lam = builder.param("lambda", DEFAULT_LAMBDA)

    def divergence(dx: int, dy: int) -> ExprHandle:
        """Backward-difference divergence of p at offset (dx, dy)."""
        return (p0(dx, dy) - p0(dx - 1, dy)) + (p1(dx, dy) - p1(dx, dy - 1))

    def dual_image(dx: int, dy: int) -> ExprHandle:
        """u = div(p) - g / lambda at offset (dx, dy)."""
        return divergence(dx, dy) - g(dx, dy) / lam

    grad_x = dual_image(1, 0) - dual_image(0, 0)
    grad_y = dual_image(0, 1) - dual_image(0, 0)
    norm = builder.sqrt(grad_x * grad_x + grad_y * grad_y)
    denominator = 1.0 + tau * norm

    builder.update(p0, (p0(0, 0) + tau * grad_x) / denominator)
    builder.update(p1, (p1(0, 0) + tau * grad_y) / denominator)


def chambolle_kernel(name: str = "chamb") -> StencilKernel:
    """Build the Chambolle total-variation kernel (two-component dual field)."""
    return stencil_kernel(
        name, _definition,
        description="Chambolle total-variation minimisation (dual projection step)",
    )


CHAMBOLLE_C_SOURCE = """\
/* One iteration of Chambolle's total-variation dual projection. */
#define tau 0.25f
#define lambda 0.1f

void chamb(float pn[2][H][W], const float p[2][H][W], const float g[H][W]) {
    for (int y = 1; y < H - 1; y++) {
        for (int x = 1; x < W - 1; x++) {
            float u00 = (p[0][y][x] - p[0][y][x - 1])
                      + (p[1][y][x] - p[1][y - 1][x]) - g[y][x] / lambda;
            float u10 = (p[0][y][x + 1] - p[0][y][x])
                      + (p[1][y][x + 1] - p[1][y - 1][x + 1]) - g[y][x + 1] / lambda;
            float u01 = (p[0][y + 1][x] - p[0][y + 1][x - 1])
                      + (p[1][y + 1][x] - p[1][y][x]) - g[y + 1][x] / lambda;
            float gx = u10 - u00;
            float gy = u01 - u00;
            float norm = sqrtf(gx * gx + gy * gy);
            float den = 1.0f + tau * norm;
            pn[0][y][x] = (p[0][y][x] + tau * gx) / den;
            pn[1][y][x] = (p[1][y][x] + tau * gy) / den;
        }
    }
}
"""
