"""Explicit heat-equation time stepping (2D diffusion).

A classic iterative stencil from scientific computing: forward-Euler time
integration of the diffusion equation, each step adding the scaled 5-point
Laplacian to the current temperature field.
"""

from __future__ import annotations

from repro.frontend.dsl import KernelBuilder, stencil_kernel
from repro.frontend.kernel_ir import StencilKernel

DEFAULT_ALPHA = 0.2
DEFAULT_ITERATIONS = 12


def _definition(builder: KernelBuilder) -> None:
    t = builder.field("t")
    alpha = builder.param("alpha", DEFAULT_ALPHA)
    laplacian = t(1, 0) + t(-1, 0) + t(0, 1) + t(0, -1) - 4.0 * t(0, 0)
    builder.update(t, t(0, 0) + alpha * laplacian)


def heat_equation_kernel(name: str = "heat") -> StencilKernel:
    """Build the explicit 2D heat-equation kernel."""
    return stencil_kernel(
        name, _definition,
        description="Forward-Euler 2D heat equation (5-point Laplacian)",
    )


HEAT_C_SOURCE = """\
/* One explicit Euler step of the 2D heat equation. */
#define alpha 0.2f

void heat(float out[H][W], const float t[H][W]) {
    for (int y = 1; y < H - 1; y++) {
        for (int x = 1; x < W - 1; x++) {
            float lap = t[y][x + 1] + t[y][x - 1] + t[y + 1][x] + t[y - 1][x]
                      - 4.0f * t[y][x];
            out[y][x] = t[y][x] + alpha * lap;
        }
    }
}
"""
