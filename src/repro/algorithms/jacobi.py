"""Jacobi iteration — the scientific-computation workload the paper cites [17].

The 5-point Jacobi relaxation solves a Laplace/Poisson problem by repeatedly
replacing each element with the average of its four neighbours (plus a scaled
right-hand side).  It is the canonical fixed-point ISL: the iteration count is
in principle unbounded and chosen by a convergence criterion, which the flow
treats as an a-priori iteration budget (Section 2 of the paper).
"""

from __future__ import annotations

from repro.frontend.dsl import KernelBuilder, stencil_kernel
from repro.frontend.kernel_ir import StencilKernel

DEFAULT_ITERATIONS = 16


def _definition(builder: KernelBuilder) -> None:
    u = builder.field("u")
    rhs = builder.field("rhs")
    h2 = builder.param("h2", 1.0)
    builder.update(
        u,
        0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) + u(0, -1) - h2 * rhs(0, 0)),
    )


def jacobi_kernel(name: str = "jacobi") -> StencilKernel:
    """Build the 5-point Jacobi relaxation kernel (Poisson right-hand side)."""
    return stencil_kernel(
        name, _definition,
        description="5-point Jacobi relaxation for Laplace/Poisson problems",
    )


JACOBI_C_SOURCE = """\
/* One Jacobi relaxation sweep for the Poisson equation. */
#define h2 1.0f

void jacobi(float out[H][W], const float u[H][W], const float rhs[H][W]) {
    for (int y = 1; y < H - 1; y++) {
        for (int x = 1; x < W - 1; x++) {
            out[y][x] = 0.25f * (u[y][x + 1] + u[y][x - 1]
                               + u[y + 1][x] + u[y - 1][x]
                               - h2 * rhs[y][x]);
        }
    }
}
"""
