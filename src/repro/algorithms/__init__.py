"""Case-study ISL algorithms.

Every algorithm is available in two equivalent forms — a Python DSL kernel
and a C source string parsed by the frontend — plus the metadata the flow and
the benchmarks need (default iteration count, typical frame sizes, the paper
reference it reproduces).
"""

from repro.algorithms.registry import (
    AlgorithmSpec,
    ALGORITHMS,
    get_algorithm,
    list_algorithms,
)
from repro.algorithms.gaussian import (
    iterative_gaussian_filter_kernel,
    IGF_C_SOURCE,
)
from repro.algorithms.chambolle import chambolle_kernel, CHAMBOLLE_C_SOURCE
from repro.algorithms.jacobi import jacobi_kernel, JACOBI_C_SOURCE
from repro.algorithms.heat import heat_equation_kernel, HEAT_C_SOURCE
from repro.algorithms.convolution import convolution_3x3_kernel, CONVOLUTION_C_SOURCE
from repro.algorithms.morphology import erosion_kernel, dilation_kernel

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "get_algorithm",
    "list_algorithms",
    "iterative_gaussian_filter_kernel",
    "IGF_C_SOURCE",
    "chambolle_kernel",
    "CHAMBOLLE_C_SOURCE",
    "jacobi_kernel",
    "JACOBI_C_SOURCE",
    "heat_equation_kernel",
    "HEAT_C_SOURCE",
    "convolution_3x3_kernel",
    "CONVOLUTION_C_SOURCE",
    "erosion_kernel",
    "dilation_kernel",
]
