"""Symbolic execution of stencil kernels.

This package implements Section 3.2 of the paper: the value of an element at
iteration ``i+m`` is expressed as a function of elements at iteration ``i`` by
running the kernel on *symbols* rather than values, and the exponential
symbol blow-up is avoided by hash-consing every sub-expression (the register
reuse the paper enforces during VHDL generation).
"""

from repro.symbolic.expression import (
    Expression,
    ExpressionBuilder,
    FieldSymbol,
    Constant,
    Operation,
    OpKind,
    count_nodes,
    count_operations,
    collect_symbols,
    evaluate,
)
from repro.symbolic.executor import SymbolicExecutor, SymbolicFrame
from repro.symbolic.dependency import (
    DependencyFootprint,
    ConeDomain,
    analyze_footprint,
    cone_input_window,
    cone_element_count,
)
from repro.symbolic.cone_expression import ConeExpressionBuilder, ConeExpressions
from repro.symbolic.invariance import (
    check_translation_invariance,
    check_domain_narrowness,
    InvarianceReport,
)

__all__ = [
    "Expression",
    "ExpressionBuilder",
    "FieldSymbol",
    "Constant",
    "Operation",
    "OpKind",
    "count_nodes",
    "count_operations",
    "collect_symbols",
    "evaluate",
    "SymbolicExecutor",
    "SymbolicFrame",
    "DependencyFootprint",
    "ConeDomain",
    "analyze_footprint",
    "cone_input_window",
    "cone_element_count",
    "ConeExpressionBuilder",
    "ConeExpressions",
    "check_translation_invariance",
    "check_domain_narrowness",
    "InvarianceReport",
]
