"""Dependency footprint analysis and cone-domain geometry.

These are the quantities Section 3.1 of the paper reasons about: starting
from a cone output *window* at iteration ``i+m`` and propagating the stencil
footprint back ``m`` levels gives the *domain* of the cone — the set of
iteration-``i`` elements it must read — and the number of intermediate
elements it computes on the way, which drives both the register count and the
area of the generated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.utils.geometry import Offset, Window, bounding_window
from repro.utils.validation import check_positive
from repro.frontend.kernel_ir import StencilKernel


@dataclass(frozen=True)
class DependencyFootprint:
    """The single-iteration dependency scheme of a kernel."""

    kernel_name: str
    offsets: Tuple[Offset, ...]
    radius: int
    per_field_offsets: Dict[str, Tuple[Offset, ...]]
    readonly_offsets: Dict[str, Tuple[Offset, ...]]

    @property
    def size(self) -> int:
        """Number of distinct state-field elements read per output element."""
        return len(self.offsets)

    @property
    def bounding(self) -> Window:
        return bounding_window(self.offsets)


def analyze_footprint(kernel: StencilKernel) -> DependencyFootprint:
    """Compute the dependency footprint of a kernel."""
    state_fields = set(kernel.state_field_names)
    per_field: Dict[str, set] = {}
    readonly: Dict[str, set] = {}
    for update in kernel.updates:
        for read in update.expr.reads():
            bucket = per_field if read.field_name in state_fields else readonly
            bucket.setdefault(read.field_name, set()).add(read.offset)
    all_offsets = set()
    for offsets in per_field.values():
        all_offsets.update(offsets)
    radius = max((o.chebyshev() for o in all_offsets), default=0)
    return DependencyFootprint(
        kernel_name=kernel.name,
        offsets=tuple(sorted(all_offsets, key=lambda o: (o.dy, o.dx))),
        radius=radius,
        per_field_offsets={k: tuple(sorted(v, key=lambda o: (o.dy, o.dx)))
                           for k, v in per_field.items()},
        readonly_offsets={k: tuple(sorted(v, key=lambda o: (o.dy, o.dx)))
                          for k, v in readonly.items()},
    )


def cone_input_window(output_window: Window, radius: int, depth: int) -> Window:
    """The iteration-``i`` window a cone of ``depth`` levels must read.

    Every level grows the window by the stencil radius on each side.
    """
    check_positive("depth", depth)
    return output_window.inflate(radius * depth)


def level_window(output_window: Window, radius: int, depth: int,
                 level: int) -> Window:
    """The window of elements needed at intermediate ``level`` (0..depth).

    ``level == depth`` is the output window itself; ``level == 0`` is the cone
    input window.
    """
    if not (0 <= level <= depth):
        raise ValueError(f"level {level} out of range for depth {depth}")
    return output_window.inflate(radius * (depth - level))


def cone_element_count(window_side: int, radius: int, depth: int,
                       components: int = 1) -> int:
    """Number of elements a cone computes across all its levels (1..depth).

    This is the quantity that drives register usage: with full data reuse each
    computed element occupies one register holding its value while the next
    level consumes it.
    """
    check_positive("window_side", window_side)
    check_positive("depth", depth)
    total = 0
    for level in range(1, depth + 1):
        side = window_side + 2 * radius * (depth - level)
        total += side * side
    return total * components


def cone_input_count(window_side: int, radius: int, depth: int,
                     components: int = 1) -> int:
    """Number of iteration-``i`` elements a cone reads (its level-0 window)."""
    side = window_side + 2 * radius * depth
    return side * side * components


@dataclass(frozen=True)
class ConeDomain:
    """Full geometric characterisation of a cone."""

    output_window: Window
    depth: int
    radius: int
    components: int

    @property
    def window_side(self) -> int:
        if not self.output_window.is_square():
            raise ValueError("cone domains are defined for square windows")
        return self.output_window.width

    @property
    def input_window(self) -> Window:
        return cone_input_window(self.output_window, self.radius, self.depth)

    @property
    def output_elements(self) -> int:
        return self.output_window.area * self.components

    @property
    def input_elements(self) -> int:
        return self.input_window.area * self.components

    @property
    def computed_elements(self) -> int:
        return cone_element_count(self.window_side, self.radius, self.depth,
                                  self.components)

    def level_windows(self) -> List[Window]:
        """Windows from level 0 (input) to level ``depth`` (output)."""
        return [level_window(self.output_window, self.radius, self.depth, lvl)
                for lvl in range(self.depth + 1)]

    def recompute_overhead(self) -> float:
        """Ratio of computed elements to output elements.

        A value of 1.0 means no halo recomputation; larger windows amortise
        the halo and drive this ratio towards ``depth`` (one element computed
        per level per output element).
        """
        return self.computed_elements / self.output_elements
