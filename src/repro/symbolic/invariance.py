"""Verification of the two ISL properties via symbolic execution.

The frontend guarantees translation invariance *syntactically* (array
subscripts must be ``loop index + constant``).  This module additionally
verifies the property *semantically*, by symbolically executing the kernel at
two different target elements and checking that the resulting expressions are
identical up to a translation of the leaf symbols — which is the definition
given in Section 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.utils.geometry import Offset
from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import MAX_NARROW_FOOTPRINT, MAX_NARROW_RADIUS
from repro.symbolic.dependency import analyze_footprint
from repro.symbolic.executor import SymbolicExecutor
from repro.symbolic.expression import (
    Constant,
    Expression,
    ExpressionBuilder,
    FieldSymbol,
    Operation,
)


@dataclass(frozen=True)
class InvarianceReport:
    """Outcome of the invariance / narrowness verification."""

    kernel_name: str
    is_translation_invariant: bool
    is_domain_narrow: bool
    radius: int
    footprint_size: int
    detail: str = ""

    @property
    def is_isl(self) -> bool:
        """True when the kernel is in the class the flow targets."""
        return self.is_translation_invariant and self.is_domain_narrow

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "kernel_name": self.kernel_name,
            "is_translation_invariant": self.is_translation_invariant,
            "is_domain_narrow": self.is_domain_narrow,
            "radius": self.radius,
            "footprint_size": self.footprint_size,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InvarianceReport":
        return cls(
            kernel_name=data["kernel_name"],
            is_translation_invariant=data["is_translation_invariant"],
            is_domain_narrow=data["is_domain_narrow"],
            radius=data["radius"],
            footprint_size=data["footprint_size"],
            detail=data.get("detail", ""),
        )


def _structurally_equal_translated(a: Expression, b: Expression,
                                   shift: Offset) -> bool:
    """Check ``b`` is ``a`` with every symbol translated by ``shift``."""
    if isinstance(a, Constant) and isinstance(b, Constant):
        return a.value == b.value
    if isinstance(a, FieldSymbol) and isinstance(b, FieldSymbol):
        return (a.field == b.field and a.component == b.component
                and a.level == b.level
                and b.offset == a.offset + shift)
    if isinstance(a, Operation) and isinstance(b, Operation):
        if a.kind is not b.kind or len(a.operands) != len(b.operands):
            return False
        return all(_structurally_equal_translated(x, y, shift)
                   for x, y in zip(a.operands, b.operands))
    return False


def check_translation_invariance(kernel: StencilKernel,
                                 probe: Offset = Offset(3, 5)) -> bool:
    """Symbolically verify translation invariance.

    Executes the kernel for the element at the origin and for the element at
    ``probe`` and checks the two expression trees are identical up to
    translating every leaf symbol by ``probe``.
    """
    # Two separate builders so node-id-based canonicalisation of commutative
    # operands happens in the same creation order for both executions; the
    # comparison is then a pure structural walk.
    at_origin = SymbolicExecutor(kernel, ExpressionBuilder(simplify=False)) \
        .execute_once(Offset(0, 0))
    at_probe = SymbolicExecutor(kernel, ExpressionBuilder(simplify=False)) \
        .execute_once(probe)
    for key, origin_expr in at_origin.expressions.items():
        probe_expr = at_probe.expressions[key]
        if not _structurally_equal_translated(origin_expr, probe_expr, probe):
            return False
    return True


def check_domain_narrowness(kernel: StencilKernel,
                            max_radius: int = MAX_NARROW_RADIUS,
                            max_footprint: int = MAX_NARROW_FOOTPRINT) -> bool:
    """Check the dependency footprint is small and local."""
    footprint = analyze_footprint(kernel)
    return footprint.radius <= max_radius and footprint.size <= max_footprint


def verify_kernel(kernel: StencilKernel) -> InvarianceReport:
    """Run both checks and produce a report used by the flow frontend."""
    footprint = analyze_footprint(kernel)
    invariant = check_translation_invariance(kernel)
    narrow = check_domain_narrowness(kernel)
    details = []
    if not invariant:
        details.append("dependency scheme changes with the target element")
    if not narrow:
        details.append(
            f"footprint too large (radius {footprint.radius}, "
            f"{footprint.size} reads)"
        )
    return InvarianceReport(
        kernel_name=kernel.name,
        is_translation_invariant=invariant,
        is_domain_narrow=narrow,
        radius=footprint.radius,
        footprint_size=footprint.size,
        detail="; ".join(details),
    )
