"""Hash-consed symbolic expression DAG.

Every expression node is interned in a per-builder table keyed by its
structure, so two structurally identical sub-expressions are represented by
the *same* object.  This is the data structure that makes the paper's
register-reuse observation concrete: the number of distinct nodes in the DAG
built for a cone is exactly the number of registers the generated VHDL needs,
and it grows polynomially with the cone size instead of exponentially.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.utils.geometry import Offset


class OpKind(enum.Enum):
    """Arithmetic / logic operators supported by the stencil IR."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    SQRT = "sqrt"
    CMP_LT = "cmp_lt"
    CMP_LE = "cmp_le"
    CMP_GT = "cmp_gt"
    CMP_GE = "cmp_ge"
    CMP_EQ = "cmp_eq"
    SELECT = "select"  # SELECT(cond, a, b) -> a if cond else b

    @property
    def arity(self) -> int:
        if self in (OpKind.ABS, OpKind.NEG, OpKind.SQRT):
            return 1
        if self is OpKind.SELECT:
            return 3
        return 2

    @property
    def is_commutative(self) -> bool:
        return self in (OpKind.ADD, OpKind.MUL, OpKind.MIN, OpKind.MAX,
                        OpKind.CMP_EQ)

    @property
    def is_comparison(self) -> bool:
        return self in (OpKind.CMP_LT, OpKind.CMP_LE, OpKind.CMP_GT,
                        OpKind.CMP_GE, OpKind.CMP_EQ)


class Expression:
    """Base class of all DAG nodes.  Nodes are immutable once built."""

    __slots__ = ("_id", "_depth")

    def __init__(self, node_id: int, depth: int) -> None:
        self._id = node_id
        self._depth = depth

    @property
    def node_id(self) -> int:
        """A builder-unique integer identifying this interned node."""
        return self._id

    @property
    def depth(self) -> int:
        """Height of the expression tree rooted at this node (leaves = 0)."""
        return self._depth

    def children(self) -> Tuple["Expression", ...]:
        return ()

    def __hash__(self) -> int:  # identity hashing: nodes are interned
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class FieldSymbol(Expression):
    """A leaf symbol: element ``field[component]`` at ``offset`` of a source frame.

    The ``level`` tag records which iteration level of a cone the symbol lives
    at; symbols created by the single-iteration symbolic execution always have
    ``level == 0``.
    """

    __slots__ = ("field", "component", "offset", "level")

    def __init__(self, node_id: int, field_name: str, component: int,
                 offset: Offset, level: int = 0) -> None:
        super().__init__(node_id, 0)
        self.field = field_name
        self.component = component
        self.offset = offset
        self.level = level

    def __repr__(self) -> str:
        comp = f".{self.component}" if self.component else ""
        return f"{self.field}{comp}[{self.offset.dx:+d},{self.offset.dy:+d}]@L{self.level}"


class Constant(Expression):
    """A numeric literal (kernel coefficient, algorithm parameter)."""

    __slots__ = ("value",)

    def __init__(self, node_id: int, value: float) -> None:
        super().__init__(node_id, 0)
        self.value = value

    def __repr__(self) -> str:
        return f"const({self.value!r})"


class Operation(Expression):
    """An operator node applied to interned operand nodes."""

    __slots__ = ("kind", "operands")

    def __init__(self, node_id: int, kind: OpKind,
                 operands: Tuple[Expression, ...]) -> None:
        depth = 1 + max(op.depth for op in operands)
        super().__init__(node_id, depth)
        self.kind = kind
        self.operands = operands

    def children(self) -> Tuple[Expression, ...]:
        return self.operands

    def __repr__(self) -> str:
        inner = ", ".join(repr(o) for o in self.operands)
        return f"{self.kind.value}({inner})"


# Structural key types used by the interning table.
_SymKey = Tuple[str, str, int, int, int, int]
_ConstKey = Tuple[str, float]
_OpKey = Tuple[str, str, Tuple[int, ...]]


class ExpressionBuilder:
    """Factory that interns every node it creates (hash-consing).

    All expressions that take part in the same cone must be created through a
    single builder so that structurally identical sub-expressions collapse to
    one node — this is what the paper calls *register reuse*.

    The builder also applies a small set of algebraic simplifications
    (x*0, x*1, x+0, x-x, ...) that a VHDL generator would perform anyway and
    that keep the register counts meaningful.
    """

    def __init__(self, simplify: bool = True) -> None:
        self._simplify = simplify
        self._symbols: Dict[_SymKey, FieldSymbol] = {}
        self._constants: Dict[_ConstKey, Constant] = {}
        self._operations: Dict[_OpKey, Operation] = {}
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # node constructors

    def _new_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def symbol(self, field_name: str, offset: Offset, component: int = 0,
               level: int = 0) -> FieldSymbol:
        key = ("sym", field_name, component, offset.dx, offset.dy, level)
        node = self._symbols.get(key)
        if node is None:
            node = FieldSymbol(self._new_id(), field_name, component, offset, level)
            self._symbols[key] = node
        return node

    def constant(self, value: float) -> Constant:
        value = float(value)
        key = ("const", value)
        node = self._constants.get(key)
        if node is None:
            node = Constant(self._new_id(), value)
            self._constants[key] = node
        return node

    def operation(self, kind: OpKind, *operands: Expression) -> Expression:
        if len(operands) != kind.arity:
            raise ValueError(
                f"{kind.value} expects {kind.arity} operands, got {len(operands)}"
            )
        if self._simplify:
            simplified = self._try_simplify(kind, operands)
            if simplified is not None:
                return simplified
        ordered = tuple(operands)
        if kind.is_commutative:
            ordered = tuple(sorted(ordered, key=lambda n: n.node_id))
        key = ("op", kind.value, tuple(n.node_id for n in ordered))
        node = self._operations.get(key)
        if node is None:
            node = Operation(self._new_id(), kind, ordered)
            self._operations[key] = node
        return node

    # convenience wrappers -------------------------------------------------

    def add(self, a: Expression, b: Expression) -> Expression:
        return self.operation(OpKind.ADD, a, b)

    def sub(self, a: Expression, b: Expression) -> Expression:
        return self.operation(OpKind.SUB, a, b)

    def mul(self, a: Expression, b: Expression) -> Expression:
        return self.operation(OpKind.MUL, a, b)

    def div(self, a: Expression, b: Expression) -> Expression:
        return self.operation(OpKind.DIV, a, b)

    def minimum(self, a: Expression, b: Expression) -> Expression:
        return self.operation(OpKind.MIN, a, b)

    def maximum(self, a: Expression, b: Expression) -> Expression:
        return self.operation(OpKind.MAX, a, b)

    def absolute(self, a: Expression) -> Expression:
        return self.operation(OpKind.ABS, a)

    def negate(self, a: Expression) -> Expression:
        return self.operation(OpKind.NEG, a)

    def sqrt(self, a: Expression) -> Expression:
        return self.operation(OpKind.SQRT, a)

    def select(self, cond: Expression, a: Expression, b: Expression) -> Expression:
        return self.operation(OpKind.SELECT, cond, a, b)

    # ------------------------------------------------------------------ #
    # simplification

    def _try_simplify(self, kind: OpKind,
                      operands: Tuple[Expression, ...]) -> Optional[Expression]:
        """Constant folding and identity elimination.

        Returns ``None`` when no simplification applies, otherwise the
        simplified (already interned) node.
        """
        if all(isinstance(o, Constant) for o in operands):
            values = [o.value for o in operands]  # type: ignore[union-attr]
            return self.constant(_fold_constant(kind, values))

        if kind is OpKind.ADD:
            a, b = operands
            if isinstance(a, Constant) and a.value == 0.0:
                return b
            if isinstance(b, Constant) and b.value == 0.0:
                return a
        elif kind is OpKind.SUB:
            a, b = operands
            if isinstance(b, Constant) and b.value == 0.0:
                return a
            if a is b:
                return self.constant(0.0)
        elif kind is OpKind.MUL:
            a, b = operands
            for x, y in ((a, b), (b, a)):
                if isinstance(x, Constant):
                    if x.value == 0.0:
                        return self.constant(0.0)
                    if x.value == 1.0:
                        return y
        elif kind is OpKind.DIV:
            a, b = operands
            if isinstance(b, Constant):
                if b.value == 1.0:
                    return a
                if b.value == 0.0:
                    raise ZeroDivisionError("division by constant zero in kernel")
            if isinstance(a, Constant) and a.value == 0.0:
                return self.constant(0.0)
        elif kind in (OpKind.MIN, OpKind.MAX):
            a, b = operands
            if a is b:
                return a
        elif kind is OpKind.SELECT:
            cond, a, b = operands
            if isinstance(cond, Constant):
                return a if cond.value != 0.0 else b
            if a is b:
                return a
        return None

    # ------------------------------------------------------------------ #
    # statistics

    @property
    def interned_node_count(self) -> int:
        """Total number of distinct nodes created so far."""
        return len(self._symbols) + len(self._constants) + len(self._operations)

    @property
    def interned_operation_count(self) -> int:
        return len(self._operations)

    @property
    def interned_symbol_count(self) -> int:
        return len(self._symbols)


def _fold_constant(kind: OpKind, values: Sequence[float]) -> float:
    """Evaluate an operator on constant operands."""
    if kind is OpKind.ADD:
        return values[0] + values[1]
    if kind is OpKind.SUB:
        return values[0] - values[1]
    if kind is OpKind.MUL:
        return values[0] * values[1]
    if kind is OpKind.DIV:
        return values[0] / values[1]
    if kind is OpKind.MIN:
        return min(values[0], values[1])
    if kind is OpKind.MAX:
        return max(values[0], values[1])
    if kind is OpKind.ABS:
        return abs(values[0])
    if kind is OpKind.NEG:
        return -values[0]
    if kind is OpKind.SQRT:
        return math.sqrt(values[0])
    if kind is OpKind.CMP_LT:
        return 1.0 if values[0] < values[1] else 0.0
    if kind is OpKind.CMP_LE:
        return 1.0 if values[0] <= values[1] else 0.0
    if kind is OpKind.CMP_GT:
        return 1.0 if values[0] > values[1] else 0.0
    if kind is OpKind.CMP_GE:
        return 1.0 if values[0] >= values[1] else 0.0
    if kind is OpKind.CMP_EQ:
        return 1.0 if values[0] == values[1] else 0.0
    if kind is OpKind.SELECT:
        return values[1] if values[0] != 0.0 else values[2]
    raise ValueError(f"unknown operator {kind!r}")


# ---------------------------------------------------------------------- #
# DAG traversal helpers


def _reachable(roots: Iterable[Expression]) -> List[Expression]:
    """Return every node reachable from ``roots``, each exactly once."""
    seen: Set[int] = set()
    order: List[Expression] = []
    stack: List[Expression] = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        order.append(node)
        stack.extend(node.children())
    return order


def count_nodes(roots: Iterable[Expression]) -> int:
    """Number of distinct DAG nodes reachable from ``roots``.

    With register reuse enforced, this is the number of registers the cone
    needs (the ``Reg_i`` quantity of Equation 1 in the paper).
    """
    return len(_reachable(roots))


def count_operations(roots: Iterable[Expression]) -> Dict[OpKind, int]:
    """Count distinct operation nodes per operator kind."""
    counts: Dict[OpKind, int] = {}
    for node in _reachable(roots):
        if isinstance(node, Operation):
            counts[node.kind] = counts.get(node.kind, 0) + 1
    return counts


def collect_symbols(roots: Iterable[Expression]) -> List[FieldSymbol]:
    """Return every distinct leaf symbol reachable from ``roots``."""
    return [n for n in _reachable(roots) if isinstance(n, FieldSymbol)]


def evaluate(root: Expression,
             bindings: Mapping[Tuple[str, int, int, int, int], float],
             cache: Optional[Dict[int, float]] = None) -> float:
    """Numerically evaluate an expression.

    ``bindings`` maps ``(field, component, dx, dy, level)`` to a value.  Used
    by the functional cone simulator and by tests that cross-check symbolic
    execution against direct software execution of the kernel.
    """
    if cache is None:
        cache = {}

    def visit(node: Expression) -> float:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Constant):
            value = node.value
        elif isinstance(node, FieldSymbol):
            key = (node.field, node.component, node.offset.dx, node.offset.dy,
                   node.level)
            if key not in bindings:
                raise KeyError(f"no binding for symbol {node!r}")
            value = bindings[key]
        elif isinstance(node, Operation):
            if node.kind is OpKind.SELECT:
                # short-circuit: the unselected branch is hardware don't-care,
                # so numeric evaluation must not fault on it (e.g. sqrt of a
                # negative value on the not-taken path).
                condition = visit(node.operands[0])
                value = visit(node.operands[1] if condition != 0.0
                              else node.operands[2])
            else:
                operand_values = [visit(op) for op in node.operands]
                value = _fold_constant(node.kind, operand_values)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown expression node {node!r}")
        cache[id(node)] = value
        return value

    return visit(root)


def evaluate_array(root: Expression,
                   bindings: Mapping[Tuple[str, int, int, int, int], "object"],
                   cache: Optional[Dict[int, "object"]] = None) -> "object":
    """Vectorized twin of :func:`evaluate` over NumPy array bindings.

    ``bindings`` maps ``(field, component, dx, dy, level)`` to arrays of one
    common shape (one element per evaluation site); the return value has the
    same shape.  Every element of the result is bit-identical to what
    :func:`evaluate` produces from the corresponding scalar bindings: both
    paths use correctly rounded IEEE float64 primitives, comparisons encode
    to the same 1.0/0.0, and SELECT — which the scalar evaluator
    short-circuits — is merged elementwise with ``np.where`` after
    evaluating *both* branches (float faults on not-taken lanes, e.g. sqrt
    of a negative, are suppressed and their lanes discarded).

    Sharing ``cache`` across several roots of one DAG reuses common
    sub-expression results, exactly like the scalar evaluator.
    """
    import numpy as np  # deferred: the symbolic core itself is stdlib-only

    if cache is None:
        cache = {}

    def visit(node: Expression):
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Constant):
            value = np.float64(node.value)
        elif isinstance(node, FieldSymbol):
            key = (node.field, node.component, node.offset.dx, node.offset.dy,
                   node.level)
            if key not in bindings:
                raise KeyError(f"no binding for symbol {node!r}")
            value = bindings[key]
        elif isinstance(node, Operation):
            kind = node.kind
            values = [visit(op) for op in node.operands]
            if kind is OpKind.ADD:
                value = values[0] + values[1]
            elif kind is OpKind.SUB:
                value = values[0] - values[1]
            elif kind is OpKind.MUL:
                value = values[0] * values[1]
            elif kind is OpKind.DIV:
                value = values[0] / values[1]
            elif kind is OpKind.MIN:
                value = np.minimum(values[0], values[1])
            elif kind is OpKind.MAX:
                value = np.maximum(values[0], values[1])
            elif kind is OpKind.ABS:
                value = np.abs(values[0])
            elif kind is OpKind.NEG:
                value = -values[0]
            elif kind is OpKind.SQRT:
                value = np.sqrt(values[0])
            elif kind is OpKind.CMP_LT:
                value = np.asarray(values[0] < values[1], dtype=np.float64)
            elif kind is OpKind.CMP_LE:
                value = np.asarray(values[0] <= values[1], dtype=np.float64)
            elif kind is OpKind.CMP_GT:
                value = np.asarray(values[0] > values[1], dtype=np.float64)
            elif kind is OpKind.CMP_GE:
                value = np.asarray(values[0] >= values[1], dtype=np.float64)
            elif kind is OpKind.CMP_EQ:
                value = np.asarray(values[0] == values[1], dtype=np.float64)
            elif kind is OpKind.SELECT:
                value = np.where(values[0] != 0.0, values[1], values[2])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown operator {kind!r}")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown expression node {node!r}")
        cache[id(node)] = value
        return value

    with np.errstate(invalid="ignore", divide="ignore"):
        return visit(root)


def expression_to_string(root: Expression, max_depth: int = 12) -> str:
    """Render an expression as a human-readable string (tests and debugging)."""

    def visit(node: Expression, depth: int) -> str:
        if depth > max_depth:
            return "..."
        if isinstance(node, (Constant, FieldSymbol)):
            return repr(node)
        assert isinstance(node, Operation)
        inner = ", ".join(visit(o, depth + 1) for o in node.operands)
        return f"{node.kind.value}({inner})"

    return visit(root, 0)
