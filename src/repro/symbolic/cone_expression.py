"""Multi-iteration cone expressions with enforced data reuse.

A *cone* of depth ``m`` and output window ``W`` computes every element of
``W`` at iteration ``i+m`` directly from iteration-``i`` elements.  The naive
way to obtain its equations — substituting the single-iteration expression
into itself ``m`` times — explodes exponentially; the paper avoids this by
storing every intermediate element (and every repeated operation) in a
register that is reused whenever the same value is needed again.

Here that strategy is the memo table: each ``(field, component, offset,
level)`` element is expanded exactly once, and the hash-consing expression
builder collapses repeated operations.  The number of distinct DAG nodes is
therefore exactly the number of registers of the generated VHDL — the
``Reg_i`` quantity of Equation 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.utils.geometry import Offset, Window
from repro.utils.validation import check_positive
from repro.frontend.kernel_ir import StencilKernel
from repro.symbolic.dependency import ConeDomain, analyze_footprint
from repro.symbolic.executor import READONLY_LEVEL, SymbolicExecutor
from repro.symbolic.expression import (
    Expression,
    ExpressionBuilder,
    FieldSymbol,
    OpKind,
    collect_symbols,
    count_nodes,
    count_operations,
)

ElementKey = Tuple[str, int, int, int, int]  # field, component, dx, dy, level


@dataclass
class ConeExpressions:
    """The symbolic result of unrolling a cone.

    Attributes
    ----------
    outputs:
        ``(field, component, offset) -> Expression`` for every element of the
        output window at the final level.
    register_count:
        Number of distinct DAG nodes (operations + element values + constants)
        reachable from the outputs — the registers of the generated VHDL.
    element_register_count:
        Number of distinct intermediate/output *element values* expanded
        (the memo table size), excluding raw input symbols.
    operation_counts:
        Distinct operation nodes per operator kind after reuse.
    input_symbols:
        The distinct level-0 / read-only symbols the cone reads.
    """

    kernel_name: str
    domain: ConeDomain
    outputs: Dict[Tuple[str, int, Offset], Expression]
    register_count: int
    element_register_count: int
    operation_counts: Dict[OpKind, int]
    input_symbols: List[FieldSymbol]

    @property
    def operation_count(self) -> int:
        return sum(self.operation_counts.values())

    @property
    def input_count(self) -> int:
        return len(self.input_symbols)

    @property
    def output_count(self) -> int:
        return len(self.outputs)

    @property
    def critical_path_depth(self) -> int:
        """Longest operator chain from any input to any output (DAG depth)."""
        return max((expr.depth for expr in self.outputs.values()), default=0)


class ConeExpressionBuilder:
    """Builds the reused-expression DAG of a cone for a given kernel."""

    def __init__(self, kernel: StencilKernel,
                 params: Optional[Mapping[str, float]] = None) -> None:
        self.kernel = kernel
        self.footprint = analyze_footprint(kernel)
        self._params = dict(params) if params else None

    # ------------------------------------------------------------------ #

    def build(self, window_side: int, depth: int) -> ConeExpressions:
        """Unroll ``depth`` iterations for a ``window_side x window_side`` output tile."""
        check_positive("window_side", window_side)
        check_positive("depth", depth)

        builder = ExpressionBuilder()
        executor = SymbolicExecutor(self.kernel, builder, self._params)
        state_fields = list(self.kernel.state_field_names)
        components = {decl.name: decl.components
                      for decl in self.kernel.fields}

        memo: Dict[ElementKey, Expression] = {}

        def element(field: str, component: int, offset: Offset,
                    level: int) -> Expression:
            """Expression of ``field[component]`` at ``offset`` of iteration ``level``."""
            if level == 0:
                return builder.symbol(field, offset, component, level=0)
            key = (field, component, offset.dx, offset.dy, level)
            cached = memo.get(key)
            if cached is not None:
                return cached

            def resolver(rfield: str, rcomponent: int, roffset: Offset) -> Expression:
                return element(rfield, rcomponent, roffset, level - 1)

            frame = executor.execute_once(target=offset, source_level=level - 1,
                                          state_resolver=resolver)
            for (ufield, ucomponent), expr in frame.expressions.items():
                memo[(ufield, ucomponent, offset.dx, offset.dy, level)] = expr
            result = memo.get(key)
            if result is None:
                raise KeyError(
                    f"kernel {self.kernel.name!r} does not update "
                    f"{field}[{component}]"
                )
            return result

        window = Window.square(window_side)
        outputs: Dict[Tuple[str, int, Offset], Expression] = {}
        for field in state_fields:
            for component in range(components[field]):
                for offset in window.elements():
                    outputs[(field, component, offset)] = element(
                        field, component, offset, depth)

        roots = list(outputs.values())
        domain = ConeDomain(
            output_window=window,
            depth=depth,
            radius=self.footprint.radius,
            components=sum(components[f] for f in state_fields),
        )
        symbols = collect_symbols(roots)
        return ConeExpressions(
            kernel_name=self.kernel.name,
            domain=domain,
            outputs=outputs,
            register_count=count_nodes(roots),
            element_register_count=len(memo),
            operation_counts=count_operations(roots),
            input_symbols=symbols,
        )
