"""Single-iteration symbolic execution of a stencil kernel.

As observed in Section 3.2 of the paper, the dependencies between two
consecutive iterations are identical for every iteration index, so symbolic
execution only ever needs to run for *one* iteration: the resulting
expressions are the building block from which any ``f_{i+m} -> f_i`` relation
is assembled (see :mod:`repro.symbolic.cone_expression`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.utils.geometry import Offset
from repro.frontend.kernel_ir import (
    BinOpKind,
    BinaryOp,
    FieldRead,
    KernelExpr,
    Literal,
    ParamRef,
    Select,
    StencilKernel,
    UnOpKind,
    UnaryOp,
)
from repro.symbolic.expression import Expression, ExpressionBuilder, OpKind

#: Level tag used for read-only (iteration-invariant) fields.  Their values
#: come straight from the input frame no matter how deep the cone is.
READONLY_LEVEL = -1

_BIN_TO_OP = {
    BinOpKind.ADD: OpKind.ADD,
    BinOpKind.SUB: OpKind.SUB,
    BinOpKind.MUL: OpKind.MUL,
    BinOpKind.DIV: OpKind.DIV,
    BinOpKind.MIN: OpKind.MIN,
    BinOpKind.MAX: OpKind.MAX,
    BinOpKind.LT: OpKind.CMP_LT,
    BinOpKind.LE: OpKind.CMP_LE,
    BinOpKind.GT: OpKind.CMP_GT,
    BinOpKind.GE: OpKind.CMP_GE,
    BinOpKind.EQ: OpKind.CMP_EQ,
}

_UN_TO_OP = {
    UnOpKind.ABS: OpKind.ABS,
    UnOpKind.SQRT: OpKind.SQRT,
}


@dataclass
class SymbolicFrame:
    """The result of symbolically executing one iteration for one element.

    ``expressions`` maps ``(field, component)`` to the expression of that
    component of the target element at iteration ``i+1`` in terms of level-0
    symbols (elements of iteration ``i`` and of read-only input fields).
    """

    target: Offset
    expressions: Dict[Tuple[str, int], Expression]

    def expression(self, field: str, component: int = 0) -> Expression:
        return self.expressions[(field, component)]


class SymbolicExecutor:
    """Runs a kernel on symbols instead of values.

    A single executor instance owns (or shares) an :class:`ExpressionBuilder`;
    all expressions produced through the same builder share sub-expressions,
    which is what keeps the symbol count polynomial.
    """

    def __init__(self, kernel: StencilKernel,
                 builder: Optional[ExpressionBuilder] = None,
                 params: Optional[Mapping[str, float]] = None) -> None:
        self.kernel = kernel
        self.builder = builder if builder is not None else ExpressionBuilder()
        merged = dict(kernel.params)
        if params:
            merged.update(params)
        self.params = merged
        self._state_fields = set(kernel.state_field_names)

    # ------------------------------------------------------------------ #

    def execute_once(self, target: Offset = Offset(0, 0),
                     source_level: int = 0,
                     state_resolver=None) -> SymbolicFrame:
        """Symbolically execute one iteration for the element at ``target``.

        ``state_resolver`` optionally overrides how reads of state fields are
        resolved; it receives ``(field, component, absolute_offset)`` and must
        return an :class:`Expression`.  When omitted, reads become level-
        ``source_level`` symbols.  The cone builder uses the resolver hook to
        chain iterations recursively.
        """
        expressions: Dict[Tuple[str, int], Expression] = {}
        for update in self.kernel.updates:
            expr = self._convert(update.expr, target, source_level, state_resolver)
            expressions[(update.field_name, update.component)] = expr
        return SymbolicFrame(target=target, expressions=expressions)

    # ------------------------------------------------------------------ #

    def _convert(self, expr: KernelExpr, target: Offset, source_level: int,
                 state_resolver) -> Expression:
        builder = self.builder
        if isinstance(expr, Literal):
            return builder.constant(expr.value)
        if isinstance(expr, ParamRef):
            if expr.name not in self.params:
                raise KeyError(f"no value supplied for parameter {expr.name!r}")
            return builder.constant(self.params[expr.name])
        if isinstance(expr, FieldRead):
            absolute = target + expr.offset
            if expr.field_name in self._state_fields:
                if state_resolver is not None:
                    return state_resolver(expr.field_name, expr.component, absolute)
                return builder.symbol(expr.field_name, absolute, expr.component,
                                      level=source_level)
            return builder.symbol(expr.field_name, absolute, expr.component,
                                  level=READONLY_LEVEL)
        if isinstance(expr, BinaryOp):
            left = self._convert(expr.left, target, source_level, state_resolver)
            right = self._convert(expr.right, target, source_level, state_resolver)
            return builder.operation(_BIN_TO_OP[expr.kind], left, right)
        if isinstance(expr, UnaryOp):
            operand = self._convert(expr.operand, target, source_level, state_resolver)
            if expr.kind is UnOpKind.NEG:
                return builder.operation(OpKind.SUB, builder.constant(0.0), operand)
            return builder.operation(_UN_TO_OP[expr.kind], operand)
        if isinstance(expr, Select):
            cond = self._convert(expr.cond, target, source_level, state_resolver)
            if_true = self._convert(expr.if_true, target, source_level, state_resolver)
            if_false = self._convert(expr.if_false, target, source_level, state_resolver)
            return builder.select(cond, if_true, if_false)
        raise TypeError(f"unsupported kernel expression node {type(expr).__name__}")
