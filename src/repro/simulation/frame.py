"""Frame containers used by the golden model and the cone simulators.

A :class:`Frame` is one named field of the algorithm state: a
``(components, height, width)`` NumPy array.  A :class:`FrameSet` bundles all
the fields a kernel carries (state fields plus read-only inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.frontend.kernel_ir import StencilKernel


@dataclass
class Frame:
    """One field of the algorithm state."""

    name: str
    data: np.ndarray  # shape (components, height, width)

    def __post_init__(self) -> None:
        array = np.asarray(self.data, dtype=np.float64)
        if array.ndim == 2:
            array = array[np.newaxis, :, :]
        if array.ndim != 3:
            raise ValueError(
                f"frame {self.name!r} must be 2D or 3D, got shape {array.shape}"
            )
        self.data = array

    @property
    def components(self) -> int:
        return self.data.shape[0]

    @property
    def height(self) -> int:
        return self.data.shape[1]

    @property
    def width(self) -> int:
        return self.data.shape[2]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.data.shape  # type: ignore[return-value]

    def component(self, index: int) -> np.ndarray:
        return self.data[index]

    def copy(self) -> "Frame":
        return Frame(self.name, self.data.copy())

    def clamped_read(self, component: int, y: int, x: int) -> float:
        """Read with clamp-to-edge boundary handling.

        Boundary contract: for *any* coordinate — arbitrarily far outside
        the frame, including on frames as small as 1×1 — the element read is
        ``data[component, clip(y, 0, height-1), clip(x, 0, width-1)]``.
        This is exactly the element a :meth:`padded` view exposes at the
        same logical coordinate, for any pad radius that covers it, so the
        per-pixel oracle paths and the vectorized padded-view paths read
        identical values everywhere (pinned by the edge-semantics
        regression tests in ``tests/simulation/test_frame_and_golden.py``).
        """
        yy = min(max(y, 0), self.height - 1)
        xx = min(max(x, 0), self.width - 1)
        return float(self.data[component, yy, xx])

    def padded(self, radius: int) -> np.ndarray:
        """Return the frame padded by ``radius`` with edge replication.

        Boundary contract: ``padded(r)[c, r + y, r + x]`` equals
        :meth:`clamped_read` of ``(c, y, x)`` for every ``y`` in
        ``[-r, height-1+r]`` and ``x`` in ``[-r, width-1+r]``.  This holds
        for *every* ``radius >= 0``, including ``radius >= height`` or
        ``radius >= width`` (e.g. a deep stencil over a 1×N or 1×1 frame):
        ``np.pad(..., mode="edge")`` replicates the outermost element into
        the whole pad band, which is exactly clamp-to-edge.
        """
        if radius == 0:
            return self.data.copy()
        return np.pad(self.data, ((0, 0), (radius, radius), (radius, radius)),
                      mode="edge")


class FrameSet:
    """All fields the kernel operates on, keyed by field name."""

    def __init__(self, frames: Iterable[Frame]) -> None:
        self._frames: Dict[str, Frame] = {}
        for frame in frames:
            if frame.name in self._frames:
                raise ValueError(f"duplicate frame {frame.name!r}")
            self._frames[frame.name] = frame
        if not self._frames:
            raise ValueError("a frame set needs at least one frame")
        shapes = {(f.height, f.width) for f in self._frames.values()}
        if len(shapes) != 1:
            raise ValueError(f"all frames must share the same spatial shape, got {shapes}")

    def __getitem__(self, name: str) -> Frame:
        return self._frames[name]

    def __contains__(self, name: str) -> bool:
        return name in self._frames

    def names(self) -> Tuple[str, ...]:
        return tuple(self._frames)

    @property
    def height(self) -> int:
        return next(iter(self._frames.values())).height

    @property
    def width(self) -> int:
        return next(iter(self._frames.values())).width

    def copy(self) -> "FrameSet":
        return FrameSet([f.copy() for f in self._frames.values()])

    def replace(self, name: str, data: np.ndarray) -> None:
        frame = self._frames[name]
        if data.shape != frame.data.shape:
            raise ValueError(
                f"replacement for {name!r} has shape {data.shape}, "
                f"expected {frame.data.shape}"
            )
        self._frames[name] = Frame(name, data)

    @staticmethod
    def for_kernel(kernel: StencilKernel, height: int, width: int,
                   initial: Optional[Mapping[str, np.ndarray]] = None,
                   seed: int = 0) -> "FrameSet":
        """Build a frame set matching a kernel's field declarations.

        Fields without supplied initial data get reproducible synthetic
        content (smooth gradients plus pseudo-random texture), which is what
        the benchmarks use in place of the paper's camera frames.
        """
        rng = np.random.default_rng(seed)
        frames = []
        for decl in kernel.fields:
            if initial is not None and decl.name in initial:
                data = np.asarray(initial[decl.name], dtype=np.float64)
                if data.ndim == 2:
                    data = data[np.newaxis, :, :]
                if data.shape[0] != decl.components:
                    raise ValueError(
                        f"initial data for {decl.name!r} has {data.shape[0]} "
                        f"components, expected {decl.components}"
                    )
            else:
                data = make_test_frame(height, width, decl.components, rng)
            frames.append(Frame(decl.name, data))
        return FrameSet(frames)


def make_test_frame(height: int, width: int, components: int = 1,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Deterministic synthetic frame: gradients, a disc, and mild noise."""
    rng = rng or np.random.default_rng(0)
    ys, xs = np.mgrid[0:height, 0:width]
    base = (0.4 * xs / max(width - 1, 1)
            + 0.3 * ys / max(height - 1, 1))
    cy, cx = height / 2.0, width / 2.0
    radius = min(height, width) / 4.0
    disc = (((ys - cy) ** 2 + (xs - cx) ** 2) <= radius ** 2).astype(np.float64)
    noise = rng.normal(0.0, 0.02, size=(components, height, width))
    frame = base[np.newaxis, :, :] + 0.3 * disc[np.newaxis, :, :] + noise
    return frame.astype(np.float64)
