"""The straightforward two-frame-buffer architecture (the state of the art
the paper improves upon, references [1][2][3] of the paper).

One iteration at a time: the whole frame ``f_i`` is read (from on-chip memory
when it fits, from off-chip otherwise), the stencil logic produces ``f_{i+1}``
element by element into the other buffer, and the buffers swap.  Its two
well-known problems — on-chip memory proportional to the frame size, and
off-chip traffic of the whole frame on every iteration when it does not fit —
are exactly what the cone architecture removes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import validate_kernel
from repro.ir.operators import DataFormat
from repro.simulation.vectorized import supports_vectorized
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760


@dataclass(frozen=True)
class FrameBufferPerformance:
    """Performance and feasibility report of the frame-buffer baseline."""

    kernel_name: str
    device_name: str
    frame_width: int
    frame_height: int
    iterations: int
    pixels_per_cycle: int
    frame_fits_onchip: bool
    onchip_bytes_required: int
    offchip_bytes_per_frame: float
    compute_cycles_per_frame: float
    transfer_cycles_per_frame: float
    seconds_per_frame: float
    frames_per_second: float


class FrameBufferArchitecture:
    """Analytic model of the classic double-buffer ISL implementation."""

    #: :meth:`evaluate_batch` vectorizes the closed form of
    #: :meth:`evaluate`; a subclass overriding ``evaluate`` is driven
    #: point-wise so its override is honored.
    _vectorized_hooks = ("evaluate",)

    def __init__(self, kernel: StencilKernel,
                 device: FpgaDevice = VIRTEX6_XC6VLX760,
                 data_format: DataFormat = DataFormat.FIXED32,
                 pixels_per_cycle: int = 1) -> None:
        self.kernel = kernel
        self.device = device
        self.data_format = data_format
        #: Elements produced per cycle by the stencil datapath.  The classic
        #: implementations referenced by the paper process one element per
        #: cycle; wider datapaths model hand-parallelised variants.
        self.pixels_per_cycle = max(1, pixels_per_cycle)
        self.properties = validate_kernel(kernel, strict=False)

    # ------------------------------------------------------------------ #

    def evaluate(self, frame_width: int, frame_height: int,
                 iterations: int) -> FrameBufferPerformance:
        """Estimate the frame time of the double-buffer architecture."""
        components = self.properties.total_state_components
        readonly = sum(self.properties.components_per_field[name]
                       for name in self.properties.readonly_fields)
        element_bytes = self.data_format.bytes
        pixels = frame_width * frame_height

        # Two full state buffers (ping-pong) plus read-only inputs must live
        # on chip for the fast path.
        onchip_required = (2 * components + readonly) * pixels * element_bytes
        fits = onchip_required <= self.device.onchip_memory_bytes

        clock = self.device.typical_clock_hz
        bytes_per_cycle = (self.device.offchip_bandwidth_bytes_per_s / clock)

        compute_cycles = iterations * pixels / self.pixels_per_cycle

        if fits:
            # load input once, store result once
            offchip_bytes = (components + readonly) * pixels * element_bytes \
                + components * pixels * element_bytes
            transfer_cycles = offchip_bytes / bytes_per_cycle
        else:
            # every iteration streams the full frame in and out
            per_iteration_bytes = (2 * components + readonly) * pixels * element_bytes
            offchip_bytes = iterations * per_iteration_bytes
            transfer_cycles = offchip_bytes / bytes_per_cycle

        # Without the cone decomposition compute and transfer serialise at the
        # iteration boundary (the next iteration cannot start before the
        # previous frame is complete), so overlapping is limited: we model the
        # optimistic case where transfer of iteration i overlaps compute of
        # iteration i-1, i.e. the frame time is the max of the two totals.
        total_cycles = max(compute_cycles, transfer_cycles)
        seconds = total_cycles / clock
        return FrameBufferPerformance(
            kernel_name=self.kernel.name,
            device_name=self.device.name,
            frame_width=frame_width,
            frame_height=frame_height,
            iterations=iterations,
            pixels_per_cycle=self.pixels_per_cycle,
            frame_fits_onchip=fits,
            onchip_bytes_required=onchip_required,
            offchip_bytes_per_frame=offchip_bytes,
            compute_cycles_per_frame=compute_cycles,
            transfer_cycles_per_frame=transfer_cycles,
            seconds_per_frame=seconds,
            frames_per_second=1.0 / seconds if seconds > 0 else 0.0,
        )

    def evaluate_batch(self, frame_widths, frame_heights,
                       iterations) -> Dict[str, np.ndarray]:
        """Vectorized :meth:`evaluate` over arrays of frame scenarios.

        The three inputs broadcast against each other; the result is a dict
        of parallel columns (one per numeric :class:`FrameBufferPerformance`
        field) whose every element is bit-identical to the corresponding
        scalar :meth:`evaluate` call — the closed form is evaluated with the
        same correctly rounded float64 primitives, and integer quantities
        stay exact (all products are far below 2**53).  If a subclass
        overrides :meth:`evaluate`, the batch is computed point-wise through
        the override instead.
        """
        widths = np.atleast_1d(np.asarray(frame_widths, dtype=np.int64))
        heights = np.atleast_1d(np.asarray(frame_heights, dtype=np.int64))
        iters = np.atleast_1d(np.asarray(iterations, dtype=np.int64))
        widths, heights, iters = np.broadcast_arrays(widths, heights, iters)

        if not supports_vectorized(self):
            reports = [self.evaluate(int(w), int(h), int(i))
                       for w, h, i in zip(widths.ravel(), heights.ravel(),
                                          iters.ravel())]
            shape = widths.shape
            return {
                "frame_fits_onchip": np.asarray(
                    [r.frame_fits_onchip for r in reports]).reshape(shape),
                "onchip_bytes_required": np.asarray(
                    [r.onchip_bytes_required for r in reports],
                    dtype=np.int64).reshape(shape),
                "offchip_bytes_per_frame": np.asarray(
                    [r.offchip_bytes_per_frame for r in reports],
                    dtype=np.float64).reshape(shape),
                "compute_cycles_per_frame": np.asarray(
                    [r.compute_cycles_per_frame for r in reports],
                    dtype=np.float64).reshape(shape),
                "transfer_cycles_per_frame": np.asarray(
                    [r.transfer_cycles_per_frame for r in reports],
                    dtype=np.float64).reshape(shape),
                "seconds_per_frame": np.asarray(
                    [r.seconds_per_frame for r in reports],
                    dtype=np.float64).reshape(shape),
                "frames_per_second": np.asarray(
                    [r.frames_per_second for r in reports],
                    dtype=np.float64).reshape(shape),
            }

        components = self.properties.total_state_components
        readonly = sum(self.properties.components_per_field[name]
                       for name in self.properties.readonly_fields)
        element_bytes = self.data_format.bytes
        pixels = widths * heights

        onchip_required = (2 * components + readonly) * pixels * element_bytes
        fits = onchip_required <= self.device.onchip_memory_bytes

        clock = self.device.typical_clock_hz
        bytes_per_cycle = self.device.offchip_bandwidth_bytes_per_s / clock

        compute_cycles = iters * pixels / self.pixels_per_cycle

        fits_bytes = (components + readonly) * pixels * element_bytes \
            + components * pixels * element_bytes
        streamed_bytes = iters * (2 * components + readonly) * pixels * element_bytes
        offchip_bytes = np.where(fits, fits_bytes, streamed_bytes)
        transfer_cycles = offchip_bytes / bytes_per_cycle

        total_cycles = np.maximum(compute_cycles, transfer_cycles)
        seconds = total_cycles / clock
        with np.errstate(divide="ignore"):
            fps = np.where(seconds > 0, 1.0 / seconds, 0.0)
        return {
            "frame_fits_onchip": fits,
            "onchip_bytes_required": onchip_required,
            "offchip_bytes_per_frame": offchip_bytes.astype(np.float64),
            "compute_cycles_per_frame": compute_cycles,
            "transfer_cycles_per_frame": transfer_cycles,
            "seconds_per_frame": seconds,
            "frames_per_second": fps,
        }
