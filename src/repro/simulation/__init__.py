"""Simulation substrate: frames, memories, golden model, cone simulators.

The paper evaluates real hardware; this reproduction replaces the board with
(1) a functional simulator that executes the generated cone architecture tile
by tile on synthetic frames and checks it against a software golden model,
and (2) a transaction-level cycle simulator that counts compute and memory
cycles of the tile cascade and cross-checks the analytic throughput model.
"""

from repro.simulation.frame import Frame, FrameSet, make_test_frame
from repro.simulation.golden import GoldenExecutor
from repro.simulation.memory import OffChipMemoryModel, OnChipBufferModel, TransferRecord
from repro.simulation.cone_simulator import (
    FunctionalConeSimulator,
    TileCascadeCycleSimulator,
    CycleSimulationResult,
)
from repro.simulation.framebuffer_baseline import (
    FrameBufferArchitecture,
    FrameBufferPerformance,
)

__all__ = [
    "Frame",
    "FrameSet",
    "make_test_frame",
    "GoldenExecutor",
    "OffChipMemoryModel",
    "OnChipBufferModel",
    "TransferRecord",
    "FunctionalConeSimulator",
    "TileCascadeCycleSimulator",
    "CycleSimulationResult",
    "FrameBufferArchitecture",
    "FrameBufferPerformance",
]
