"""Simulation substrate: frames, memories, golden model, cone simulators.

The paper evaluates real hardware; this reproduction replaces the board with
(1) a functional simulator that executes the generated cone architecture tile
by tile on synthetic frames and checks it against a software golden model,
and (2) a transaction-level cycle simulator that counts compute and memory
cycles of the tile cascade and cross-checks the analytic throughput model.

Every simulator runs vectorized by default (whole-frame array passes,
batched multi-frame runs, array-reduced cycle aggregation) with its original
scalar walk preserved as a ``*_scalar`` differential oracle — the property
suite pins the two paths bit-identical, and
:func:`~repro.simulation.vectorized.supports_vectorized` falls back to the
scalar path for subclasses that override a scalar hook.
:func:`~repro.simulation.validation.validate_workload` packages
simulated-vs-golden evidence as a :class:`ValidationResult` for the
``validate`` service job class.
"""

from repro.simulation.frame import Frame, FrameSet, make_test_frame
from repro.simulation.golden import GoldenExecutor
from repro.simulation.memory import OffChipMemoryModel, OnChipBufferModel, TransferRecord
from repro.simulation.vectorized import supports_vectorized
from repro.simulation.cone_simulator import (
    FunctionalConeSimulator,
    TileCascadeCycleSimulator,
    CycleSimulationResult,
)
from repro.simulation.framebuffer_baseline import (
    FrameBufferArchitecture,
    FrameBufferPerformance,
)
from repro.simulation.validation import ValidationResult, validate_workload

__all__ = [
    "Frame",
    "FrameSet",
    "make_test_frame",
    "GoldenExecutor",
    "OffChipMemoryModel",
    "OnChipBufferModel",
    "TransferRecord",
    "FunctionalConeSimulator",
    "TileCascadeCycleSimulator",
    "CycleSimulationResult",
    "FrameBufferArchitecture",
    "FrameBufferPerformance",
    "ValidationResult",
    "supports_vectorized",
    "validate_workload",
]
