"""Vectorized-path selection for the simulation layer.

PR 4 established the discipline for fast paths: the vectorized
implementation is the default, the scalar implementation is preserved as a
``*_scalar`` differential oracle, and the fast path is only taken when it
provably computes the same function — i.e. when none of the scalar hooks it
mirrors have been overridden (see :func:`repro.dse.engine.supports_columnar`).

The simulation classes opt in by declaring ``_vectorized_hooks``: the names
of the scalar methods their vectorized path shadows.  A subclass that
overrides any of those hooks (customizing per-pixel or per-tile semantics)
automatically falls back to the scalar loop, so its overrides are honored —
just not vectorized.  Overriding the vectorized entry point itself is always
allowed; it replaces the fast path wholesale.
"""

from __future__ import annotations


def supports_vectorized(obj: object) -> bool:
    """Whether ``obj`` may take its vectorized fast path.

    True iff every scalar hook named in the nearest ``_vectorized_hooks``
    declaration along ``type(obj).__mro__`` is still the declaring class's
    own implementation.  Objects that never declare hooks (duck-typed
    stand-ins) answer False and are driven through the scalar path.
    """
    declaring = None
    for cls in type(obj).__mro__:
        if "_vectorized_hooks" in vars(cls):
            declaring = cls
            break
    if declaring is None:
        return False
    return all(
        getattr(type(obj), name, None) is getattr(declaring, name, None)
        for name in declaring._vectorized_hooks
    )
