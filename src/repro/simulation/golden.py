"""Software golden model: direct (whole-frame) execution of a stencil kernel.

This is the reference Algorithm 1 of the paper, vectorised with NumPy: every
iteration computes the whole next frame from the whole current frame.  The
cone simulators are validated against it, and it also provides the reference
output for the generated VHDL testbenches.

The vectorized :meth:`GoldenExecutor.step` is the default; the per-pixel
walk is preserved as :meth:`GoldenExecutor.step_scalar` /
:meth:`GoldenExecutor.run_scalar` and serves as the differential oracle
(``tests/property/test_simulator_differential.py`` pins the two paths
bit-identical).  Both use correctly rounded IEEE float64 primitives, so
identity holds by construction: the scalar path's ``clamped_read`` and the
vectorized path's edge-padded view read the same element for every
coordinate (see :meth:`repro.simulation.frame.Frame.padded`).

Boundary handling is clamp-to-edge (replicating the border element), the
usual choice for image filters; the cone simulator uses the same convention
so results match exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.frontend.kernel_ir import (
    BinOpKind,
    BinaryOp,
    FieldRead,
    KernelExpr,
    Literal,
    ParamRef,
    Select,
    StencilKernel,
    UnOpKind,
    UnaryOp,
)
from repro.simulation.frame import Frame, FrameSet
from repro.simulation.vectorized import supports_vectorized


class GoldenExecutor:
    """Executes a kernel iteratively on whole frames (the reference model)."""

    #: Scalar hooks the vectorized :meth:`step` shadows — a subclass that
    #: overrides either falls back to the per-pixel loop (see
    #: :func:`repro.simulation.vectorized.supports_vectorized`).
    _vectorized_hooks = ("step_scalar", "_evaluate_scalar")

    def __init__(self, kernel: StencilKernel,
                 params: Optional[Mapping[str, float]] = None) -> None:
        self.kernel = kernel
        merged = dict(kernel.params)
        if params:
            merged.update(params)
        self.params = merged
        self.radius = kernel.radius

    # ------------------------------------------------------------------ #

    def run(self, frames: FrameSet, iterations: int) -> FrameSet:
        """Return the frame set after ``iterations`` applications of the kernel."""
        if not supports_vectorized(self):
            return self.run_scalar(frames, iterations)
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        current = frames.copy()
        for _ in range(iterations):
            current = self.step(current)
        return current

    def run_scalar(self, frames: FrameSet, iterations: int) -> FrameSet:
        """Per-pixel differential oracle of :meth:`run` (bit-identical)."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        current = frames.copy()
        for _ in range(iterations):
            current = self.step_scalar(current)
        return current

    def step(self, frames: FrameSet) -> FrameSet:
        """One whole-frame application of the kernel (f_i -> f_{i+1})."""
        radius = max(self.radius, self._readonly_radius())
        padded: Dict[str, np.ndarray] = {
            name: frames[name].padded(radius) for name in frames.names()
        }
        height, width = frames.height, frames.width

        def read(field_name: str, component: int, dy: int, dx: int) -> np.ndarray:
            array = padded[field_name]
            return array[component,
                         radius + dy: radius + dy + height,
                         radius + dx: radius + dx + width]

        next_frames = frames.copy()
        new_data: Dict[str, np.ndarray] = {
            name: frames[name].data.copy() for name in frames.names()
        }
        for update in self.kernel.updates:
            value = self._evaluate(update.expr, read)
            new_data[update.field_name][update.component] = value
        for name, data in new_data.items():
            next_frames.replace(name, data)
        return next_frames

    def step_scalar(self, frames: FrameSet) -> FrameSet:
        """Per-pixel differential oracle of :meth:`step`.

        Walks every output element and evaluates the kernel expression with
        Python floats and :meth:`~repro.simulation.frame.Frame.clamped_read`
        boundary handling.  Bit-identical to the vectorized step: scalar
        IEEE float64 arithmetic and NumPy elementwise float64 arithmetic are
        both correctly rounded, and clamped reads select the same element as
        the edge-padded view for every coordinate.
        """
        height, width = frames.height, frames.width
        next_frames = frames.copy()
        new_data: Dict[str, np.ndarray] = {
            name: frames[name].data.copy() for name in frames.names()
        }
        for update in self.kernel.updates:
            target = np.empty((height, width), dtype=np.float64)
            for y in range(height):
                for x in range(width):
                    def read(field_name: str, component: int,
                             dy: int, dx: int) -> float:
                        return frames[field_name].clamped_read(
                            component, y + dy, x + dx)

                    target[y, x] = self._evaluate_scalar(update.expr, read)
            new_data[update.field_name][update.component] = target
        for name, data in new_data.items():
            next_frames.replace(name, data)
        return next_frames

    # ------------------------------------------------------------------ #

    def _readonly_radius(self) -> int:
        best = 0
        state = set(self.kernel.state_field_names)
        for update in self.kernel.updates:
            for fread in update.expr.reads():
                if fread.field_name not in state:
                    best = max(best, fread.offset.chebyshev())
        return best

    def _evaluate(self, expr: KernelExpr, read) -> np.ndarray:
        if isinstance(expr, Literal):
            return np.float64(expr.value)
        if isinstance(expr, ParamRef):
            return np.float64(self.params[expr.name])
        if isinstance(expr, FieldRead):
            return read(expr.field_name, expr.component, expr.offset.dy, expr.offset.dx)
        if isinstance(expr, BinaryOp):
            left = self._evaluate(expr.left, read)
            right = self._evaluate(expr.right, read)
            kind = expr.kind
            if kind is BinOpKind.ADD:
                return left + right
            if kind is BinOpKind.SUB:
                return left - right
            if kind is BinOpKind.MUL:
                return left * right
            if kind is BinOpKind.DIV:
                return left / right
            if kind is BinOpKind.MIN:
                return np.minimum(left, right)
            if kind is BinOpKind.MAX:
                return np.maximum(left, right)
            if kind is BinOpKind.LT:
                return (left < right).astype(np.float64)
            if kind is BinOpKind.LE:
                return (left <= right).astype(np.float64)
            if kind is BinOpKind.GT:
                return (left > right).astype(np.float64)
            if kind is BinOpKind.GE:
                return (left >= right).astype(np.float64)
            if kind is BinOpKind.EQ:
                return (left == right).astype(np.float64)
            raise ValueError(f"unsupported binary operator {kind!r}")
        if isinstance(expr, UnaryOp):
            operand = self._evaluate(expr.operand, read)
            if expr.kind is UnOpKind.NEG:
                return -operand
            if expr.kind is UnOpKind.ABS:
                return np.abs(operand)
            if expr.kind is UnOpKind.SQRT:
                return np.sqrt(operand)
            raise ValueError(f"unsupported unary operator {expr.kind!r}")
        if isinstance(expr, Select):
            cond = self._evaluate(expr.cond, read)
            if_true = self._evaluate(expr.if_true, read)
            if_false = self._evaluate(expr.if_false, read)
            return np.where(cond != 0.0, if_true, if_false)
        raise TypeError(f"unsupported kernel expression {type(expr).__name__}")

    def _evaluate_scalar(self, expr: KernelExpr, read) -> float:
        """Scalar twin of :meth:`_evaluate`; ``read`` returns a float."""
        if isinstance(expr, Literal):
            return float(expr.value)
        if isinstance(expr, ParamRef):
            return float(self.params[expr.name])
        if isinstance(expr, FieldRead):
            return read(expr.field_name, expr.component,
                        expr.offset.dy, expr.offset.dx)
        if isinstance(expr, BinaryOp):
            left = self._evaluate_scalar(expr.left, read)
            right = self._evaluate_scalar(expr.right, read)
            kind = expr.kind
            if kind is BinOpKind.ADD:
                return left + right
            if kind is BinOpKind.SUB:
                return left - right
            if kind is BinOpKind.MUL:
                return left * right
            if kind is BinOpKind.DIV:
                return left / right
            if kind is BinOpKind.MIN:
                return min(left, right)
            if kind is BinOpKind.MAX:
                return max(left, right)
            if kind is BinOpKind.LT:
                return 1.0 if left < right else 0.0
            if kind is BinOpKind.LE:
                return 1.0 if left <= right else 0.0
            if kind is BinOpKind.GT:
                return 1.0 if left > right else 0.0
            if kind is BinOpKind.GE:
                return 1.0 if left >= right else 0.0
            if kind is BinOpKind.EQ:
                return 1.0 if left == right else 0.0
            raise ValueError(f"unsupported binary operator {kind!r}")
        if isinstance(expr, UnaryOp):
            if expr.kind is UnOpKind.NEG:
                return -self._evaluate_scalar(expr.operand, read)
            if expr.kind is UnOpKind.ABS:
                return abs(self._evaluate_scalar(expr.operand, read))
            if expr.kind is UnOpKind.SQRT:
                return math.sqrt(self._evaluate_scalar(expr.operand, read))
            raise ValueError(f"unsupported unary operator {expr.kind!r}")
        if isinstance(expr, Select):
            # short-circuit: the not-taken branch is hardware don't-care and
            # must not fault (the vectorized step evaluates both and merges)
            if self._evaluate_scalar(expr.cond, read) != 0.0:
                return self._evaluate_scalar(expr.if_true, read)
            return self._evaluate_scalar(expr.if_false, read)
        raise TypeError(f"unsupported kernel expression {type(expr).__name__}")
