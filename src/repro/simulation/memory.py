"""Memory hierarchy models used by the cycle-level simulator.

Two actors matter to the cone architecture: the off-chip frame memory (DDR on
the board), characterised by a sustained bandwidth, and the on-chip buffers
(block RAM) holding the tile input region and the inter-level results,
characterised by a per-cycle port width.  Both models simply account for the
cycles and bytes of every transfer so the simulator and the analytic model
can be cross-checked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.synth.fpga_device import FpgaDevice


@dataclass(frozen=True)
class TransferRecord:
    """One logical transfer (a tile load or store)."""

    description: str
    elements: int
    bytes: int
    cycles: float


@dataclass
class OffChipMemoryModel:
    """Sustained-bandwidth model of the external frame memory."""

    device: FpgaDevice
    bytes_per_element: int = 4
    records: List[TransferRecord] = field(default_factory=list)

    @property
    def bytes_per_cycle(self) -> float:
        return (self.device.offchip_bandwidth_bytes_per_s
                / self.device.typical_clock_hz)

    def transfer(self, elements: int, description: str = "") -> TransferRecord:
        """Account one transfer and return its cycle cost."""
        byte_count = elements * self.bytes_per_element
        cycles = byte_count / self.bytes_per_cycle
        record = TransferRecord(description=description, elements=elements,
                                bytes=byte_count, cycles=cycles)
        self.records.append(record)
        return record

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.records)

    @property
    def total_cycles(self) -> float:
        return sum(r.cycles for r in self.records)

    def reset(self) -> None:
        self.records.clear()


@dataclass
class OnChipBufferModel:
    """Port-limited model of the on-chip tile / inter-level buffers."""

    capacity_bytes: int
    elements_per_cycle: int = 16
    bytes_per_element: int = 4
    peak_occupancy_bytes: int = 0

    def access_cycles(self, elements: int) -> float:
        """Cycles to stream ``elements`` through the buffer ports."""
        if elements <= 0:
            return 0.0
        return math.ceil(elements / self.elements_per_cycle)

    def occupy(self, elements: int) -> None:
        """Record the footprint of live data; raises if the buffer overflows."""
        required = elements * self.bytes_per_element
        self.peak_occupancy_bytes = max(self.peak_occupancy_bytes, required)
        if required > self.capacity_bytes:
            raise MemoryError(
                f"on-chip buffer overflow: need {required} bytes, "
                f"have {self.capacity_bytes}"
            )

    @property
    def fits(self) -> bool:
        return self.peak_occupancy_bytes <= self.capacity_bytes
