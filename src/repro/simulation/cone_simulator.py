"""Simulators of the cone architecture.

Two complementary views are provided:

* :class:`FunctionalConeSimulator` — executes the architecture functionally,
  tile by tile, either by numerically evaluating the symbolic cone expression
  DAG (``mode="expression"``, the strongest check of the symbolic layer) or
  by applying the kernel to each tile region with NumPy (``mode="region"``,
  fast enough for large frames).  Outputs are compared against the
  whole-frame golden model in the test suite.

* :class:`TileCascadeCycleSimulator` — a transaction-level cycle counter that
  walks the same tile cascade and accumulates compute and memory cycles; it
  cross-checks the analytic throughput model of
  :mod:`repro.estimation.throughput_model`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.architecture.template import ConeArchitecture
from repro.estimation.throughput_model import ConePerformance, ThroughputModel
from repro.frontend.kernel_ir import StencilKernel
from repro.simulation.frame import Frame, FrameSet
from repro.simulation.golden import GoldenExecutor
from repro.simulation.memory import OffChipMemoryModel, OnChipBufferModel
from repro.symbolic.cone_expression import ConeExpressionBuilder, ConeExpressions
from repro.symbolic.executor import READONLY_LEVEL
from repro.symbolic.expression import evaluate
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760


class FunctionalConeSimulator:
    """Functional execution of a cone architecture over a frame."""

    def __init__(self, kernel: StencilKernel,
                 params: Optional[Mapping[str, float]] = None) -> None:
        self.kernel = kernel
        self.params = dict(params) if params else None
        self.golden = GoldenExecutor(kernel, params)
        self.radius = kernel.radius
        self._cone_cache: Dict[Tuple[int, int], ConeExpressions] = {}
        self._builder = ConeExpressionBuilder(kernel, params)

    # ------------------------------------------------------------------ #

    def _cone(self, window_side: int, depth: int) -> ConeExpressions:
        key = (window_side, depth)
        if key not in self._cone_cache:
            self._cone_cache[key] = self._builder.build(window_side, depth)
        return self._cone_cache[key]

    def run(self, frames: FrameSet, iterations: int, window_side: int,
            mode: str = "expression") -> FrameSet:
        """Process ``frames`` tile by tile with cones of depth ``iterations``.

        The output matches the golden model exactly on every element whose
        dependency cone does not touch the frame border (the cone hardware
        has no notion of boundary clamping; border tiles receive
        clamp-to-edge level-0 data, which differs from clamping at every
        iteration only in a border band of width ``radius * iterations``).
        """
        if mode not in ("expression", "region"):
            raise ValueError("mode must be 'expression' or 'region'")
        height, width = frames.height, frames.width
        state_fields = self.kernel.state_field_names
        result = frames.copy()
        output_data = {name: frames[name].data.copy() for name in state_fields}

        for tile_y in range(0, height, window_side):
            for tile_x in range(0, width, window_side):
                tile_h = min(window_side, height - tile_y)
                tile_w = min(window_side, width - tile_x)
                if mode == "expression":
                    tile_values = self._evaluate_tile_expressions(
                        frames, iterations, window_side, tile_y, tile_x)
                else:
                    tile_values = self._evaluate_tile_region(
                        frames, iterations, window_side, tile_y, tile_x)
                for (field, component), tile_array in tile_values.items():
                    output_data[field][component,
                                       tile_y:tile_y + tile_h,
                                       tile_x:tile_x + tile_w] = \
                        tile_array[:tile_h, :tile_w]

        for name in state_fields:
            result.replace(name, output_data[name])
        return result

    # ------------------------------------------------------------------ #

    def _evaluate_tile_expressions(self, frames: FrameSet, depth: int,
                                   window_side: int, tile_y: int, tile_x: int
                                   ) -> Dict[Tuple[str, int], np.ndarray]:
        """Evaluate the depth-``depth`` cone DAG for one output tile."""
        cone = self._cone(window_side, depth)
        bindings: Dict[Tuple[str, int, int, int, int], float] = {}
        for symbol in cone.input_symbols:
            frame = frames[symbol.field]
            value = frame.clamped_read(symbol.component,
                                       tile_y + symbol.offset.dy,
                                       tile_x + symbol.offset.dx)
            bindings[(symbol.field, symbol.component, symbol.offset.dx,
                      symbol.offset.dy, symbol.level)] = value

        cache: Dict[int, float] = {}
        outputs: Dict[Tuple[str, int], np.ndarray] = {}
        for (field, component, offset), expr in cone.outputs.items():
            array = outputs.setdefault(
                (field, component), np.zeros((window_side, window_side)))
            array[offset.dy, offset.dx] = evaluate(expr, bindings, cache)
        return outputs

    def _evaluate_tile_region(self, frames: FrameSet, depth: int,
                              window_side: int, tile_y: int, tile_x: int
                              ) -> Dict[Tuple[str, int], np.ndarray]:
        """Apply the kernel ``depth`` times to the tile's halo region (NumPy)."""
        halo = self.radius * depth
        y0, y1 = tile_y - halo, tile_y + window_side + halo
        x0, x1 = tile_x - halo, tile_x + window_side + halo
        height, width = frames.height, frames.width

        region_frames = []
        for name in frames.names():
            frame = frames[name]
            ys = np.clip(np.arange(y0, y1), 0, height - 1)
            xs = np.clip(np.arange(x0, x1), 0, width - 1)
            region = frame.data[:, ys[:, None], xs[None, :]]
            region_frames.append(Frame(name, region))
        region_set = FrameSet(region_frames)
        region_set = self.golden.run(region_set, depth)

        outputs: Dict[Tuple[str, int], np.ndarray] = {}
        for name in self.kernel.state_field_names:
            frame = region_set[name]
            for component in range(frame.components):
                outputs[(name, component)] = frame.data[
                    component, halo:halo + window_side, halo:halo + window_side]
        return outputs


@dataclass(frozen=True)
class CycleSimulationResult:
    """Outcome of the transaction-level cycle simulation of one frame."""

    architecture_label: str
    tiles: int
    total_cycles: float
    compute_cycles: float
    transfer_cycles: float
    offchip_bytes: int
    onchip_peak_bytes: int
    seconds_per_frame: float
    frames_per_second: float


class TileCascadeCycleSimulator:
    """Counts compute and memory cycles of the tile cascade, tile by tile."""

    def __init__(self, device: FpgaDevice = VIRTEX6_XC6VLX760,
                 bytes_per_element: int = 4,
                 onchip_port_elements_per_cycle: int = 16,
                 readonly_components: int = 0,
                 tile_overhead_cycles: float = 24.0) -> None:
        self.device = device
        self.bytes_per_element = bytes_per_element
        self.onchip_port_elements_per_cycle = onchip_port_elements_per_cycle
        self.readonly_components = readonly_components
        self.tile_overhead_cycles = tile_overhead_cycles

    def simulate_frame(self, architecture: ConeArchitecture,
                       cone_performance: Mapping[int, ConePerformance],
                       frame_width: int, frame_height: int) -> CycleSimulationResult:
        """Walk every tile of the frame and accumulate cycle counts."""
        offchip = OffChipMemoryModel(self.device, self.bytes_per_element)
        onchip = OnChipBufferModel(
            capacity_bytes=self.device.onchip_memory_bytes,
            elements_per_cycle=self.onchip_port_elements_per_cycle,
            bytes_per_element=self.bytes_per_element)

        window = architecture.window_side
        tiles_x = math.ceil(frame_width / window)
        tiles_y = math.ceil(frame_height / window)
        executions_per_level = architecture.executions_per_level()
        read_elements, written_elements = architecture.offchip_elements_per_tile(
            readonly_components=self.readonly_components)

        compute_cycles = 0.0
        transfer_cycles = 0.0
        total_cycles = 0.0
        onchip.occupy(architecture.onchip_elements())

        for _tile_index in range(tiles_x * tiles_y):
            load = offchip.transfer(read_elements, "tile input region")
            store = offchip.transfer(written_elements, "tile output window")
            tile_transfer = load.cycles + store.cycles

            tile_compute = 0.0
            for level_index, depth in enumerate(architecture.level_depths):
                perf = cone_performance[depth]
                instances = architecture.cone_counts.get(depth, 1)
                executions = executions_per_level[level_index]
                serialised = math.ceil(executions / max(1, instances))
                geometry = architecture.geometry(depth)
                feed_cycles = onchip.access_cycles(geometry.input_elements)
                tile_compute += perf.latency_cycles + serialised * max(
                    feed_cycles, perf.initiation_interval)

            compute_cycles += tile_compute
            transfer_cycles += tile_transfer
            total_cycles += max(tile_compute, tile_transfer) + self.tile_overhead_cycles

        clock = self.device.typical_clock_hz
        seconds = total_cycles / clock
        return CycleSimulationResult(
            architecture_label=architecture.label(),
            tiles=tiles_x * tiles_y,
            total_cycles=total_cycles,
            compute_cycles=compute_cycles,
            transfer_cycles=transfer_cycles,
            offchip_bytes=offchip.total_bytes,
            onchip_peak_bytes=onchip.peak_occupancy_bytes,
            seconds_per_frame=seconds,
            frames_per_second=1.0 / seconds if seconds > 0 else 0.0,
        )
