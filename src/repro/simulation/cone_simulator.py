"""Simulators of the cone architecture.

Two complementary views are provided:

* :class:`FunctionalConeSimulator` — executes the architecture functionally,
  either by numerically evaluating the symbolic cone expression DAG
  (``mode="expression"``, the strongest check of the symbolic layer) or by
  applying the kernel to each tile region with NumPy (``mode="region"``).
  The default path is vectorized: one array pass evaluates every tile (and,
  via :meth:`FunctionalConeSimulator.run_batch`, every frame of a batch) at
  once.  The original tile-by-tile walk is preserved as
  :meth:`FunctionalConeSimulator.run_scalar` and serves as the differential
  oracle — the property suite pins the two paths bit-identical.

* :class:`TileCascadeCycleSimulator` — a transaction-level cycle counter for
  the tile cascade; it cross-checks the analytic throughput model of
  :mod:`repro.estimation.throughput_model`.  Cycle totals are aggregated by
  a sequential-scan array reduction (bit-identical to the per-tile loop,
  preserved as :meth:`TileCascadeCycleSimulator.simulate_frame_scalar`).

Both classes select the fast path behind
:func:`repro.simulation.vectorized.supports_vectorized`: subclasses that
override a scalar hook fall back to the scalar loop, so their overrides are
honored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.architecture.template import ConeArchitecture
from repro.estimation.throughput_model import ConePerformance, ThroughputModel
from repro.frontend.kernel_ir import StencilKernel
from repro.simulation.frame import Frame, FrameSet
from repro.simulation.golden import GoldenExecutor
from repro.simulation.memory import OffChipMemoryModel, OnChipBufferModel
from repro.simulation.vectorized import supports_vectorized
from repro.symbolic.cone_expression import ConeExpressionBuilder, ConeExpressions
from repro.symbolic.executor import READONLY_LEVEL
from repro.symbolic.expression import evaluate, evaluate_array
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760


class FunctionalConeSimulator:
    """Functional execution of a cone architecture over a frame."""

    #: Scalar hooks the vectorized pass shadows — overriding either in a
    #: subclass routes :meth:`run`/:meth:`run_batch` through the preserved
    #: tile-by-tile loop so the override is honored.
    _vectorized_hooks = ("_evaluate_tile_expressions", "_evaluate_tile_region")

    def __init__(self, kernel: StencilKernel,
                 params: Optional[Mapping[str, float]] = None) -> None:
        self.kernel = kernel
        self.params = dict(params) if params else None
        self.golden = GoldenExecutor(kernel, params)
        self.radius = kernel.radius
        self._cone_cache: Dict[Tuple[int, int], ConeExpressions] = {}
        self._builder = ConeExpressionBuilder(kernel, params)

    # ------------------------------------------------------------------ #

    def _cone(self, window_side: int, depth: int) -> ConeExpressions:
        key = (window_side, depth)
        if key not in self._cone_cache:
            self._cone_cache[key] = self._builder.build(window_side, depth)
        return self._cone_cache[key]

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in ("expression", "region"):
            raise ValueError("mode must be 'expression' or 'region'")

    def run(self, frames: FrameSet, iterations: int, window_side: int,
            mode: str = "expression") -> FrameSet:
        """Process ``frames`` tile by tile with cones of depth ``iterations``.

        The output matches the golden model exactly on every element whose
        dependency cone does not touch the frame border (the cone hardware
        has no notion of boundary clamping; border tiles receive
        clamp-to-edge level-0 data, which differs from clamping at every
        iteration only in a border band of width ``radius * iterations``).

        All tiles are evaluated by one vectorized array pass; the preserved
        tile loop (:meth:`run_scalar`) is the bit-identical differential
        oracle, and is also the path taken when a subclass overrides one of
        the scalar tile hooks.
        """
        self._check_mode(mode)
        if not supports_vectorized(self):
            return self.run_scalar(frames, iterations, window_side, mode)
        return self.run_batch([frames], iterations, window_side, mode)[0]

    def run_batch(self, frame_sets: Iterable[FrameSet], iterations: int,
                  window_side: int, mode: str = "expression") -> List[FrameSet]:
        """Process several frame sets in one batched vectorized evaluation.

        Element-identical to ``[self.run(f, ...) for f in frame_sets]``:
        same-shape frame sets are stacked on a leading batch axis and every
        operation of the evaluation is elementwise over that axis, so each
        slice sees exactly the arithmetic an independent run performs.
        Frame sets of different shapes are grouped and batched per shape;
        the output order always matches the input order.
        """
        self._check_mode(mode)
        frame_sets = list(frame_sets)
        if not supports_vectorized(self):
            return [self.run_scalar(frames, iterations, window_side, mode)
                    for frames in frame_sets]
        groups: Dict[Tuple[int, int], List[int]] = {}
        for index, frames in enumerate(frame_sets):
            groups.setdefault((frames.height, frames.width), []).append(index)

        state_fields = self.kernel.state_field_names
        results: List[Optional[FrameSet]] = [None] * len(frame_sets)
        for (height, width), indices in groups.items():
            names = frame_sets[indices[0]].names()
            stacked = {
                name: np.stack([frame_sets[i][name].data for i in indices])
                for name in names
            }
            if mode == "expression":
                outputs = self._run_expression_stack(
                    stacked, height, width, iterations, window_side)
            else:
                outputs = self._run_region_stack(
                    stacked, height, width, iterations, window_side)
            for position, index in enumerate(indices):
                result = frame_sets[index].copy()
                for name in state_fields:
                    result.replace(name, outputs[name][position].copy())
                results[index] = result
        return results  # type: ignore[return-value]

    def run_scalar(self, frames: FrameSet, iterations: int, window_side: int,
                   mode: str = "expression") -> FrameSet:
        """Tile-by-tile differential oracle of :meth:`run` (bit-identical)."""
        self._check_mode(mode)
        height, width = frames.height, frames.width
        state_fields = self.kernel.state_field_names
        result = frames.copy()
        output_data = {name: frames[name].data.copy() for name in state_fields}

        for tile_y in range(0, height, window_side):
            for tile_x in range(0, width, window_side):
                tile_h = min(window_side, height - tile_y)
                tile_w = min(window_side, width - tile_x)
                if mode == "expression":
                    tile_values = self._evaluate_tile_expressions(
                        frames, iterations, window_side, tile_y, tile_x)
                else:
                    tile_values = self._evaluate_tile_region(
                        frames, iterations, window_side, tile_y, tile_x)
                for (field, component), tile_array in tile_values.items():
                    output_data[field][component,
                                       tile_y:tile_y + tile_h,
                                       tile_x:tile_x + tile_w] = \
                        tile_array[:tile_h, :tile_w]

        for name in state_fields:
            result.replace(name, output_data[name])
        return result

    # ------------------------------------------------------------------ #
    # vectorized passes (whole frame batches, one array evaluation)

    def _run_expression_stack(self, stacked: Mapping[str, np.ndarray],
                              height: int, width: int, depth: int,
                              window_side: int) -> Dict[str, np.ndarray]:
        """Evaluate the cone DAG once with (batch, tiles_y, tiles_x) bindings.

        Mirrors :meth:`_evaluate_tile_expressions`: each input symbol's
        clamped read becomes a gather over every tile origin at once, the
        shared DAG cache reuses common sub-expressions across outputs
        exactly like the scalar evaluator, and the per-offset results are
        scattered back through the same zero-initialised window tiles.
        """
        cone = self._cone(window_side, depth)
        batch = next(iter(stacked.values())).shape[0]
        tile_ys = np.arange(0, height, window_side)
        tile_xs = np.arange(0, width, window_side)

        bindings: Dict[Tuple[str, int, int, int, int], np.ndarray] = {}
        for symbol in cone.input_symbols:
            data = stacked[symbol.field]
            ys = np.clip(tile_ys + symbol.offset.dy, 0, height - 1)
            xs = np.clip(tile_xs + symbol.offset.dx, 0, width - 1)
            bindings[(symbol.field, symbol.component, symbol.offset.dx,
                      symbol.offset.dy, symbol.level)] = \
                data[:, symbol.component][:, ys[:, None], xs[None, :]]

        cache: Dict[int, np.ndarray] = {}
        tile_grids: Dict[Tuple[str, int], np.ndarray] = {}
        for (field, component, offset), expr in cone.outputs.items():
            grid = tile_grids.setdefault(
                (field, component),
                np.zeros((batch, tile_ys.size, tile_xs.size,
                          window_side, window_side)))
            grid[:, :, :, offset.dy, offset.dx] = \
                evaluate_array(expr, bindings, cache)

        outputs = {name: stacked[name].copy()
                   for name in self.kernel.state_field_names}
        for (field, component), grid in tile_grids.items():
            full = grid.transpose(0, 1, 3, 2, 4).reshape(
                batch, tile_ys.size * window_side, tile_xs.size * window_side)
            outputs[field][:, component] = full[:, :height, :width]
        return outputs

    def _run_region_stack(self, stacked: Mapping[str, np.ndarray],
                          height: int, width: int, depth: int,
                          window_side: int) -> Dict[str, np.ndarray]:
        """Apply the kernel ``depth`` times to every tile's halo region at once.

        Mirrors :meth:`_evaluate_tile_region`: the clamped halo regions of
        all tiles (and all batched frames) are gathered into one
        ``(batch, components, tiles_y, tiles_x, side, side)`` array per
        field, and the golden executor's expression evaluation — purely
        elementwise over the leading axes — is applied to the stack.
        """
        halo = self.radius * depth
        side = window_side + 2 * halo
        tile_ys = np.arange(0, height, window_side)
        tile_xs = np.arange(0, width, window_side)
        span = np.arange(-halo, window_side + halo)
        rows = np.clip(tile_ys[:, None] + span[None, :], 0, height - 1)
        cols = np.clip(tile_xs[:, None] + span[None, :], 0, width - 1)

        region: Dict[str, np.ndarray] = {
            name: data[:, :, rows[:, None, :, None], cols[None, :, None, :]]
            for name, data in stacked.items()
        }

        radius = max(self.golden.radius, self.golden._readonly_radius())
        pad_spec = ((0, 0), (0, 0), (0, 0), (0, 0),
                    (radius, radius), (radius, radius))
        for _ in range(depth):
            padded = {name: np.pad(arr, pad_spec, mode="edge")
                      for name, arr in region.items()}

            def read(field_name: str, component: int,
                     dy: int, dx: int) -> np.ndarray:
                array = padded[field_name]
                return array[:, component, :, :,
                             radius + dy: radius + dy + side,
                             radius + dx: radius + dx + side]

            new_region = {name: arr.copy() for name, arr in region.items()}
            for update in self.kernel.updates:
                new_region[update.field_name][:, update.component] = \
                    self.golden._evaluate(update.expr, read)
            region = new_region

        batch = next(iter(stacked.values())).shape[0]
        outputs = {}
        for name in self.kernel.state_field_names:
            windows = region[name][:, :, :, :,
                                   halo:halo + window_side,
                                   halo:halo + window_side]
            components = windows.shape[1]
            full = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
                batch, components,
                tile_ys.size * window_side, tile_xs.size * window_side)
            outputs[name] = np.ascontiguousarray(full[:, :, :height, :width])
        return outputs

    # ------------------------------------------------------------------ #
    # scalar tile hooks (the differential oracle, and the extension points)

    def _evaluate_tile_expressions(self, frames: FrameSet, depth: int,
                                   window_side: int, tile_y: int, tile_x: int
                                   ) -> Dict[Tuple[str, int], np.ndarray]:
        """Evaluate the depth-``depth`` cone DAG for one output tile."""
        cone = self._cone(window_side, depth)
        bindings: Dict[Tuple[str, int, int, int, int], float] = {}
        for symbol in cone.input_symbols:
            frame = frames[symbol.field]
            value = frame.clamped_read(symbol.component,
                                       tile_y + symbol.offset.dy,
                                       tile_x + symbol.offset.dx)
            bindings[(symbol.field, symbol.component, symbol.offset.dx,
                      symbol.offset.dy, symbol.level)] = value

        cache: Dict[int, float] = {}
        outputs: Dict[Tuple[str, int], np.ndarray] = {}
        for (field, component, offset), expr in cone.outputs.items():
            array = outputs.setdefault(
                (field, component), np.zeros((window_side, window_side)))
            array[offset.dy, offset.dx] = evaluate(expr, bindings, cache)
        return outputs

    def _evaluate_tile_region(self, frames: FrameSet, depth: int,
                              window_side: int, tile_y: int, tile_x: int
                              ) -> Dict[Tuple[str, int], np.ndarray]:
        """Apply the kernel ``depth`` times to the tile's halo region (NumPy)."""
        halo = self.radius * depth
        y0, y1 = tile_y - halo, tile_y + window_side + halo
        x0, x1 = tile_x - halo, tile_x + window_side + halo
        height, width = frames.height, frames.width

        region_frames = []
        for name in frames.names():
            frame = frames[name]
            ys = np.clip(np.arange(y0, y1), 0, height - 1)
            xs = np.clip(np.arange(x0, x1), 0, width - 1)
            region = frame.data[:, ys[:, None], xs[None, :]]
            region_frames.append(Frame(name, region))
        region_set = FrameSet(region_frames)
        region_set = self.golden.run(region_set, depth)

        outputs: Dict[Tuple[str, int], np.ndarray] = {}
        for name in self.kernel.state_field_names:
            frame = region_set[name]
            for component in range(frame.components):
                outputs[(name, component)] = frame.data[
                    component, halo:halo + window_side, halo:halo + window_side]
        return outputs


@dataclass(frozen=True)
class CycleSimulationResult:
    """Outcome of the transaction-level cycle simulation of one frame."""

    architecture_label: str
    tiles: int
    total_cycles: float
    compute_cycles: float
    transfer_cycles: float
    offchip_bytes: int
    onchip_peak_bytes: int
    seconds_per_frame: float
    frames_per_second: float


class TileCascadeCycleSimulator:
    """Counts compute and memory cycles of the tile cascade."""

    #: Overriding the per-tile walk in a subclass routes
    #: :meth:`simulate_frame` through it instead of the array reduction.
    _vectorized_hooks = ("simulate_frame_scalar",)

    def __init__(self, device: FpgaDevice = VIRTEX6_XC6VLX760,
                 bytes_per_element: int = 4,
                 onchip_port_elements_per_cycle: int = 16,
                 readonly_components: int = 0,
                 tile_overhead_cycles: float = 24.0) -> None:
        self.device = device
        self.bytes_per_element = bytes_per_element
        self.onchip_port_elements_per_cycle = onchip_port_elements_per_cycle
        self.readonly_components = readonly_components
        self.tile_overhead_cycles = tile_overhead_cycles

    @staticmethod
    def _sequential_total(per_tile: float, tiles: int) -> float:
        """Fold ``tiles`` identical additions exactly like the scalar loop.

        ``np.cumsum`` accumulates left to right — the same rounding sequence
        as the scalar ``+=`` fold — where ``np.sum``'s pairwise reduction
        would not be bit-identical.
        """
        if tiles <= 0:
            return 0.0
        return float(np.cumsum(np.full(tiles, per_tile, dtype=np.float64))[-1])

    def simulate_frame(self, architecture: ConeArchitecture,
                       cone_performance: Mapping[int, ConePerformance],
                       frame_width: int, frame_height: int) -> CycleSimulationResult:
        """Accumulate frame cycle counts from one representative tile.

        Every tile of the cascade is identical, so the per-tile compute and
        transfer cycles are costed once and the frame totals come from a
        sequential-scan array reduction — bit-identical to walking the tile
        loop (:meth:`simulate_frame_scalar`, the differential oracle).
        """
        if not supports_vectorized(self):
            return self.simulate_frame_scalar(
                architecture, cone_performance, frame_width, frame_height)
        offchip = OffChipMemoryModel(self.device, self.bytes_per_element)
        onchip = OnChipBufferModel(
            capacity_bytes=self.device.onchip_memory_bytes,
            elements_per_cycle=self.onchip_port_elements_per_cycle,
            bytes_per_element=self.bytes_per_element)

        window = architecture.window_side
        tiles_x = math.ceil(frame_width / window)
        tiles_y = math.ceil(frame_height / window)
        tiles = tiles_x * tiles_y
        executions_per_level = architecture.executions_per_level()
        read_elements, written_elements = architecture.offchip_elements_per_tile(
            readonly_components=self.readonly_components)
        onchip.occupy(architecture.onchip_elements())

        load = offchip.transfer(read_elements, "tile input region")
        store = offchip.transfer(written_elements, "tile output window")
        tile_transfer = load.cycles + store.cycles

        tile_compute = 0.0
        for level_index, depth in enumerate(architecture.level_depths):
            perf = cone_performance[depth]
            instances = architecture.cone_counts.get(depth, 1)
            executions = executions_per_level[level_index]
            serialised = math.ceil(executions / max(1, instances))
            geometry = architecture.geometry(depth)
            feed_cycles = onchip.access_cycles(geometry.input_elements)
            tile_compute += perf.latency_cycles + serialised * max(
                feed_cycles, perf.initiation_interval)

        compute_cycles = self._sequential_total(tile_compute, tiles)
        transfer_cycles = self._sequential_total(tile_transfer, tiles)
        total_cycles = self._sequential_total(
            max(tile_compute, tile_transfer) + self.tile_overhead_cycles, tiles)

        clock = self.device.typical_clock_hz
        seconds = total_cycles / clock
        return CycleSimulationResult(
            architecture_label=architecture.label(),
            tiles=tiles,
            total_cycles=total_cycles,
            compute_cycles=compute_cycles,
            transfer_cycles=transfer_cycles,
            offchip_bytes=tiles * (load.bytes + store.bytes),
            onchip_peak_bytes=onchip.peak_occupancy_bytes,
            seconds_per_frame=seconds,
            frames_per_second=1.0 / seconds if seconds > 0 else 0.0,
        )

    def simulate_frame_scalar(self, architecture: ConeArchitecture,
                              cone_performance: Mapping[int, ConePerformance],
                              frame_width: int, frame_height: int
                              ) -> CycleSimulationResult:
        """Walk every tile of the frame and accumulate cycle counts."""
        offchip = OffChipMemoryModel(self.device, self.bytes_per_element)
        onchip = OnChipBufferModel(
            capacity_bytes=self.device.onchip_memory_bytes,
            elements_per_cycle=self.onchip_port_elements_per_cycle,
            bytes_per_element=self.bytes_per_element)

        window = architecture.window_side
        tiles_x = math.ceil(frame_width / window)
        tiles_y = math.ceil(frame_height / window)
        executions_per_level = architecture.executions_per_level()
        read_elements, written_elements = architecture.offchip_elements_per_tile(
            readonly_components=self.readonly_components)

        compute_cycles = 0.0
        transfer_cycles = 0.0
        total_cycles = 0.0
        onchip.occupy(architecture.onchip_elements())

        for _tile_index in range(tiles_x * tiles_y):
            load = offchip.transfer(read_elements, "tile input region")
            store = offchip.transfer(written_elements, "tile output window")
            tile_transfer = load.cycles + store.cycles

            tile_compute = 0.0
            for level_index, depth in enumerate(architecture.level_depths):
                perf = cone_performance[depth]
                instances = architecture.cone_counts.get(depth, 1)
                executions = executions_per_level[level_index]
                serialised = math.ceil(executions / max(1, instances))
                geometry = architecture.geometry(depth)
                feed_cycles = onchip.access_cycles(geometry.input_elements)
                tile_compute += perf.latency_cycles + serialised * max(
                    feed_cycles, perf.initiation_interval)

            compute_cycles += tile_compute
            transfer_cycles += tile_transfer
            total_cycles += max(tile_compute, tile_transfer) + self.tile_overhead_cycles

        clock = self.device.typical_clock_hz
        seconds = total_cycles / clock
        return CycleSimulationResult(
            architecture_label=architecture.label(),
            tiles=tiles_x * tiles_y,
            total_cycles=total_cycles,
            compute_cycles=compute_cycles,
            transfer_cycles=transfer_cycles,
            offchip_bytes=offchip.total_bytes,
            onchip_peak_bytes=onchip.peak_occupancy_bytes,
            seconds_per_frame=seconds,
            frames_per_second=1.0 / seconds if seconds > 0 else 0.0,
        )
