"""Workload validation: simulated-vs-golden equivalence evidence.

The ``validate`` job class (``python -m repro validate blur --frames
640x480``, ``ReproClient.submit(..., job="validate")``) answers one
question: *does the cone architecture the flow would generate compute the
same frames as the reference algorithm?*  :func:`validate_workload` runs the
vectorized :class:`~repro.simulation.cone_simulator.FunctionalConeSimulator`
and the :class:`~repro.simulation.golden.GoldenExecutor` on the workload's
frame geometry and packages the evidence as a JSON-round-tripping
:class:`ValidationResult`:

* the max absolute simulated-vs-golden error on the interior (the region
  whose dependency cone never touches the frame border — the cone hardware
  has no boundary clamping, so only a border band of width
  ``radius * iterations`` may legitimately differ);
* per-field sha256 digests of both the simulated and the golden output
  frames (everything is seeded and deterministic, so a service-side
  validation is digest-identical to an in-process one);
* a vectorized-vs-scalar bit-identity check against the preserved
  ``run_scalar`` oracle (performed on a cropped frame so validation stays at
  interactive latency — the full-frame identity is pinned separately by the
  Hypothesis differential suite);
* the frame-buffer baseline's cycle counts for the same scenario, for
  context alongside the functional evidence.

This module imports NumPy + stdlib only (enforced by the import-hygiene
guard in ``scripts/check.sh``); the workload argument is duck-typed so the
simulation layer stays independent of :mod:`repro.api`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.simulation.cone_simulator import FunctionalConeSimulator
from repro.simulation.frame import FrameSet
from repro.simulation.framebuffer_baseline import FrameBufferArchitecture
from repro.simulation.golden import GoldenExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.workload import Workload

#: Side cap of the cropped frame used for the scalar-oracle cross-check.
ORACLE_SIDE_LIMIT = 32


def _frame_digest(array: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(repr(array.shape).encode())
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class ValidationResult:
    """Equivalence evidence for one validated workload (JSON round-trips)."""

    kernel_name: str
    kernel_fingerprint: str
    device_name: str
    data_format: str
    frame_width: int
    frame_height: int
    iterations: int
    window_side: int
    mode: str
    seed: int
    tiles: int
    interior_margin: int
    interior_pixels: int
    max_abs_error: float
    max_abs_error_full: float
    simulated_digests: Dict[str, str]
    golden_digests: Dict[str, str]
    oracle_width: int
    oracle_height: int
    vectorized_matches_scalar: bool
    baseline_compute_cycles: float
    baseline_transfer_cycles: float
    baseline_total_cycles: float

    @property
    def passed(self) -> bool:
        """Whether the evidence supports equivalence.

        The interior must match the golden model exactly and the vectorized
        path must be bit-identical to its scalar oracle.
        """
        return self.max_abs_error == 0.0 and self.vectorized_matches_scalar

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "kernel_name": self.kernel_name,
            "kernel_fingerprint": self.kernel_fingerprint,
            "device_name": self.device_name,
            "data_format": self.data_format,
            "frame_width": self.frame_width,
            "frame_height": self.frame_height,
            "iterations": self.iterations,
            "window_side": self.window_side,
            "mode": self.mode,
            "seed": self.seed,
            "tiles": self.tiles,
            "interior_margin": self.interior_margin,
            "interior_pixels": self.interior_pixels,
            "max_abs_error": self.max_abs_error,
            "max_abs_error_full": self.max_abs_error_full,
            "simulated_digests": dict(sorted(self.simulated_digests.items())),
            "golden_digests": dict(sorted(self.golden_digests.items())),
            "oracle_width": self.oracle_width,
            "oracle_height": self.oracle_height,
            "vectorized_matches_scalar": self.vectorized_matches_scalar,
            "baseline_compute_cycles": self.baseline_compute_cycles,
            "baseline_transfer_cycles": self.baseline_transfer_cycles,
            "baseline_total_cycles": self.baseline_total_cycles,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ValidationResult":
        return cls(
            kernel_name=str(payload["kernel_name"]),
            kernel_fingerprint=str(payload["kernel_fingerprint"]),
            device_name=str(payload["device_name"]),
            data_format=str(payload["data_format"]),
            frame_width=int(payload["frame_width"]),
            frame_height=int(payload["frame_height"]),
            iterations=int(payload["iterations"]),
            window_side=int(payload["window_side"]),
            mode=str(payload["mode"]),
            seed=int(payload.get("seed", 0)),
            tiles=int(payload["tiles"]),
            interior_margin=int(payload["interior_margin"]),
            interior_pixels=int(payload["interior_pixels"]),
            max_abs_error=float(payload["max_abs_error"]),
            max_abs_error_full=float(payload["max_abs_error_full"]),
            simulated_digests=dict(payload["simulated_digests"]),
            golden_digests=dict(payload["golden_digests"]),
            oracle_width=int(payload["oracle_width"]),
            oracle_height=int(payload["oracle_height"]),
            vectorized_matches_scalar=bool(
                payload["vectorized_matches_scalar"]),
            baseline_compute_cycles=float(payload["baseline_compute_cycles"]),
            baseline_transfer_cycles=float(payload["baseline_transfer_cycles"]),
            baseline_total_cycles=float(payload["baseline_total_cycles"]),
        )

    def summary(self) -> str:
        lines = [
            f"validate {self.kernel_name}: "
            f"{self.frame_width}x{self.frame_height}, "
            f"{self.iterations} iteration(s), window {self.window_side}, "
            f"mode {self.mode} -> {'PASS' if self.passed else 'FAIL'}",
            f"  interior max |simulated - golden|: {self.max_abs_error:.3e} "
            f"over {self.interior_pixels} pixel(s) "
            f"(border band of width {self.interior_margin} excluded; "
            f"full-frame max {self.max_abs_error_full:.3e})",
            f"  vectorized == scalar oracle on "
            f"{self.oracle_width}x{self.oracle_height}: "
            f"{self.vectorized_matches_scalar}",
            f"  tiles: {self.tiles}; frame-buffer baseline on "
            f"{self.device_name}: compute "
            f"{self.baseline_compute_cycles:.0f} / transfer "
            f"{self.baseline_transfer_cycles:.0f} cycles per frame",
        ]
        for name in sorted(self.simulated_digests):
            lines.append(f"  {name}: simulated "
                         f"{self.simulated_digests[name][:16]}… golden "
                         f"{self.golden_digests[name][:16]}…")
        return "\n".join(lines)


def validate_workload(workload: "Workload", *,
                      window_side: Optional[int] = None,
                      mode: str = "region",
                      seed: int = 0) -> ValidationResult:
    """Simulate ``workload`` and compare against the golden model.

    Pure and deterministic: the same workload (and ``seed``) always yields
    the same :class:`ValidationResult`, wherever it runs — which is what
    makes service-side validation digest-comparable to an in-process run
    and lets identical ``validate`` submissions coalesce.
    """
    if mode not in ("expression", "region"):
        raise ValueError("mode must be 'expression' or 'region'")
    kernel = workload.resolve_kernel()
    window = int(window_side) if window_side else max(workload.window_sides)
    if window < 1:
        raise ValueError("window_side must be positive")
    height, width = workload.frame_height, workload.frame_width
    iterations = workload.iterations

    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    simulator = FunctionalConeSimulator(kernel, workload.params_dict())
    simulated = simulator.run(frames, iterations, window, mode=mode)
    golden = GoldenExecutor(kernel, workload.params_dict()).run(
        frames, iterations)

    state_fields = kernel.state_field_names
    margin = kernel.radius * iterations
    interior_pixels = 0
    max_err = 0.0
    max_err_full = 0.0
    simulated_digests: Dict[str, str] = {}
    golden_digests: Dict[str, str] = {}
    for name in state_fields:
        sim_data = simulated[name].data
        gold_data = golden[name].data
        diff = np.abs(sim_data - gold_data)
        max_err_full = max(max_err_full, float(diff.max()))
        interior = diff[:, margin:height - margin, margin:width - margin]
        if interior.size:
            interior_pixels += int(interior[0].size)
            max_err = max(max_err, float(interior.max()))
        simulated_digests[name] = _frame_digest(sim_data)
        golden_digests[name] = _frame_digest(gold_data)

    # Bit-identity against the preserved tile-by-tile oracle, on a crop so
    # validation of large frames stays at interactive latency (full-frame
    # identity is property-tested separately).
    oracle_h = min(height, ORACLE_SIDE_LIMIT)
    oracle_w = min(width, ORACLE_SIDE_LIMIT)
    oracle_frames = FrameSet.for_kernel(kernel, oracle_h, oracle_w, seed=seed)
    vectorized = simulator.run(oracle_frames, iterations, window, mode=mode)
    scalar = simulator.run_scalar(oracle_frames, iterations, window, mode=mode)
    identical = all(
        np.array_equal(vectorized[name].data, scalar[name].data)
        for name in state_fields)

    baseline = FrameBufferArchitecture(
        kernel, device=workload.device,
        data_format=workload.data_format).evaluate(width, height, iterations)

    tiles_x = -(-width // window)
    tiles_y = -(-height // window)
    return ValidationResult(
        kernel_name=kernel.name,
        kernel_fingerprint=workload.kernel_fingerprint,
        device_name=workload.device.name,
        data_format=workload.data_format.value,
        frame_width=width,
        frame_height=height,
        iterations=iterations,
        window_side=window,
        mode=mode,
        seed=seed,
        tiles=tiles_x * tiles_y,
        interior_margin=margin,
        interior_pixels=interior_pixels,
        max_abs_error=max_err,
        max_abs_error_full=max_err_full,
        simulated_digests=simulated_digests,
        golden_digests=golden_digests,
        oracle_width=oracle_w,
        oracle_height=oracle_h,
        vectorized_matches_scalar=identical,
        baseline_compute_cycles=float(baseline.compute_cycles_per_frame),
        baseline_transfer_cycles=float(baseline.transfer_cycles_per_frame),
        baseline_total_cycles=float(
            max(baseline.compute_cycles_per_frame,
                baseline.transfer_cycles_per_frame)),
    )
