"""Recursive-descent parser for the supported C subset.

The grammar covers what ISL kernels are written in:

* ``#define NAME value`` lines (treated as numeric macro definitions);
* function definitions with scalar and (multi-dimensional) array parameters;
* canonical ``for (int v = lo; v < hi; v++)`` loops, arbitrarily nested;
* local declarations ``float t = expr;`` inside loop bodies;
* assignments to array elements and to locals;
* arithmetic expressions with ``+ - * /``, comparisons, the ternary operator
  and whitelisted math intrinsics (``fabs``, ``fabsf``, ``fmin``, ``fminf``,
  ``fmax``, ``fmaxf``, ``sqrt``, ``sqrtf``, ``min``, ``max``, ``abs``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.frontend.c_ast import (
    CArrayAccess,
    CAssignment,
    CBinOp,
    CBlock,
    CCall,
    CDeclaration,
    CExpr,
    CFor,
    CFunction,
    CIdent,
    CNumber,
    CParamDecl,
    CParseError,
    CStmt,
    CTernary,
    CTranslationUnit,
    CUnaryOp,
)
from repro.frontend.c_lexer import Lexer, Token, TokenKind

MATH_INTRINSICS = {
    "fabs", "fabsf", "abs",
    "fmin", "fminf", "min",
    "fmax", "fmaxf", "max",
    "sqrt", "sqrtf",
}

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)\s+(.+?)\s*$")
_INCLUDE_RE = re.compile(r"^\s*#\s*(include|pragma|ifndef|ifdef|endif|if|else).*$")


def _strip_preprocessor(source: str) -> Tuple[str, Dict[str, float]]:
    """Remove preprocessor lines, collecting numeric ``#define`` values."""
    defines: Dict[str, float] = {}
    kept_lines: List[str] = []
    for line in source.splitlines():
        match = _DEFINE_RE.match(line)
        if match:
            name, value_text = match.groups()
            value_text = value_text.split("//")[0].split("/*")[0].strip()
            value_text = value_text.rstrip("fF")
            try:
                defines[name] = float(value_text)
            except ValueError:
                # Non-numeric macros (e.g. function-like) are ignored; the
                # extractor will complain if the kernel actually needs them.
                pass
            kept_lines.append("")
            continue
        if _INCLUDE_RE.match(line):
            kept_lines.append("")
            continue
        kept_lines.append(line)
    return "\n".join(kept_lines), defines


class Parser:
    """Token-stream parser producing a :class:`CTranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------ #
    # token helpers

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _check(self, text: str) -> bool:
        token = self._peek()
        return token.text == text and token.kind in (TokenKind.PUNCT, TokenKind.KEYWORD)

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if not self._check(text):
            raise CParseError(f"expected {text!r}, found {token.text!r}",
                              token.line, token.column)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise CParseError(f"expected identifier, found {token.text!r}",
                              token.line, token.column)
        return self._advance()

    # ------------------------------------------------------------------ #
    # top level

    def parse_translation_unit(self, defines: Dict[str, float]) -> CTranslationUnit:
        functions: List[CFunction] = []
        while self._peek().kind is not TokenKind.EOF:
            functions.append(self._parse_function())
        return CTranslationUnit(defines=defines, functions=functions)

    def _parse_type(self) -> str:
        parts: List[str] = []
        while self._peek().kind is TokenKind.KEYWORD and self._peek().text in (
            "const", "static", "inline", "unsigned",
        ):
            keyword = self._advance().text
            if keyword == "const":
                parts.append("const")
        token = self._peek()
        if token.kind is not TokenKind.KEYWORD or token.text not in (
            "void", "int", "float", "double",
        ):
            raise CParseError(f"expected a type, found {token.text!r}",
                              token.line, token.column)
        parts.append(self._advance().text)
        return " ".join(parts)

    def _parse_function(self) -> CFunction:
        return_type = self._parse_type()
        name = self._expect_ident().text
        self._expect("(")
        params: List[CParamDecl] = []
        if not self._check(")"):
            while True:
                params.append(self._parse_param())
                if not self._accept(","):
                    break
        self._expect(")")
        self._expect("{")
        body = self._parse_block_statements()
        return CFunction(name=name, return_type=return_type, params=params, body=body)

    def _parse_param(self) -> CParamDecl:
        is_const = False
        type_parts: List[str] = []
        while self._peek().kind is TokenKind.KEYWORD and self._peek().text in (
            "const", "unsigned",
        ):
            if self._advance().text == "const":
                is_const = True
        token = self._peek()
        if token.kind is not TokenKind.KEYWORD:
            raise CParseError(f"expected parameter type, found {token.text!r}",
                              token.line, token.column)
        type_parts.append(self._advance().text)
        type_name = " ".join(type_parts)
        # optional pointer syntax "float *name" treated as 1D unknown-size array
        pointer = False
        while self._accept("*"):
            pointer = True
        name = self._expect_ident().text
        dims: List[str] = []
        while self._accept("["):
            if self._check("]"):
                dims.append("")
            else:
                dims.append(self._parse_dimension())
            self._expect("]")
        if pointer and not dims:
            dims = [""]
        return CParamDecl(type_name=type_name, name=name,
                          array_dims=tuple(dims), is_const=is_const)

    def _parse_dimension(self) -> str:
        token = self._peek()
        if token.kind in (TokenKind.IDENT, TokenKind.NUMBER):
            return self._advance().text
        raise CParseError(f"unsupported array dimension {token.text!r}",
                          token.line, token.column)

    # ------------------------------------------------------------------ #
    # statements

    def _parse_block_statements(self) -> List[CStmt]:
        statements: List[CStmt] = []
        while not self._check("}"):
            if self._peek().kind is TokenKind.EOF:
                token = self._peek()
                raise CParseError("unexpected end of file inside block",
                                  token.line, token.column)
            statements.append(self._parse_statement())
        self._expect("}")
        return statements

    def _parse_statement(self) -> CStmt:
        token = self._peek()
        if self._check("{"):
            self._advance()
            return CBlock(self._parse_block_statements())
        if token.kind is TokenKind.KEYWORD and token.text == "for":
            return self._parse_for()
        if token.kind is TokenKind.KEYWORD and token.text in ("float", "double", "int", "const"):
            return self._parse_declaration()
        if token.kind is TokenKind.KEYWORD and token.text == "return":
            self._advance()
            if not self._check(";"):
                self._parse_expression()
            self._expect(";")
            return CBlock([])
        return self._parse_assignment()

    def _parse_declaration(self) -> CDeclaration:
        type_name = self._parse_type()
        name = self._expect_ident().text
        init: Optional[CExpr] = None
        if self._accept("="):
            init = self._parse_expression()
        self._expect(";")
        return CDeclaration(type_name=type_name, name=name, init=init)

    def _parse_for(self) -> CFor:
        self._expect("for")
        self._expect("(")
        # init: "int v = lo" or "v = lo"
        if self._peek().kind is TokenKind.KEYWORD and self._peek().text in ("int", "unsigned"):
            self._advance()
            if self._peek().kind is TokenKind.KEYWORD and self._peek().text == "int":
                self._advance()
        var_token = self._expect_ident()
        var = var_token.text
        self._expect("=")
        lower = self._parse_expression()
        self._expect(";")
        # condition: "v < hi" or "v <= hi"
        cond_var = self._expect_ident().text
        if cond_var != var:
            raise CParseError(
                f"loop condition tests {cond_var!r} but loop variable is {var!r}",
                var_token.line, var_token.column)
        inclusive = False
        if self._accept("<"):
            pass
        elif self._accept("<="):
            inclusive = True
        else:
            token = self._peek()
            raise CParseError("only '<' or '<=' loop conditions are supported",
                              token.line, token.column)
        upper = self._parse_expression()
        if inclusive:
            upper = CBinOp("+", upper, CNumber(1.0, is_integer=True))
        self._expect(";")
        # step: "v++" or "++v" or "v += 1"
        step = 1
        if self._accept("++"):
            step_var = self._expect_ident().text
        else:
            step_var = self._expect_ident().text
            if self._accept("++"):
                pass
            elif self._accept("+="):
                step_token = self._peek()
                step_expr = self._parse_expression()
                if not isinstance(step_expr, CNumber):
                    raise CParseError("loop step must be a constant",
                                      step_token.line, step_token.column)
                step = int(step_expr.value)
            else:
                token = self._peek()
                raise CParseError("unsupported loop increment",
                                  token.line, token.column)
        if step_var != var:
            raise CParseError(
                f"loop increment updates {step_var!r} but loop variable is {var!r}",
                var_token.line, var_token.column)
        self._expect(")")
        if self._accept("{"):
            body = self._parse_block_statements()
        else:
            body = [self._parse_statement()]
        return CFor(var=var, lower=lower, upper=upper, body=body, step=step)

    def _parse_assignment(self) -> CAssignment:
        target = self._parse_postfix()
        if not isinstance(target, (CIdent, CArrayAccess)):
            token = self._peek()
            raise CParseError("assignment target must be a variable or array element",
                              token.line, token.column)
        token = self._peek()
        if self._accept("="):
            value = self._parse_expression()
        elif token.text in ("+=", "-=", "*=", "/="):
            self._advance()
            rhs = self._parse_expression()
            value = CBinOp(token.text[0], target, rhs)
        else:
            raise CParseError(f"expected assignment operator, found {token.text!r}",
                              token.line, token.column)
        self._expect(";")
        return CAssignment(target=target, value=value)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)

    def _parse_expression(self) -> CExpr:
        return self._parse_ternary()

    def _parse_ternary(self) -> CExpr:
        cond = self._parse_logical_or()
        if self._accept("?"):
            if_true = self._parse_expression()
            self._expect(":")
            if_false = self._parse_expression()
            return CTernary(cond, if_true, if_false)
        return cond

    def _parse_logical_or(self) -> CExpr:
        left = self._parse_logical_and()
        while self._check("||"):
            self._advance()
            right = self._parse_logical_and()
            left = CBinOp("||", left, right)
        return left

    def _parse_logical_and(self) -> CExpr:
        left = self._parse_comparison()
        while self._check("&&"):
            self._advance()
            right = self._parse_comparison()
            left = CBinOp("&&", left, right)
        return left

    def _parse_comparison(self) -> CExpr:
        left = self._parse_additive()
        while self._peek().text in ("<", "<=", ">", ">=", "==", "!="):
            op = self._advance().text
            right = self._parse_additive()
            left = CBinOp(op, left, right)
        return left

    def _parse_additive(self) -> CExpr:
        left = self._parse_multiplicative()
        while self._peek().text in ("+", "-") and self._peek().kind is TokenKind.PUNCT:
            op = self._advance().text
            right = self._parse_multiplicative()
            left = CBinOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> CExpr:
        left = self._parse_unary()
        while self._peek().text in ("*", "/", "%") and self._peek().kind is TokenKind.PUNCT:
            op = self._advance().text
            right = self._parse_unary()
            left = CBinOp(op, left, right)
        return left

    def _parse_unary(self) -> CExpr:
        if self._accept("-"):
            return CUnaryOp("-", self._parse_unary())
        if self._accept("+"):
            return self._parse_unary()
        if self._accept("!"):
            return CUnaryOp("!", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> CExpr:
        expr = self._parse_primary()
        while self._check("["):
            if not isinstance(expr, (CIdent, CArrayAccess)):
                token = self._peek()
                raise CParseError("subscript applied to a non-array expression",
                                  token.line, token.column)
            self._advance()
            index = self._parse_expression()
            self._expect("]")
            if isinstance(expr, CIdent):
                expr = CArrayAccess(expr.name, (index,))
            else:
                expr = CArrayAccess(expr.name, expr.indices + (index,))
        return expr

    def _parse_primary(self) -> CExpr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.text
            is_integer = not any(c in text for c in ".eE")
            return CNumber(float(text), is_integer=is_integer)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._check("("):
                if token.text not in MATH_INTRINSICS:
                    raise CParseError(
                        f"call of unsupported function {token.text!r}",
                        token.line, token.column)
                self._advance()
                args: List[CExpr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept(","):
                            break
                self._expect(")")
                return CCall(token.text, tuple(args))
            return CIdent(token.text)
        if token.kind is TokenKind.KEYWORD and token.text in ("float", "double", "int"):
            # cast: "(float) expr" is handled in _parse_primary of the caller
            raise CParseError(f"unexpected keyword {token.text!r} in expression",
                              token.line, token.column)
        if self._accept("("):
            # possible cast "(float)expr"
            inner_token = self._peek()
            if inner_token.kind is TokenKind.KEYWORD and inner_token.text in (
                "float", "double", "int",
            ):
                self._advance()
                self._expect(")")
                return self._parse_unary()
            expr = self._parse_expression()
            self._expect(")")
            return expr
        raise CParseError(f"unexpected token {token.text!r} in expression",
                          token.line, token.column)


def parse_c_source(source: str) -> CTranslationUnit:
    """Parse C source text into a :class:`CTranslationUnit`."""
    stripped, defines = _strip_preprocessor(source)
    tokens = Lexer(stripped).tokenize()
    parser = Parser(tokens)
    return parser.parse_translation_unit(defines)
