"""ISL pattern extraction: from the parsed C AST to a :class:`StencilKernel`.

The extractor recognises the shape of Algorithm 1 of the paper: a perfectly
nested loop over the two spatial dimensions whose innermost body computes the
next-iteration value of every state field component from constant-offset
reads of the current iteration.  Local temporaries are inlined, macro
definitions become parameters, and the written/read array pair is mapped to a
single logical *state field*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.utils.geometry import Offset
from repro.frontend.c_ast import (
    CArrayAccess,
    CAssignment,
    CBinOp,
    CBlock,
    CCall,
    CDeclaration,
    CExpr,
    CFor,
    CFunction,
    CIdent,
    CNumber,
    CStmt,
    CTernary,
    CTranslationUnit,
    CUnaryOp,
)
from repro.frontend.kernel_ir import (
    BinOpKind,
    BinaryOp,
    FieldDecl,
    FieldRead,
    FieldUpdate,
    KernelExpr,
    Literal,
    ParamRef,
    Select,
    StencilKernel,
    UnOpKind,
    UnaryOp,
)


class ExtractionError(ValueError):
    """Raised when the C function does not match the ISL pattern."""


_BINOP_MAP = {
    "+": BinOpKind.ADD,
    "-": BinOpKind.SUB,
    "*": BinOpKind.MUL,
    "/": BinOpKind.DIV,
    "<": BinOpKind.LT,
    "<=": BinOpKind.LE,
    ">": BinOpKind.GT,
    ">=": BinOpKind.GE,
    "==": BinOpKind.EQ,
}

_CALL_MAP_BINARY = {
    "fmin": BinOpKind.MIN, "fminf": BinOpKind.MIN, "min": BinOpKind.MIN,
    "fmax": BinOpKind.MAX, "fmaxf": BinOpKind.MAX, "max": BinOpKind.MAX,
}

_CALL_MAP_UNARY = {
    "fabs": UnOpKind.ABS, "fabsf": UnOpKind.ABS, "abs": UnOpKind.ABS,
    "sqrt": UnOpKind.SQRT, "sqrtf": UnOpKind.SQRT,
}


@dataclass
class _LoopNest:
    """The two innermost spatial loops and the statements of their body."""

    row_var: str
    col_var: str
    body: List[CStmt]


def _find_loop_nest(statements: Sequence[CStmt]) -> _LoopNest:
    """Locate the innermost pair of nested ``for`` loops.

    Outer loops over the iteration count (if present in the source) are
    skipped: the kernel describes a single application of the stencil, and
    the iteration count is an input of the flow, not of the kernel.
    """
    loops: List[CFor] = []

    def descend(stmts: Sequence[CStmt]) -> Optional[List[CStmt]]:
        fors = [s for s in stmts if isinstance(s, CFor)]
        others = [s for s in stmts
                  if not isinstance(s, (CFor, CBlock)) or isinstance(s, CBlock)]
        if len(fors) != 1:
            return None
        loop = fors[0]
        loops.append(loop)
        inner = descend(loop.body)
        if inner is not None:
            return inner
        return loop.body

    body = descend(statements)
    if body is None or len(loops) < 2:
        raise ExtractionError(
            "could not find a nested spatial loop pair; the kernel must contain "
            "a perfectly nested loop over rows and columns"
        )
    row_loop, col_loop = loops[-2], loops[-1]
    return _LoopNest(row_var=row_loop.var, col_var=col_loop.var, body=body)


def _flatten(statements: Sequence[CStmt]) -> List[CStmt]:
    flat: List[CStmt] = []
    for stmt in statements:
        if isinstance(stmt, CBlock):
            flat.extend(_flatten(stmt.statements))
        else:
            flat.append(stmt)
    return flat


class _ExprConverter:
    """Converts C expressions of the loop body into kernel IR expressions."""

    def __init__(self, nest: _LoopNest, defines: Mapping[str, float],
                 scalar_params: Mapping[str, float],
                 array_params: Mapping[str, int],
                 state_map: Mapping[str, str],
                 temps: Dict[str, KernelExpr]) -> None:
        self.nest = nest
        self.defines = dict(defines)
        self.scalar_params = dict(scalar_params)
        self.array_params = dict(array_params)  # name -> number of dims
        self.state_map = dict(state_map)        # written array -> read array
        self.temps = temps
        self.used_params: Dict[str, float] = {}

    # ------------------------------------------------------------------ #

    def convert(self, expr: CExpr) -> KernelExpr:
        if isinstance(expr, CNumber):
            return Literal(float(expr.value))
        if isinstance(expr, CIdent):
            return self._convert_ident(expr)
        if isinstance(expr, CArrayAccess):
            return self._convert_access(expr)
        if isinstance(expr, CBinOp):
            return self._convert_binop(expr)
        if isinstance(expr, CUnaryOp):
            return self._convert_unop(expr)
        if isinstance(expr, CTernary):
            return Select(self.convert(expr.cond), self.convert(expr.if_true),
                          self.convert(expr.if_false))
        if isinstance(expr, CCall):
            return self._convert_call(expr)
        raise ExtractionError(f"unsupported expression node {type(expr).__name__}")

    def _convert_ident(self, expr: CIdent) -> KernelExpr:
        name = expr.name
        if name in self.temps:
            return self.temps[name]
        if name in (self.nest.row_var, self.nest.col_var):
            raise ExtractionError(
                f"expression depends on the loop index {name!r} outside an array "
                "subscript: the kernel is not translation invariant"
            )
        if name in self.defines:
            self.used_params[name] = self.defines[name]
            return ParamRef(name)
        if name in self.scalar_params:
            self.used_params[name] = self.scalar_params[name]
            return ParamRef(name)
        raise ExtractionError(
            f"identifier {name!r} is neither a local temporary, a #define, nor a "
            "scalar parameter with a supplied value"
        )

    def _convert_access(self, expr: CArrayAccess) -> FieldRead:
        name = expr.name
        if name not in self.array_params:
            raise ExtractionError(f"subscript of unknown array {name!r}")
        if name in self.state_map.keys() and name not in self.state_map.values():
            raise ExtractionError(
                f"kernel reads the output array {name!r}; reads must target the "
                "current-iteration array to preserve the ISL dependency structure"
            )
        dims = self.array_params[name]
        indices = expr.indices
        if len(indices) != dims:
            raise ExtractionError(
                f"array {name!r} declared with {dims} dimensions but accessed "
                f"with {len(indices)} subscripts"
            )
        component = 0
        if dims == 3:
            component_index = indices[0]
            component = self._constant_index(component_index, name)
            spatial = indices[1:]
        elif dims == 2:
            spatial = indices
        else:
            raise ExtractionError(
                f"array {name!r} must be 2D (scalar field) or 3D (vector field)"
            )
        dy = self._offset_of(spatial[0], self.nest.row_var, name)
        dx = self._offset_of(spatial[1], self.nest.col_var, name)
        field_name = self._field_name_for(name)
        return FieldRead(field_name, Offset(dx, dy), component)

    def _field_name_for(self, array_name: str) -> str:
        # reads always target the current-iteration array, whose name is the
        # canonical field name.
        return array_name

    def _constant_index(self, expr: CExpr, array_name: str) -> int:
        if isinstance(expr, CNumber) and expr.is_integer:
            return int(expr.value)
        raise ExtractionError(
            f"component subscript of {array_name!r} must be an integer literal"
        )

    def _offset_of(self, expr: CExpr, loop_var: str, array_name: str) -> int:
        """Interpret a subscript as ``loop_var + constant`` and return the constant."""
        if isinstance(expr, CIdent):
            if expr.name == loop_var:
                return 0
            raise ExtractionError(
                f"subscript of {array_name!r} uses {expr.name!r}; expected the "
                f"loop variable {loop_var!r}"
            )
        if isinstance(expr, CBinOp) and expr.op in ("+", "-"):
            left, right = expr.left, expr.right
            if isinstance(left, CIdent) and left.name == loop_var and isinstance(right, CNumber):
                value = int(right.value)
                return value if expr.op == "+" else -value
            if (expr.op == "+" and isinstance(right, CIdent)
                    and right.name == loop_var and isinstance(left, CNumber)):
                return int(left.value)
        raise ExtractionError(
            f"subscript of {array_name!r} is not of the form "
            f"'{loop_var} + constant'; the kernel violates translation invariance"
        )

    def _convert_binop(self, expr: CBinOp) -> KernelExpr:
        if expr.op in ("&&", "||", "!=", "%"):
            raise ExtractionError(f"operator {expr.op!r} is not supported in kernels")
        kind = _BINOP_MAP.get(expr.op)
        if kind is None:
            raise ExtractionError(f"unsupported binary operator {expr.op!r}")
        return BinaryOp(kind, self.convert(expr.left), self.convert(expr.right))

    def _convert_unop(self, expr: CUnaryOp) -> KernelExpr:
        if expr.op == "-":
            return UnaryOp(UnOpKind.NEG, self.convert(expr.operand))
        raise ExtractionError(f"unsupported unary operator {expr.op!r}")

    def _convert_call(self, expr: CCall) -> KernelExpr:
        if expr.name in _CALL_MAP_BINARY:
            if len(expr.args) != 2:
                raise ExtractionError(f"{expr.name}() expects two arguments")
            kind = _CALL_MAP_BINARY[expr.name]
            return BinaryOp(kind, self.convert(expr.args[0]), self.convert(expr.args[1]))
        if expr.name in _CALL_MAP_UNARY:
            if len(expr.args) != 1:
                raise ExtractionError(f"{expr.name}() expects one argument")
            return UnaryOp(_CALL_MAP_UNARY[expr.name], self.convert(expr.args[0]))
        raise ExtractionError(f"unsupported function call {expr.name!r}")


def _infer_state_map(written: Set[str], read: Set[str],
                     array_dims: Mapping[str, int],
                     read_signatures: Optional[Mapping[str, Set[str]]] = None
                     ) -> Dict[str, str]:
    """Pair each written array with the read array it is the next frame of.

    When several read arrays have the right rank, the one accessed at the
    largest number of *distinct offsets* is chosen: the state field is the one
    the stencil actually reaches around on, whereas read-only inputs (the
    right-hand side of Jacobi, the observed image of Chambolle) are typically
    only read at the centre element.
    """
    state_map: Dict[str, str] = {}
    unread_written = sorted(written)
    candidates = sorted(read - written)
    signatures = read_signatures or {}
    for out_name in unread_written:
        same_rank = [name for name in candidates
                     if array_dims[name] == array_dims[out_name]
                     and name not in state_map.values()]
        if out_name in read and not same_rank:
            # in-place update with no separate input array: the same array
            # plays both roles.
            state_map[out_name] = out_name
            continue
        if len(same_rank) > 1:
            counts = {name: len(signatures.get(name, set())) for name in same_rank}
            best = max(counts.values())
            top = [name for name, count in counts.items() if count == best]
            if len(top) == 1 and best > 1:
                same_rank = top
        if len(same_rank) == 1:
            state_map[out_name] = same_rank[0]
        elif not same_rank:
            raise ExtractionError(
                f"cannot find the current-iteration array matching output "
                f"{out_name!r}; pass state_map explicitly"
            )
        else:
            raise ExtractionError(
                f"ambiguous pairing for output array {out_name!r} "
                f"(candidates: {same_rank}); pass state_map explicitly"
            )
    return state_map


def extract_kernel_from_c(
    source_or_unit,
    function_name: Optional[str] = None,
    scalar_params: Optional[Mapping[str, float]] = None,
    state_map: Optional[Mapping[str, str]] = None,
    kernel_name: Optional[str] = None,
) -> StencilKernel:
    """Extract a :class:`StencilKernel` from C source (or a parsed unit).

    Parameters
    ----------
    source_or_unit:
        C source text or an already parsed :class:`CTranslationUnit`.
    function_name:
        Name of the kernel function; optional when the file has exactly one.
    scalar_params:
        Values for scalar function parameters referenced by the kernel body
        (macro ``#define`` values are picked up automatically).
    state_map:
        Mapping from written (next-iteration) array name to the read
        (current-iteration) array name; inferred automatically in the common
        one-in/one-out case.
    kernel_name:
        Overrides the kernel name (defaults to the function name).
    """
    from repro.frontend.c_parser import parse_c_source

    if isinstance(source_or_unit, str):
        unit = parse_c_source(source_or_unit)
    elif isinstance(source_or_unit, CTranslationUnit):
        unit = source_or_unit
    else:
        raise TypeError("source_or_unit must be C source text or a CTranslationUnit")

    function = unit.function(function_name)
    nest = _find_loop_nest(function.body)
    body = _flatten(nest.body)

    array_dims: Dict[str, int] = {}
    scalar_param_names: List[str] = []
    for param in function.params:
        if param.is_array:
            array_dims[param.name] = len(param.array_dims)
        else:
            scalar_param_names.append(param.name)

    written: Set[str] = set()
    read: Set[str] = set()
    read_signatures: Dict[str, Set[str]] = {}

    def record_reads(expr: CExpr) -> None:
        if isinstance(expr, CArrayAccess):
            read.add(expr.name)
            read_signatures.setdefault(expr.name, set()).add(repr(expr.indices))
            for index in expr.indices:
                record_reads(index)
        elif isinstance(expr, CBinOp):
            record_reads(expr.left)
            record_reads(expr.right)
        elif isinstance(expr, CUnaryOp):
            record_reads(expr.operand)
        elif isinstance(expr, CTernary):
            record_reads(expr.cond)
            record_reads(expr.if_true)
            record_reads(expr.if_false)
        elif isinstance(expr, CCall):
            for arg in expr.args:
                record_reads(arg)

    for stmt in body:
        if isinstance(stmt, CDeclaration) and stmt.init is not None:
            record_reads(stmt.init)
        elif isinstance(stmt, CAssignment):
            if isinstance(stmt.target, CArrayAccess):
                written.add(stmt.target.name)
                for index in stmt.target.indices:
                    record_reads(index)
            record_reads(stmt.value)

    unknown = (written | read) - set(array_dims)
    if unknown:
        raise ExtractionError(
            f"arrays {sorted(unknown)} are used in the loop body but are not "
            "array parameters of the kernel function"
        )

    if state_map is None:
        state_map = _infer_state_map(written, read, array_dims, read_signatures)
    else:
        state_map = dict(state_map)

    converter = _ExprConverter(
        nest=nest,
        defines=unit.defines,
        scalar_params=dict(scalar_params or {}),
        array_params=array_dims,
        state_map=state_map,
        temps={},
    )

    updates: List[FieldUpdate] = []
    for stmt in body:
        if isinstance(stmt, CDeclaration):
            if stmt.init is None:
                raise ExtractionError(
                    f"local {stmt.name!r} is declared without an initialiser"
                )
            converter.temps[stmt.name] = converter.convert(stmt.init)
            continue
        if isinstance(stmt, CAssignment):
            target = stmt.target
            if isinstance(target, CIdent):
                converter.temps[target.name] = converter.convert(stmt.value)
                continue
            if not isinstance(target, CArrayAccess):
                raise ExtractionError("unsupported assignment target")
            out_array = target.name
            if out_array not in state_map:
                raise ExtractionError(
                    f"assignment writes array {out_array!r} which is not an "
                    "output (next-iteration) array"
                )
            dims = array_dims[out_array]
            component = 0
            if dims == 3:
                component = converter._constant_index(target.indices[0], out_array)
                spatial = target.indices[1:]
            else:
                spatial = target.indices
            dy = converter._offset_of(spatial[0], nest.row_var, out_array)
            dx = converter._offset_of(spatial[1], nest.col_var, out_array)
            if dx != 0 or dy != 0:
                raise ExtractionError(
                    f"output array {out_array!r} must be written at the loop "
                    f"indices exactly (found offset ({dx},{dy}))"
                )
            field_name = state_map[out_array]
            updates.append(FieldUpdate(field_name, component, converter.convert(stmt.value)))
            continue
        raise ExtractionError(
            f"unsupported statement {type(stmt).__name__} in the loop body"
        )

    if not updates:
        raise ExtractionError("the loop body does not write any output element")

    # Field declarations: state fields (named after the current-iteration
    # array) plus read-only fields.
    state_fields = set(state_map.values())
    field_decls: List[FieldDecl] = []
    for name, dims in sorted(array_dims.items()):
        if name in state_map and name not in state_fields:
            continue  # pure output array: folded into its state field
        if name not in read and name not in state_fields:
            continue  # unused parameter array
        components = 1
        if dims == 3:
            components = _max_component(updates, name) + 1
        field_decls.append(FieldDecl(name, components))

    return StencilKernel(
        name=kernel_name or function.name,
        fields=field_decls,
        updates=updates,
        params=dict(converter.used_params),
        description=f"extracted from C function {function.name!r}",
    )


def _max_component(updates: Sequence[FieldUpdate], field_name: str) -> int:
    best = 0
    for update in updates:
        if update.field_name == field_name:
            best = max(best, update.component)
        for fread in update.expr.reads():
            if fread.field_name == field_name:
                best = max(best, fread.component)
    return best
