"""Algorithm frontend: from a C description (or a Python DSL) to a stencil kernel IR.

The flow in the paper takes a C description of the iterative stencil loop as
input.  This package provides two interchangeable surface syntaxes that both
produce the same :class:`~repro.frontend.kernel_ir.StencilKernel` object:

* :mod:`repro.frontend.c_parser` — a recursive-descent parser for the C subset
  the paper's examples are written in (a perfectly-nested loop over the frame
  with constant-offset array accesses), followed by
  :mod:`repro.frontend.extractor`, which recognises the ISL pattern.
* :mod:`repro.frontend.dsl` — a Python embedded DSL for writing kernels
  directly, convenient in tests and examples.
"""

from repro.frontend.kernel_ir import (
    KernelExpr,
    FieldRead,
    ParamRef,
    Literal,
    BinaryOp,
    UnaryOp,
    Select,
    FieldDecl,
    FieldUpdate,
    StencilKernel,
    KernelValidationError,
)
from repro.frontend.dsl import KernelBuilder, FieldHandle, ExprHandle, stencil_kernel
from repro.frontend.c_ast import CParseError
from repro.frontend.c_parser import parse_c_source
from repro.frontend.extractor import extract_kernel_from_c, ExtractionError
from repro.frontend.semantic import validate_kernel, KernelProperties

__all__ = [
    "KernelExpr",
    "FieldRead",
    "ParamRef",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "Select",
    "FieldDecl",
    "FieldUpdate",
    "StencilKernel",
    "KernelValidationError",
    "KernelBuilder",
    "FieldHandle",
    "ExprHandle",
    "stencil_kernel",
    "CParseError",
    "parse_c_source",
    "extract_kernel_from_c",
    "ExtractionError",
    "validate_kernel",
    "KernelProperties",
]
