"""Tokenizer for the supported C subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.frontend.c_ast import CParseError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "void", "int", "float", "double", "const", "for", "if", "else",
    "return", "unsigned", "static", "inline",
}

# Multi-character punctuators must be listed before their prefixes.
PUNCTUATORS = [
    "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
    "+", "-", "*", "/", "%", "<", ">", "=", "?", ":", ";", ",",
    "(", ")", "[", "]", "{", "}", "!", "&",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Hand-written scanner producing a flat token list (plus EOF sentinel)."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------ #

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise CParseError("unterminated block comment",
                                      self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)

        ch = self._peek()

        # preprocessor lines are handled by the parser pre-pass; the lexer
        # should never see them, but guard anyway.
        if ch == "#":
            raise CParseError("unexpected preprocessor directive", line, column)

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start:self.pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, line, column)

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            start = self.pos
            seen_dot = False
            seen_exp = False
            while True:
                c = self._peek()
                if c.isdigit():
                    self._advance()
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    self._advance()
                elif c in "eE" and not seen_exp and self.pos > start:
                    nxt = self._peek(1)
                    if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                        seen_exp = True
                        self._advance()
                        if self._peek() in "+-":
                            self._advance()
                    else:
                        break
                else:
                    break
            text = self.source[start:self.pos]
            # float suffixes
            if self._peek() in "fF":
                self._advance()
            elif self._peek() in "lLuU":
                self._advance()
            return Token(TokenKind.NUMBER, text, line, column)

        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)

        raise CParseError(f"unexpected character {ch!r}", line, column)
