"""Semantic analysis of stencil kernels.

The flow is only applicable to kernels exhibiting the two ISL properties of
Section 2 of the paper — *domain narrowness* and *translation invariance*.
Translation invariance is guaranteed by construction of the IR (offsets are
constants), so the checks here quantify narrowness and report the structural
properties later stages rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.utils.geometry import Offset, Window
from repro.frontend.kernel_ir import (
    BinaryOp,
    FieldRead,
    KernelExpr,
    KernelValidationError,
    Select,
    StencilKernel,
    UnaryOp,
)


@dataclass
class KernelProperties:
    """Structural facts about a kernel needed by the rest of the flow."""

    name: str
    radius: int
    footprint: Window
    footprint_size: int
    read_offsets: Tuple[Offset, ...]
    state_fields: Tuple[str, ...]
    readonly_fields: Tuple[str, ...]
    components_per_field: Dict[str, int] = field(default_factory=dict)
    operation_count: int = 0
    has_division: bool = False
    has_sqrt: bool = False
    has_select: bool = False
    is_domain_narrow: bool = True
    is_translation_invariant: bool = True

    @property
    def total_state_components(self) -> int:
        return sum(self.components_per_field[name] for name in self.state_fields)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "radius": self.radius,
            "footprint": self.footprint.to_list(),
            "footprint_size": self.footprint_size,
            "read_offsets": [o.to_list() for o in self.read_offsets],
            "state_fields": list(self.state_fields),
            "readonly_fields": list(self.readonly_fields),
            "components_per_field": dict(self.components_per_field),
            "operation_count": self.operation_count,
            "has_division": self.has_division,
            "has_sqrt": self.has_sqrt,
            "has_select": self.has_select,
            "is_domain_narrow": self.is_domain_narrow,
            "is_translation_invariant": self.is_translation_invariant,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelProperties":
        return cls(
            name=data["name"],
            radius=data["radius"],
            footprint=Window.from_list(data["footprint"]),
            footprint_size=data["footprint_size"],
            read_offsets=tuple(Offset.from_list(o)
                               for o in data["read_offsets"]),
            state_fields=tuple(data["state_fields"]),
            readonly_fields=tuple(data["readonly_fields"]),
            components_per_field=dict(data["components_per_field"]),
            operation_count=data["operation_count"],
            has_division=data["has_division"],
            has_sqrt=data["has_sqrt"],
            has_select=data["has_select"],
            is_domain_narrow=data["is_domain_narrow"],
            is_translation_invariant=data["is_translation_invariant"],
        )

    def summary(self) -> str:
        return (
            f"kernel {self.name}: radius={self.radius}, "
            f"footprint={self.footprint.width}x{self.footprint.height} "
            f"({self.footprint_size} reads), ops={self.operation_count}, "
            f"state fields={list(self.state_fields)}"
        )


# Thresholds for the narrowness heuristic.  A stencil reading more than this
# many distinct neighbours, or reaching further than this radius, no longer
# benefits from the cone decomposition (the halo overhead dominates).
MAX_NARROW_RADIUS = 8
MAX_NARROW_FOOTPRINT = 128


def _expr_features(expr: KernelExpr) -> Tuple[bool, bool, bool]:
    """Return (has_division, has_sqrt, has_select) for an expression tree."""
    has_div = has_sqrt = has_select = False
    stack: List[KernelExpr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.kind.value == "/":
            has_div = True
        if isinstance(node, UnaryOp) and node.kind.value == "sqrt":
            has_sqrt = True
        if isinstance(node, Select):
            has_select = True
        stack.extend(node.children())
    return has_div, has_sqrt, has_select


def validate_kernel(kernel: StencilKernel, strict: bool = True) -> KernelProperties:
    """Check the ISL applicability conditions and compute kernel properties.

    With ``strict=True`` (the default) a kernel that is not domain-narrow
    raises :class:`KernelValidationError`; with ``strict=False`` the
    properties are returned with the corresponding flag set to ``False`` so
    callers can degrade gracefully (e.g. fall back to the frame-buffer
    baseline).
    """
    offsets = sorted(kernel.read_offsets(), key=lambda o: (o.dy, o.dx))
    radius = kernel.radius
    footprint = kernel.footprint_window

    components = {decl.name: decl.components for decl in kernel.fields}

    has_div = has_sqrt = has_select = False
    for update in kernel.updates:
        div, sqrt_, select = _expr_features(update.expr)
        has_div = has_div or div
        has_sqrt = has_sqrt or sqrt_
        has_select = has_select or select

    narrow = (radius <= MAX_NARROW_RADIUS
              and len(offsets) <= MAX_NARROW_FOOTPRINT)

    # state fields must read themselves (otherwise nothing is iterative)
    for name in kernel.state_field_names:
        state_reads = kernel.read_offsets(of_fields=[name])
        if not state_reads:
            raise KernelValidationError(
                f"state field {name!r} is updated but never read; the loop is "
                "not iterative"
            )

    if strict and not narrow:
        raise KernelValidationError(
            f"kernel {kernel.name!r} is not domain-narrow: radius={radius}, "
            f"footprint={len(offsets)} reads (limits: {MAX_NARROW_RADIUS}, "
            f"{MAX_NARROW_FOOTPRINT})"
        )

    return KernelProperties(
        name=kernel.name,
        radius=radius,
        footprint=footprint,
        footprint_size=len(offsets),
        read_offsets=tuple(offsets),
        state_fields=tuple(kernel.state_field_names),
        readonly_fields=tuple(kernel.readonly_field_names),
        components_per_field=components,
        operation_count=kernel.operation_count,
        has_division=has_div,
        has_sqrt=has_sqrt,
        has_select=has_select,
        is_domain_narrow=narrow,
        is_translation_invariant=True,
    )
