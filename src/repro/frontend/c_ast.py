"""Abstract syntax tree for the supported C subset.

The paper's flow takes the ISL algorithm as C code.  We support the subset
those kernels are actually written in: a function containing a perfectly
nested ``for`` loop over the frame, whose innermost body is a sequence of
local declarations and assignments with constant-offset array subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class CParseError(SyntaxError):
    """Raised on any lexical or syntactic error in the C source."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


# --------------------------------------------------------------------------- #
# expressions


class CExpr:
    """Base class of C expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class CIdent(CExpr):
    name: str


@dataclass(frozen=True)
class CNumber(CExpr):
    value: float
    is_integer: bool = False


@dataclass(frozen=True)
class CArrayAccess(CExpr):
    """``name[idx0][idx1]...`` — indices are arbitrary expressions."""

    name: str
    indices: Tuple[CExpr, ...]


@dataclass(frozen=True)
class CBinOp(CExpr):
    op: str            # one of + - * / < <= > >= == && ||
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class CUnaryOp(CExpr):
    op: str            # one of - !
    operand: CExpr


@dataclass(frozen=True)
class CTernary(CExpr):
    cond: CExpr
    if_true: CExpr
    if_false: CExpr


@dataclass(frozen=True)
class CCall(CExpr):
    """Call of a whitelisted math intrinsic (fabs, fminf, sqrtf, ...)."""

    name: str
    args: Tuple[CExpr, ...]


# --------------------------------------------------------------------------- #
# statements


class CStmt:
    """Base class of C statement nodes."""

    __slots__ = ()


@dataclass
class CDeclaration(CStmt):
    """``float name = expr;`` — a local temporary inside the loop body."""

    type_name: str
    name: str
    init: Optional[CExpr]


@dataclass
class CAssignment(CStmt):
    """``target = expr;`` where target is an identifier or array access."""

    target: CExpr
    value: CExpr


@dataclass
class CFor(CStmt):
    """A canonical counted loop: ``for (int v = lo; v < hi; v++) body``."""

    var: str
    lower: CExpr
    upper: CExpr
    body: List[CStmt] = field(default_factory=list)
    step: int = 1


@dataclass
class CBlock(CStmt):
    statements: List[CStmt] = field(default_factory=list)


@dataclass
class CParamDecl:
    """A formal parameter of the kernel function."""

    type_name: str
    name: str
    array_dims: Tuple[str, ...] = ()   # symbolic dimensions, e.g. ("H", "W")
    is_const: bool = False

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)


@dataclass
class CFunction:
    name: str
    return_type: str
    params: List[CParamDecl]
    body: List[CStmt]


@dataclass
class CTranslationUnit:
    """A parsed source file: macro definitions plus function definitions."""

    defines: dict
    functions: List[CFunction]

    def function(self, name: Optional[str] = None) -> CFunction:
        """Return the named function, or the only one if ``name`` is None."""
        if name is None:
            if len(self.functions) != 1:
                raise CParseError(
                    f"expected exactly one function, found {len(self.functions)}; "
                    "pass an explicit function name"
                )
            return self.functions[0]
        for func in self.functions:
            if func.name == name:
                return func
        raise CParseError(f"no function named {name!r} in translation unit")
