"""Kernel intermediate representation.

A *stencil kernel* is the body of the inner loop of Algorithm 1 in the paper:
the function ``t_p`` that computes one element of frame ``f_{i+1}`` from a
small neighbourhood of frame ``f_i``.  The IR captures exactly that: for each
output field component, an expression tree whose leaves are reads of input
field components at **constant offsets**, numeric literals, and named
parameters.

The two defining ISL properties map directly onto this IR:

* *domain narrowness* — the set of distinct read offsets is small and bounded;
* *translation invariance* — offsets are constants, so the dependency scheme
  of any element is a pure translation of any other's.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.utils.geometry import Offset, Window, bounding_window


class KernelValidationError(ValueError):
    """Raised when a kernel violates the structural rules of the IR."""


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MIN = "min"
    MAX = "max"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="


class UnOpKind(enum.Enum):
    NEG = "-"
    ABS = "abs"
    SQRT = "sqrt"


class KernelExpr:
    """Base class for kernel expression nodes (immutable trees)."""

    __slots__ = ()

    def reads(self) -> Iterable["FieldRead"]:
        """Yield every :class:`FieldRead` in the tree (with repetitions)."""
        return iter(())

    def children(self) -> Tuple["KernelExpr", ...]:
        return ()

    def node_count(self) -> int:
        return 1 + sum(c.node_count() for c in self.children())


@dataclass(frozen=True)
class FieldRead(KernelExpr):
    """Read of ``field[component]`` at a constant offset from the target element."""

    field_name: str
    offset: Offset
    component: int = 0

    def reads(self) -> Iterable["FieldRead"]:
        yield self

    def __str__(self) -> str:
        comp = f".{self.component}" if self.component else ""
        return f"{self.field_name}{comp}[{self.offset.dx:+d},{self.offset.dy:+d}]"


@dataclass(frozen=True)
class ParamRef(KernelExpr):
    """Reference to a named scalar parameter of the algorithm (e.g. tau, lambda)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(KernelExpr):
    """A numeric literal coefficient (always stored as float, so equality,
    printing, and fingerprints do not depend on how the kernel was built)."""

    value: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinaryOp(KernelExpr):
    kind: BinOpKind
    left: KernelExpr
    right: KernelExpr

    def reads(self) -> Iterable[FieldRead]:
        yield from self.left.reads()
        yield from self.right.reads()

    def children(self) -> Tuple[KernelExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        if self.kind in (BinOpKind.MIN, BinOpKind.MAX):
            return f"{self.kind.value}({self.left}, {self.right})"
        return f"({self.left} {self.kind.value} {self.right})"


@dataclass(frozen=True)
class UnaryOp(KernelExpr):
    kind: UnOpKind
    operand: KernelExpr

    def reads(self) -> Iterable[FieldRead]:
        yield from self.operand.reads()

    def children(self) -> Tuple[KernelExpr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        if self.kind is UnOpKind.NEG:
            return f"(-{self.operand})"
        return f"{self.kind.value}({self.operand})"


@dataclass(frozen=True)
class Select(KernelExpr):
    """Ternary select: ``cond ? if_true : if_false``."""

    cond: KernelExpr
    if_true: KernelExpr
    if_false: KernelExpr

    def reads(self) -> Iterable[FieldRead]:
        yield from self.cond.reads()
        yield from self.if_true.reads()
        yield from self.if_false.reads()

    def children(self) -> Tuple[KernelExpr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


@dataclass(frozen=True)
class FieldDecl:
    """Declaration of a field (a named grid carried from iteration to iteration).

    Most kernels carry one scalar field; vector-valued algorithms such as
    Chambolle carry a field with several components that are all updated each
    iteration.
    """

    name: str
    components: int = 1

    def __post_init__(self) -> None:
        if self.components < 1:
            raise KernelValidationError(
                f"field {self.name!r} must have at least one component"
            )


@dataclass(frozen=True)
class FieldUpdate:
    """The update rule of one output component: ``field[component] <- expr``."""

    field_name: str
    component: int
    expr: KernelExpr


@dataclass
class StencilKernel:
    """A complete single-iteration stencil kernel.

    Attributes
    ----------
    name:
        Identifier used in generated VHDL entity names and reports.
    fields:
        Every field carried across iterations.  Each updated field must be
        declared; additional read-only fields (e.g. the observed image ``g``
        in Chambolle) are also declared here and are *not* updated.
    updates:
        One update per (field, component) that changes each iteration.
    params:
        Named scalar parameters with their default numeric values.
    """

    name: str
    fields: List[FieldDecl]
    updates: List[FieldUpdate]
    params: Dict[str, float] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        # canonicalize parameter values so fingerprints and equality do not
        # depend on int-vs-float spelling at the construction site
        self.params = {name: float(value)
                       for name, value in self.params.items()}
        self._validate()

    # ------------------------------------------------------------------ #
    # validation

    def _validate(self) -> None:
        if not self.name:
            raise KernelValidationError("kernel needs a non-empty name")
        if not self.updates:
            raise KernelValidationError("kernel has no field updates")
        decls = {f.name: f for f in self.fields}
        if len(decls) != len(self.fields):
            raise KernelValidationError("duplicate field declaration")
        seen: Set[Tuple[str, int]] = set()
        for update in self.updates:
            decl = decls.get(update.field_name)
            if decl is None:
                raise KernelValidationError(
                    f"update targets undeclared field {update.field_name!r}"
                )
            if not (0 <= update.component < decl.components):
                raise KernelValidationError(
                    f"update component {update.component} out of range for "
                    f"field {update.field_name!r} ({decl.components} components)"
                )
            key = (update.field_name, update.component)
            if key in seen:
                raise KernelValidationError(
                    f"duplicate update for {update.field_name}[{update.component}]"
                )
            seen.add(key)
            for read in update.expr.reads():
                read_decl = decls.get(read.field_name)
                if read_decl is None:
                    raise KernelValidationError(
                        f"kernel reads undeclared field {read.field_name!r}"
                    )
                if not (0 <= read.component < read_decl.components):
                    raise KernelValidationError(
                        f"read component {read.component} out of range for "
                        f"field {read.field_name!r}"
                    )
            for param in _collect_params(update.expr):
                if param not in self.params:
                    raise KernelValidationError(
                        f"kernel references undeclared parameter {param!r}"
                    )

    # ------------------------------------------------------------------ #
    # derived properties

    @property
    def field_map(self) -> Dict[str, FieldDecl]:
        return {f.name: f for f in self.fields}

    @property
    def updated_field_names(self) -> List[str]:
        names: List[str] = []
        for update in self.updates:
            if update.field_name not in names:
                names.append(update.field_name)
        return names

    @property
    def state_field_names(self) -> List[str]:
        """Fields carried (and rewritten) from one iteration to the next."""
        return self.updated_field_names

    @property
    def readonly_field_names(self) -> List[str]:
        """Fields read by the kernel but never updated (iteration-invariant)."""
        updated = set(self.updated_field_names)
        return [f.name for f in self.fields if f.name not in updated]

    def update_for(self, field_name: str, component: int) -> FieldUpdate:
        for update in self.updates:
            if update.field_name == field_name and update.component == component:
                return update
        raise KeyError(f"no update for {field_name}[{component}]")

    # dependency metrics ----------------------------------------------------

    def read_offsets(self, of_fields: Optional[Iterable[str]] = None) -> Set[Offset]:
        """Distinct offsets at which the kernel reads the given fields.

        By default only reads of *state* fields count, because reads of
        read-only fields do not create inter-iteration dependencies.
        """
        selected = set(of_fields) if of_fields is not None else set(self.state_field_names)
        offsets: Set[Offset] = set()
        for update in self.updates:
            for read in update.expr.reads():
                if read.field_name in selected:
                    offsets.add(read.offset)
        return offsets

    @property
    def radius(self) -> int:
        """Chebyshev radius of the stencil footprint on state fields.

        This is the number of halo elements a cone's input window grows by
        for every iteration of depth it spans.
        """
        offsets = self.read_offsets()
        if not offsets:
            return 0
        return max(o.chebyshev() for o in offsets)

    @property
    def footprint_window(self) -> Window:
        """Bounding window of the state-field read offsets."""
        offsets = self.read_offsets()
        if not offsets:
            return Window(0, 0, 0, 0)
        return bounding_window(offsets)

    @property
    def operation_count(self) -> int:
        """Number of operator nodes in the (tree-form) kernel expressions."""
        total = 0
        for update in self.updates:
            total += _count_ops(update.expr)
        return total

    def __str__(self) -> str:
        lines = [f"kernel {self.name} (radius {self.radius})"]
        for update in self.updates:
            lines.append(f"  {update.field_name}[{update.component}] <- {update.expr}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # serialization / identity

    def fingerprint(self) -> str:
        """Stable content hash of the kernel's semantics.

        Two kernels with the same fields, parameters, and update expressions
        share a fingerprint regardless of how they were built (DSL, C
        frontend, ``from_dict``).  Used as the characterization-cache key of
        :class:`repro.api.Session`.
        """
        parts = [self.name]
        parts.extend(f"field:{f.name}:{f.components}" for f in self.fields)
        parts.extend(f"param:{name}={self.params[name]!r}"
                     for name in sorted(self.params))
        parts.extend(f"update:{u.field_name}[{u.component}]<-{u.expr}"
                     for u in self.updates)
        digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of the complete kernel."""
        return {
            "name": self.name,
            "description": self.description,
            "fields": [{"name": f.name, "components": f.components}
                       for f in self.fields],
            "params": dict(self.params),
            "updates": [{"field": u.field_name,
                         "component": u.component,
                         "expr": expr_to_dict(u.expr)}
                        for u in self.updates],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StencilKernel":
        return cls(
            name=data["name"],
            fields=[FieldDecl(f["name"], f["components"])
                    for f in data["fields"]],
            updates=[FieldUpdate(u["field"], u["component"],
                                 expr_from_dict(u["expr"]))
                     for u in data["updates"]],
            params={k: float(v) for k, v in data.get("params", {}).items()},
            description=data.get("description", ""),
        )


# ---------------------------------------------------------------------- #
# expression (de)serialization


def expr_to_dict(expr: KernelExpr) -> Dict[str, Any]:
    """Encode an expression tree as JSON-compatible nested dicts."""
    if isinstance(expr, FieldRead):
        return {"op": "read", "field": expr.field_name,
                "offset": expr.offset.to_list(), "component": expr.component}
    if isinstance(expr, ParamRef):
        return {"op": "param", "name": expr.name}
    if isinstance(expr, Literal):
        return {"op": "lit", "value": expr.value}
    if isinstance(expr, BinaryOp):
        return {"op": "bin", "kind": expr.kind.value,
                "left": expr_to_dict(expr.left),
                "right": expr_to_dict(expr.right)}
    if isinstance(expr, UnaryOp):
        return {"op": "un", "kind": expr.kind.value,
                "operand": expr_to_dict(expr.operand)}
    if isinstance(expr, Select):
        return {"op": "select", "cond": expr_to_dict(expr.cond),
                "if_true": expr_to_dict(expr.if_true),
                "if_false": expr_to_dict(expr.if_false)}
    raise TypeError(f"cannot serialize expression node {type(expr).__name__}")


def expr_from_dict(data: Mapping[str, Any]) -> KernelExpr:
    """Decode an expression tree produced by :func:`expr_to_dict`."""
    op = data["op"]
    if op == "read":
        return FieldRead(data["field"], Offset.from_list(data["offset"]),
                         data.get("component", 0))
    if op == "param":
        return ParamRef(data["name"])
    if op == "lit":
        return Literal(float(data["value"]))
    if op == "bin":
        return BinaryOp(BinOpKind(data["kind"]),
                        expr_from_dict(data["left"]),
                        expr_from_dict(data["right"]))
    if op == "un":
        return UnaryOp(UnOpKind(data["kind"]), expr_from_dict(data["operand"]))
    if op == "select":
        return Select(expr_from_dict(data["cond"]),
                      expr_from_dict(data["if_true"]),
                      expr_from_dict(data["if_false"]))
    raise ValueError(f"unknown expression op {op!r}")


def _collect_params(expr: KernelExpr) -> Set[str]:
    params: Set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ParamRef):
            params.add(node.name)
        stack.extend(node.children())
    return params


def _count_ops(expr: KernelExpr) -> int:
    count = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (BinaryOp, UnaryOp, Select)):
            count += 1
        stack.extend(node.children())
    return count
