"""Python embedded DSL for writing stencil kernels.

Example — a 5-point Jacobi smoother::

    from repro.frontend import stencil_kernel

    def jacobi(k):
        u = k.field("u")
        k.update(u, 0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) + u(0, -1)))

    kernel = stencil_kernel("jacobi", jacobi)

``u(dx, dy)`` reads the field at a constant offset; arithmetic on the returned
handles builds the :class:`~repro.frontend.kernel_ir.KernelExpr` tree.  The
DSL and the C frontend produce the same IR, so every later stage of the flow
is agnostic to which one was used.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.utils.geometry import Offset
from repro.frontend.kernel_ir import (
    BinOpKind,
    BinaryOp,
    FieldDecl,
    FieldRead,
    FieldUpdate,
    KernelExpr,
    KernelValidationError,
    Literal,
    ParamRef,
    Select,
    StencilKernel,
    UnOpKind,
    UnaryOp,
)

Number = Union[int, float]
ExprLike = Union["ExprHandle", Number]


def _coerce(value: ExprLike) -> KernelExpr:
    if isinstance(value, ExprHandle):
        return value.expr
    if isinstance(value, (int, float)):
        return Literal(float(value))
    raise TypeError(f"cannot use {value!r} in a kernel expression")


class ExprHandle:
    """Wrapper around a :class:`KernelExpr` providing Python operators."""

    __slots__ = ("expr",)

    def __init__(self, expr: KernelExpr) -> None:
        self.expr = expr

    # arithmetic ----------------------------------------------------------

    def _bin(self, kind: BinOpKind, other: ExprLike, reflected: bool = False) -> "ExprHandle":
        left = _coerce(other) if reflected else self.expr
        right = self.expr if reflected else _coerce(other)
        return ExprHandle(BinaryOp(kind, left, right))

    def __add__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.ADD, other)

    def __radd__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.ADD, other, reflected=True)

    def __sub__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.SUB, other)

    def __rsub__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.SUB, other, reflected=True)

    def __mul__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.MUL, other)

    def __rmul__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.MUL, other, reflected=True)

    def __truediv__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.DIV, other)

    def __rtruediv__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.DIV, other, reflected=True)

    def __neg__(self) -> "ExprHandle":
        return ExprHandle(UnaryOp(UnOpKind.NEG, self.expr))

    # comparisons (produce 0/1-valued expressions for use in select) -------

    def __lt__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.LT, other)

    def __le__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.LE, other)

    def __gt__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.GT, other)

    def __ge__(self, other: ExprLike) -> "ExprHandle":
        return self._bin(BinOpKind.GE, other)

    def __repr__(self) -> str:
        return f"ExprHandle({self.expr})"


class FieldHandle:
    """Handle on a declared field; calling it reads the field at an offset."""

    __slots__ = ("name", "components", "_component")

    def __init__(self, name: str, components: int = 1, component: int = 0) -> None:
        self.name = name
        self.components = components
        self._component = component

    def __call__(self, dx: int = 0, dy: int = 0) -> ExprHandle:
        return ExprHandle(FieldRead(self.name, Offset(int(dx), int(dy)), self._component))

    def component(self, index: int) -> "FieldHandle":
        """Return a handle bound to one component of a vector field."""
        if not (0 <= index < self.components):
            raise KernelValidationError(
                f"component {index} out of range for field {self.name!r}"
            )
        return FieldHandle(self.name, self.components, index)

    def center(self) -> ExprHandle:
        return self(0, 0)

    def __repr__(self) -> str:
        return f"FieldHandle({self.name!r}, component={self._component})"


class KernelBuilder:
    """Collects field declarations, parameters and updates for one kernel."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._fields: Dict[str, FieldDecl] = {}
        self._params: Dict[str, float] = {}
        self._updates: List[FieldUpdate] = []
        self.description = ""

    # declarations ----------------------------------------------------------

    def field(self, name: str, components: int = 1) -> FieldHandle:
        """Declare (or retrieve) a field carried across iterations."""
        existing = self._fields.get(name)
        if existing is not None:
            if existing.components != components:
                raise KernelValidationError(
                    f"field {name!r} redeclared with {components} components "
                    f"(was {existing.components})"
                )
        else:
            self._fields[name] = FieldDecl(name, components)
        return FieldHandle(name, components)

    def param(self, name: str, default: Number) -> ExprHandle:
        """Declare a named scalar parameter with a default value."""
        self._params[name] = float(default)
        return ExprHandle(ParamRef(name))

    # expression helpers ------------------------------------------------------

    @staticmethod
    def minimum(a: ExprLike, b: ExprLike) -> ExprHandle:
        return ExprHandle(BinaryOp(BinOpKind.MIN, _coerce(a), _coerce(b)))

    @staticmethod
    def maximum(a: ExprLike, b: ExprLike) -> ExprHandle:
        return ExprHandle(BinaryOp(BinOpKind.MAX, _coerce(a), _coerce(b)))

    @staticmethod
    def absolute(a: ExprLike) -> ExprHandle:
        return ExprHandle(UnaryOp(UnOpKind.ABS, _coerce(a)))

    @staticmethod
    def sqrt(a: ExprLike) -> ExprHandle:
        return ExprHandle(UnaryOp(UnOpKind.SQRT, _coerce(a)))

    @staticmethod
    def select(cond: ExprLike, if_true: ExprLike, if_false: ExprLike) -> ExprHandle:
        return ExprHandle(Select(_coerce(cond), _coerce(if_true), _coerce(if_false)))

    # updates -----------------------------------------------------------------

    def update(self, target: Union[FieldHandle, str], expr: ExprLike,
               component: Optional[int] = None) -> None:
        """Record the next-iteration value of ``target``."""
        if isinstance(target, FieldHandle):
            field_name = target.name
            comp = target._component if component is None else component
        else:
            field_name = target
            comp = 0 if component is None else component
        if field_name not in self._fields:
            raise KernelValidationError(
                f"update targets undeclared field {field_name!r}"
            )
        self._updates.append(FieldUpdate(field_name, comp, _coerce(expr)))

    # finalisation -------------------------------------------------------------

    def build(self) -> StencilKernel:
        return StencilKernel(
            name=self.name,
            fields=list(self._fields.values()),
            updates=list(self._updates),
            params=dict(self._params),
            description=self.description,
        )


def stencil_kernel(name: str, definition: Callable[[KernelBuilder], None],
                   description: str = "") -> StencilKernel:
    """Build a :class:`StencilKernel` from a DSL definition function."""
    builder = KernelBuilder(name)
    builder.description = description
    definition(builder)
    return builder.build()
