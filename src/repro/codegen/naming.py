"""Identifier mangling helpers for VHDL generation."""

from __future__ import annotations

import re

_VHDL_KEYWORDS = {
    "abs", "access", "after", "alias", "all", "and", "architecture", "array",
    "assert", "attribute", "begin", "block", "body", "buffer", "bus", "case",
    "component", "configuration", "constant", "disconnect", "downto", "else",
    "elsif", "end", "entity", "exit", "file", "for", "function", "generate",
    "generic", "group", "guarded", "if", "impure", "in", "inertial", "inout",
    "is", "label", "library", "linkage", "literal", "loop", "map", "mod",
    "nand", "new", "next", "nor", "not", "null", "of", "on", "open", "or",
    "others", "out", "package", "port", "postponed", "procedure", "process",
    "pure", "range", "record", "register", "reject", "rem", "report",
    "return", "rol", "ror", "select", "severity", "signal", "shared", "sla",
    "sll", "sra", "srl", "subtype", "then", "to", "transport", "type",
    "unaffected", "units", "until", "use", "variable", "wait", "when",
    "while", "with", "xnor", "xor",
}

_INVALID_CHARS = re.compile(r"[^A-Za-z0-9_]")
_MULTI_UNDERSCORE = re.compile(r"__+")


def vhdl_identifier(name: str) -> str:
    """Turn an arbitrary string into a legal VHDL basic identifier."""
    cleaned = _INVALID_CHARS.sub("_", name)
    cleaned = _MULTI_UNDERSCORE.sub("_", cleaned).strip("_")
    if not cleaned:
        cleaned = "sig"
    if cleaned[0].isdigit():
        cleaned = "s_" + cleaned
    if cleaned.lower() in _VHDL_KEYWORDS:
        cleaned += "_i"
    return cleaned


def signal_name(prefix: str, node_id: int) -> str:
    """Stable signal name for a DFG node."""
    return vhdl_identifier(f"{prefix}_{node_id}")
