"""VHDL generation for cone datapaths.

The flow emits one synthesizable entity per cone module plus a top-level
architecture that instantiates the deployed cones and the inter-level
buffers.  The emitted VHDL enforces the data reuse of Section 3.2: every DFG
node becomes exactly one signal/register, so repeated operations are shared
by construction.
"""

from repro.codegen.naming import vhdl_identifier, signal_name
from repro.codegen.vhdl_writer import VhdlWriter, generate_cone_entity
from repro.codegen.vhdl_toplevel import generate_architecture_toplevel
from repro.codegen.vhdl_testbench import generate_testbench

__all__ = [
    "vhdl_identifier",
    "signal_name",
    "VhdlWriter",
    "generate_cone_entity",
    "generate_architecture_toplevel",
    "generate_testbench",
]
