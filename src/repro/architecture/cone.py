"""Cone shapes and their geometry.

A cone is identified by two parameters (Section 1 of the paper): its output
*window* side and its *depth* (how many iterations it collapses).  Combined
with the stencil radius of the kernel, these determine the input window, the
number of intermediate elements computed, and hence the hardware size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.geometry import Window
from repro.utils.validation import check_positive
from repro.symbolic.dependency import ConeDomain, cone_element_count, cone_input_count


@dataclass(frozen=True, order=True)
class ConeShape:
    """The (window side, depth) pair identifying a cone module."""

    window_side: int
    depth: int

    def __post_init__(self) -> None:
        check_positive("window_side", self.window_side)
        check_positive("depth", self.depth)

    @property
    def window_area(self) -> int:
        """Number of elements in the output window (the x-axis of Figures 5-10)."""
        return self.window_side * self.window_side

    def label(self, kernel_name: str = "cone") -> str:
        """Human-readable identifier matching the paper's naming style."""
        return f"{kernel_name}_{self.window_area}_d{self.depth}"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"window_side": self.window_side, "depth": self.depth}

    @classmethod
    def from_dict(cls, data: dict) -> "ConeShape":
        return cls(window_side=data["window_side"], depth=data["depth"])

    def geometry(self, radius: int, components: int = 1) -> "ConeGeometry":
        return ConeGeometry(self, radius, components)


@dataclass(frozen=True)
class ConeGeometry:
    """A cone shape specialised to a kernel's stencil radius and component count."""

    shape: ConeShape
    radius: int
    components: int = 1

    @property
    def input_side(self) -> int:
        return self.shape.window_side + 2 * self.radius * self.shape.depth

    @property
    def input_elements(self) -> int:
        return cone_input_count(self.shape.window_side, self.radius,
                                self.shape.depth, self.components)

    @property
    def output_elements(self) -> int:
        return self.shape.window_area * self.components

    @property
    def computed_elements(self) -> int:
        return cone_element_count(self.shape.window_side, self.radius,
                                  self.shape.depth, self.components)

    @property
    def recompute_overhead(self) -> float:
        """Computed elements per output element (1.0 x depth is the ideal)."""
        return self.computed_elements / self.output_elements

    def domain(self) -> ConeDomain:
        return ConeDomain(
            output_window=Window.square(self.shape.window_side),
            depth=self.shape.depth,
            radius=self.radius,
            components=self.components,
        )
