"""The cone-based architectural template and its feasibility rules.

An instance of the template (Figure 3 of the paper) is characterised by:

1. the output window size of its cones,
2. the number of levels the computation is split into — equivalently, the
   depth of the cone used at each level (depths sum to the total iteration
   count of the algorithm), and
3. how many physical instances of each required cone depth are deployed.

Feasibility only requires at least one instance of each required depth: a
level needing several cone executions can reuse the same physical cone
sequentially (the paper's example implements cones A-D with one instance of
A executed four times).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.utils.validation import check_positive
from repro.architecture.cone import ConeGeometry, ConeShape


class FeasibilityError(ValueError):
    """Raised when an architecture instance violates the template rules."""


@dataclass(frozen=True)
class LevelSpec:
    """One level of the template: a group of iterations computed by one cone depth."""

    index: int
    depth: int

    def __post_init__(self) -> None:
        check_positive("depth", self.depth)


@dataclass
class ConeArchitecture:
    """A fully specified instance of the architectural template.

    Attributes
    ----------
    kernel_name:
        Kernel the architecture implements.
    window_side:
        Output window side shared by every cone of the architecture.
    level_depths:
        Depth of the cone used at each level, from the level closest to the
        input frame to the level producing the final output.  Their sum is
        the total number of iterations performed.
    cone_counts:
        Physical instances deployed per distinct cone depth.  Every depth in
        ``level_depths`` must appear with count >= 1.
    radius, components:
        Stencil radius and number of state components of the kernel, needed
        to derive the geometry of each cone.
    """

    kernel_name: str
    window_side: int
    level_depths: List[int]
    cone_counts: Dict[int, int]
    radius: int
    components: int = 1

    def __post_init__(self) -> None:
        check_positive("window_side", self.window_side)
        if not self.level_depths:
            raise FeasibilityError("an architecture needs at least one level")
        for depth in self.level_depths:
            check_positive("level depth", depth)
        self.validate()

    @classmethod
    def from_trusted_parts(cls, kernel_name: str, window_side: int,
                           level_depths: List[int],
                           cone_counts: Dict[int, int],
                           radius: int, components: int) -> "ConeArchitecture":
        """Materialize an architecture the enumerator already proved valid.

        Fast path for the columnar engine, which materializes architectures
        only for rows that survive constraint masks: the enumeration
        guarantees positive windows/depths and one instance per required
        depth, so re-running ``__post_init__`` validation per row would only
        burn the time the vectorized evaluation just saved.  The containers
        are adopted, not copied — callers must hand over fresh ones.
        """
        self = object.__new__(cls)
        self.kernel_name = kernel_name
        self.window_side = window_side
        self.level_depths = level_depths
        self.cone_counts = cone_counts
        self.radius = radius
        self.components = components
        return self

    # ------------------------------------------------------------------ #
    # structure

    @property
    def total_iterations(self) -> int:
        return sum(self.level_depths)

    @property
    def levels(self) -> List[LevelSpec]:
        return [LevelSpec(i, d) for i, d in enumerate(self.level_depths)]

    @property
    def distinct_depths(self) -> List[int]:
        return sorted(set(self.level_depths))

    @property
    def total_cone_instances(self) -> int:
        return sum(self.cone_counts.get(d, 0) for d in self.distinct_depths)

    def shapes(self) -> List[ConeShape]:
        """The distinct cone modules that must exist in hardware."""
        return [ConeShape(self.window_side, depth) for depth in self.distinct_depths]

    def geometry(self, depth: int) -> ConeGeometry:
        return ConeShape(self.window_side, depth).geometry(self.radius, self.components)

    def validate(self) -> None:
        """Check the feasibility rule: one instance of each required depth."""
        for depth in self.distinct_depths:
            if self.cone_counts.get(depth, 0) < 1:
                raise FeasibilityError(
                    f"architecture uses cones of depth {depth} but deploys "
                    f"{self.cone_counts.get(depth, 0)} instances of them"
                )

    # ------------------------------------------------------------------ #
    # per-tile workload (the cascade of Figure 3)

    def region_side_after_level(self, level_index: int) -> int:
        """Side of the region a level must produce for one final output tile.

        The last level produces exactly the output window; every earlier level
        must additionally cover the halo consumed by the levels after it.
        """
        if not (0 <= level_index < len(self.level_depths)):
            raise IndexError(f"level index {level_index} out of range")
        remaining = sum(self.level_depths[level_index + 1:])
        return self.window_side + 2 * self.radius * remaining

    def input_region_side(self) -> int:
        """Side of the iteration-0 region read from off-chip memory per tile."""
        return self.window_side + 2 * self.radius * self.total_iterations

    def executions_per_level(self) -> List[int]:
        """Cone executions each level performs per output tile."""
        executions = []
        for index, _depth in enumerate(self.level_depths):
            side = self.region_side_after_level(index)
            executions.append(math.ceil(side / self.window_side) ** 2)
        return executions

    def executions_per_depth(self) -> Dict[int, int]:
        """Total cone executions per distinct depth, per output tile."""
        totals: Dict[int, int] = {}
        for depth, executions in zip(self.level_depths, self.executions_per_level()):
            totals[depth] = totals.get(depth, 0) + executions
        return totals

    # ------------------------------------------------------------------ #
    # memory traffic per tile (elements, not bytes)

    def offchip_elements_per_tile(self, readonly_components: int = 0) -> Tuple[int, int]:
        """(elements read, elements written) from/to off-chip memory per tile.

        The cone cascade keeps every intermediate level on chip; off-chip
        traffic is the iteration-0 input region (state components plus any
        read-only input fields, both needed over the full halo) and the final
        output window.
        """
        input_side = self.input_region_side()
        read = input_side * input_side * (self.components + readonly_components)
        written = self.window_side * self.window_side * self.components
        return read, written

    def onchip_elements(self) -> int:
        """Maximum number of elements alive on chip while processing a tile.

        Bounded by the largest inter-level buffer: the input region of the
        first level plus the output region it produces.
        """
        best = 0
        for index in range(len(self.level_depths)):
            produced_side = self.region_side_after_level(index)
            consumed_side = produced_side + 2 * self.radius * self.level_depths[index]
            total = (produced_side ** 2 + consumed_side ** 2) * self.components
            best = max(best, total)
        return best

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (depth keys become strings)."""
        return {
            "kernel_name": self.kernel_name,
            "window_side": self.window_side,
            "level_depths": list(self.level_depths),
            "cone_counts": {str(d): c for d, c in self.cone_counts.items()},
            "radius": self.radius,
            "components": self.components,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConeArchitecture":
        return cls(
            kernel_name=data["kernel_name"],
            window_side=data["window_side"],
            level_depths=list(data["level_depths"]),
            cone_counts={int(d): c for d, c in data["cone_counts"].items()},
            radius=data["radius"],
            components=data.get("components", 1),
        )

    def label(self) -> str:
        """Identifier in the style of the paper's tables (e.g. ``blur_16_d5x2``)."""
        depth_part = "x".join(str(d) for d in self.level_depths)
        return (f"{self.kernel_name}_{self.window_side * self.window_side}"
                f"_d{depth_part}")

    def describe(self) -> str:
        counts = ", ".join(f"{self.cone_counts[d]}x depth-{d}"
                           for d in self.distinct_depths)
        return (f"{self.label()}: window {self.window_side}x{self.window_side}, "
                f"levels {self.level_depths} ({self.total_iterations} iterations), "
                f"cones [{counts}]")
