"""Enumeration of the architecture solution space.

The design space the paper explores is the cross product of output window
sizes, level splittings of the iteration count, and cone instance counts.
For the experiments of Section 4 the splittings are *uniform*: a single cone
depth d is used for all levels, plus (when d does not divide the iteration
count) one extra level of smaller depth covering the remaining iterations —
this is exactly the effect discussed around Figure 7, where depths that do
not divide the iteration count waste area on the remainder cone.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, namedtuple
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive
from repro.architecture.template import ConeArchitecture


def single_depth_split(total_iterations: int, depth: int) -> List[int]:
    """Uniform splitting: as many levels of ``depth`` as fit, plus a remainder level."""
    check_positive("total_iterations", total_iterations)
    check_positive("depth", depth)
    if depth > total_iterations:
        return [total_iterations]
    levels = [depth] * (total_iterations // depth)
    remainder = total_iterations % depth
    if remainder:
        levels.append(remainder)
    return levels


@lru_cache(maxsize=512)
def _uniform_splits(total_iterations: int,
                    limit: int) -> Tuple[Tuple[int, ...], ...]:
    """Memoized, deduplicated uniform splittings (shared value-typed form).

    Exploration hot path: every :class:`ArchitectureSpace` method needs the
    splits, and sessions rebuild spaces for each workload of a sweep — the
    cache turns the repeated O(depth²) list scans into one lookup per
    distinct ``(iterations, max depth)`` pair.
    """
    splits: List[Tuple[int, ...]] = []
    seen = set()
    for depth in range(1, limit + 1):
        split = tuple(single_depth_split(total_iterations, depth))
        if split not in seen:
            seen.add(split)
            splits.append(split)
    return tuple(splits)


@lru_cache(maxsize=64)
def _all_compositions(total_iterations: int,
                      limit: int) -> Tuple[Tuple[int, ...], ...]:
    """Memoized full composition enumeration (the ablation space)."""
    results: List[Tuple[int, ...]] = []

    def compose(remaining: int, current: List[int]) -> None:
        if remaining == 0:
            results.append(tuple(current))
            return
        for depth in range(1, min(limit, remaining) + 1):
            current.append(depth)
            compose(remaining - depth, current)
            current.pop()

    compose(total_iterations, [])
    return tuple(results)


def _cached_splits(total_iterations: int, max_depth: Optional[int],
                   uniform_only: bool) -> Tuple[Tuple[int, ...], ...]:
    check_positive("total_iterations", total_iterations)
    limit = max_depth if max_depth is not None else total_iterations
    limit = min(limit, total_iterations)
    if uniform_only:
        return _uniform_splits(total_iterations, limit)
    return _all_compositions(total_iterations, limit)


@lru_cache(maxsize=512)
def _count_compositions(total_iterations: int, limit: int) -> int:
    """Number of compositions of ``total_iterations`` into parts <= ``limit``
    (counted by dynamic programming, never materialized)."""
    counts = [0] * (total_iterations + 1)
    counts[0] = 1
    for value in range(1, total_iterations + 1):
        counts[value] = sum(counts[value - part]
                            for part in range(1, min(limit, value) + 1))
    return counts[total_iterations]


def count_level_splits(total_iterations: int,
                       max_depth: Optional[int] = None,
                       uniform_only: bool = True) -> int:
    """``len(enumerate_level_splits(...))`` without materializing the splits.

    Uniform splittings are counted in O(1): for every depth ``d <= n`` the
    splitting produced by :func:`single_depth_split` starts with ``d``
    itself, so the candidate depths ``1..min(max_depth, n)`` yield pairwise
    distinct splittings and the deduplicated count is exactly that limit.
    The full composition space is counted by a memoized DP.  Streaming
    consumers (:mod:`repro.dse.stream`) use this to size million-candidate
    spaces — auto-select thresholds and pruned-fraction denominators —
    before (or instead of) enumerating anything.
    """
    check_positive("total_iterations", total_iterations)
    limit = max_depth if max_depth is not None else total_iterations
    limit = min(limit, total_iterations)
    if limit <= 0:
        return 0
    if uniform_only:
        return limit
    return _count_compositions(total_iterations, limit)


def enumerate_level_splits(total_iterations: int,
                           max_depth: Optional[int] = None,
                           uniform_only: bool = True) -> List[List[int]]:
    """Enumerate level splittings of the iteration count.

    With ``uniform_only`` (the default, matching the paper's experiments) one
    splitting per candidate depth is produced.  With ``uniform_only=False``
    every composition of the iteration count into depths bounded by
    ``max_depth`` is generated (useful for ablations; the space grows quickly).

    Returns fresh lists; the memoized backing tuples stay shared internally.
    """
    return [list(split)
            for split in _cached_splits(total_iterations, max_depth,
                                        uniform_only)]


@dataclass(frozen=True)
class ArchitectureTable:
    """Columnar (NumPy) materialization of one enumerated architecture space.

    Every candidate architecture is one row; the parallel arrays hold the
    row's output window side, its level-split index (into :attr:`splits`),
    the primary-cone instance count, and the primary (deepest) cone depth.
    Row order is exactly :meth:`ArchitectureSpace.architecture_groups`
    order — window outermost, then split, then instance count — so row
    ``(w_idx * len(splits) + s_idx) * len(counts) + c_idx`` is the same
    candidate the scalar iteration visits at that position, and the rows of
    one (window, split) group are contiguous.

    The arrays are read-only and shared: the enumeration depends only on
    the shape knobs (iteration count, depth bound, windows, instance
    bound), so sweeps across devices, data formats, frame sizes, and even
    kernels evaluate their scenarios against one cached table instead of
    re-enumerating per workload (see :func:`space_table`).
    """

    window_sides: Tuple[int, ...]
    splits: Tuple[Tuple[int, ...], ...]
    counts: Tuple[int, ...]
    window: np.ndarray
    split_index: np.ndarray
    primary_count: np.ndarray
    primary_depth: np.ndarray

    @property
    def rows(self) -> int:
        """Total number of candidate architectures in the table."""
        return int(self.window.size)

    def group_rows(self, window_index: int, split_index: int) -> range:
        """The contiguous row range of one (window, split) group."""
        base = ((window_index * len(self.splits)) + split_index) * len(self.counts)
        return range(base, base + len(self.counts))


#: Entries the process-wide table cache may hold at once.  A table over a
#: million-candidate space is tens of MB of column arrays, so the bound is
#: deliberately small: a sweep re-costs one shared table thousands of times
#: (hits), while distinct shape-knob sets beyond the bound evict the least
#: recently used table instead of pinning old spaces in RAM.
TABLE_CACHE_CAPACITY = 8

_CacheInfo = namedtuple("CacheInfo", ("hits", "misses", "maxsize", "currsize"))


class _LruTableCache:
    """Thread-safe bounded LRU with ``functools.lru_cache``'s stat surface.

    Unlike ``lru_cache`` it counts evictions, making cache-thrash on
    large-space runs observable through
    :func:`repro.dse.engine.shared_table_stats`.
    """

    def __init__(self, builder, maxsize: int) -> None:
        self._builder = builder
        self._maxsize = maxsize
        self._entries: "OrderedDict[Tuple, ArchitectureTable]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __call__(self, *key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
        built = self._builder(*key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # a racing builder won; share its table
                self._entries.move_to_end(key)
                return entry
            self._entries[key] = built
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
        return built

    def cache_info(self) -> _CacheInfo:
        with self._lock:
            return _CacheInfo(self._hits, self._misses, self._maxsize,
                              len(self._entries))

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def cache_clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0


def _build_space_table(total_iterations: int, max_depth: Optional[int],
                       uniform_only: bool,
                       window_sides: Tuple[int, ...],
                       max_cones_per_depth: int) -> ArchitectureTable:
    splits = _cached_splits(total_iterations, max_depth, uniform_only)
    counts = tuple(range(1, max_cones_per_depth + 1))
    n_splits, n_counts = len(splits), len(counts)
    window = np.repeat(np.asarray(window_sides, dtype=np.int64),
                       n_splits * n_counts)
    split_index = np.tile(np.repeat(np.arange(n_splits, dtype=np.int64),
                                    n_counts), len(window_sides))
    primary_count = np.tile(np.asarray(counts, dtype=np.int64),
                            len(window_sides) * n_splits)
    primaries = np.asarray([max(split) for split in splits], dtype=np.int64)
    primary_depth = (primaries[split_index] if n_splits
                     else np.empty(0, dtype=np.int64))
    columns = ArchitectureTable(window_sides=window_sides, splits=splits,
                                counts=counts, window=window,
                                split_index=split_index,
                                primary_count=primary_count,
                                primary_depth=primary_depth)
    for array in (window, split_index, primary_count, primary_depth):
        array.setflags(write=False)
    return columns


_space_table_cached = _LruTableCache(_build_space_table,
                                     maxsize=TABLE_CACHE_CAPACITY)


def space_table(space: "ArchitectureSpace") -> ArchitectureTable:
    """The (cached, shared) columnar table of a space's candidate set.

    Keyed by the shape knobs only — kernel identity, radius, and components
    affect how rows are *materialized* into :class:`ConeArchitecture`
    objects (and how they are costed), never which rows exist — so one
    table serves every device/format/frame scenario of a sweep.
    """
    return _space_table_cached(space.total_iterations, space.max_depth,
                               space.uniform_levels_only,
                               tuple(space.window_sides),
                               space.max_cones_per_depth)


@dataclass
class ArchitectureSpace:
    """The set of candidate architectures for one kernel and iteration count."""

    kernel_name: str
    total_iterations: int
    radius: int
    components: int = 1
    window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9)
    max_depth: Optional[int] = 5
    max_cones_per_depth: int = 16
    uniform_levels_only: bool = True

    def _splits(self) -> Tuple[Tuple[int, ...], ...]:
        """The (memoized, shared) level splittings of the space."""
        return _cached_splits(self.total_iterations, self.max_depth,
                              self.uniform_levels_only)

    def level_splits(self) -> List[List[int]]:
        return [list(split) for split in self._splits()]

    def distinct_shapes(self) -> List[Tuple[int, int]]:
        """Every (window_side, depth) cone module the space may need."""
        depths = {depth for split in self._splits() for depth in split}
        return sorted((window, depth)
                      for window in set(self.window_sides)
                      for depth in depths)

    def architecture_groups(self,
                            cone_count_choices: Optional[Sequence[int]] = None
                            ) -> Iterator[Tuple[int, List[int],
                                                List[ConeArchitecture]]]:
        """Yield ``(window, split, architectures)`` per (window, splitting).

        The architectures of one group differ only in the instance count of
        the primary (deepest) cone — they share cone shapes, per-depth areas,
        and cone-performance tables, so per-point consumers (the explorer's
        estimation loop) hoist that work to the group level instead of
        redoing it ``max_cones_per_depth`` times.
        """
        counts = tuple(cone_count_choices
                       or range(1, self.max_cones_per_depth + 1))
        split_meta = []
        for split in self._splits():
            depths = sorted(set(split))
            split_meta.append((split, depths, depths[-1]))
        for window in self.window_sides:
            for split, depths, primary in split_meta:
                group = []
                for count in counts:
                    cone_counts: Dict[int, int] = {d: 1 for d in depths}
                    cone_counts[primary] = count
                    group.append(ConeArchitecture(
                        kernel_name=self.kernel_name,
                        window_side=window,
                        level_depths=list(split),
                        cone_counts=cone_counts,
                        radius=self.radius,
                        components=self.components,
                    ))
                yield window, list(split), group

    def table(self) -> ArchitectureTable:
        """Columnar emission path: the cached :class:`ArchitectureTable` table.

        The scalar :meth:`architecture_groups` iteration and this table
        enumerate the same candidates in the same order; the columnar
        engine (:mod:`repro.dse.engine`) evaluates the table with array
        arithmetic and materializes :class:`ConeArchitecture` rows on
        demand via :meth:`materialize_row_parts`.
        """
        return space_table(self)

    def materialize_row_parts(self, window: int, split: Sequence[int],
                              primary_count: int) -> ConeArchitecture:
        """Materialize one table row as a :class:`ConeArchitecture`.

        Trusted fast path: enumeration guarantees validity, so the
        per-instance feasibility re-check is skipped.
        """
        depths = sorted(set(split))
        cone_counts = {depth: 1 for depth in depths}
        cone_counts[depths[-1]] = primary_count
        return ConeArchitecture.from_trusted_parts(
            kernel_name=self.kernel_name, window_side=window,
            level_depths=list(split), cone_counts=cone_counts,
            radius=self.radius, components=self.components)

    def architectures(self,
                      cone_count_choices: Optional[Sequence[int]] = None
                      ) -> Iterator[ConeArchitecture]:
        """Yield every candidate architecture in the space.

        ``cone_count_choices`` restricts the number of instances of the
        *primary* (deepest) cone; remainder depths always get one instance,
        matching how the paper's tables scale the ``core_num`` column.
        """
        for _window, _split, group in self.architecture_groups(
                cone_count_choices):
            yield from group

    def size(self, cone_count_choices: Optional[Sequence[int]] = None) -> int:
        # mirror architecture_groups(): a falsy choices value means the full
        # 1..max_cones_per_depth range, so size() always equals
        # len(list(architectures(...))).  The split factor comes from
        # count_level_splits, so sizing a huge space (the streaming
        # engine's auto-select threshold, pruned-fraction denominators)
        # never materializes a single splitting.
        n_counts = (len(tuple(cone_count_choices)) if cone_count_choices
                    else self.max_cones_per_depth)
        return (count_level_splits(self.total_iterations, self.max_depth,
                                   self.uniform_levels_only)
                * len(tuple(self.window_sides)) * n_counts)


def enumerate_architectures(kernel_name: str, total_iterations: int, radius: int,
                            components: int = 1,
                            window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
                            max_depth: Optional[int] = 5,
                            max_cones_per_depth: int = 16) -> List[ConeArchitecture]:
    """Convenience wrapper returning the full candidate list."""
    space = ArchitectureSpace(
        kernel_name=kernel_name,
        total_iterations=total_iterations,
        radius=radius,
        components=components,
        window_sides=window_sides,
        max_depth=max_depth,
        max_cones_per_depth=max_cones_per_depth,
    )
    return list(space.architectures())
