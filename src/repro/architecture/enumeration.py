"""Enumeration of the architecture solution space.

The design space the paper explores is the cross product of output window
sizes, level splittings of the iteration count, and cone instance counts.
For the experiments of Section 4 the splittings are *uniform*: a single cone
depth d is used for all levels, plus (when d does not divide the iteration
count) one extra level of smaller depth covering the remaining iterations —
this is exactly the effect discussed around Figure 7, where depths that do
not divide the iteration count waste area on the remainder cone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.utils.validation import check_positive
from repro.architecture.template import ConeArchitecture


def single_depth_split(total_iterations: int, depth: int) -> List[int]:
    """Uniform splitting: as many levels of ``depth`` as fit, plus a remainder level."""
    check_positive("total_iterations", total_iterations)
    check_positive("depth", depth)
    if depth > total_iterations:
        return [total_iterations]
    levels = [depth] * (total_iterations // depth)
    remainder = total_iterations % depth
    if remainder:
        levels.append(remainder)
    return levels


@lru_cache(maxsize=512)
def _uniform_splits(total_iterations: int,
                    limit: int) -> Tuple[Tuple[int, ...], ...]:
    """Memoized, deduplicated uniform splittings (shared value-typed form).

    Exploration hot path: every :class:`ArchitectureSpace` method needs the
    splits, and sessions rebuild spaces for each workload of a sweep — the
    cache turns the repeated O(depth²) list scans into one lookup per
    distinct ``(iterations, max depth)`` pair.
    """
    splits: List[Tuple[int, ...]] = []
    seen = set()
    for depth in range(1, limit + 1):
        split = tuple(single_depth_split(total_iterations, depth))
        if split not in seen:
            seen.add(split)
            splits.append(split)
    return tuple(splits)


@lru_cache(maxsize=64)
def _all_compositions(total_iterations: int,
                      limit: int) -> Tuple[Tuple[int, ...], ...]:
    """Memoized full composition enumeration (the ablation space)."""
    results: List[Tuple[int, ...]] = []

    def compose(remaining: int, current: List[int]) -> None:
        if remaining == 0:
            results.append(tuple(current))
            return
        for depth in range(1, min(limit, remaining) + 1):
            current.append(depth)
            compose(remaining - depth, current)
            current.pop()

    compose(total_iterations, [])
    return tuple(results)


def _cached_splits(total_iterations: int, max_depth: Optional[int],
                   uniform_only: bool) -> Tuple[Tuple[int, ...], ...]:
    check_positive("total_iterations", total_iterations)
    limit = max_depth if max_depth is not None else total_iterations
    limit = min(limit, total_iterations)
    if uniform_only:
        return _uniform_splits(total_iterations, limit)
    return _all_compositions(total_iterations, limit)


def enumerate_level_splits(total_iterations: int,
                           max_depth: Optional[int] = None,
                           uniform_only: bool = True) -> List[List[int]]:
    """Enumerate level splittings of the iteration count.

    With ``uniform_only`` (the default, matching the paper's experiments) one
    splitting per candidate depth is produced.  With ``uniform_only=False``
    every composition of the iteration count into depths bounded by
    ``max_depth`` is generated (useful for ablations; the space grows quickly).

    Returns fresh lists; the memoized backing tuples stay shared internally.
    """
    return [list(split)
            for split in _cached_splits(total_iterations, max_depth,
                                        uniform_only)]


@dataclass
class ArchitectureSpace:
    """The set of candidate architectures for one kernel and iteration count."""

    kernel_name: str
    total_iterations: int
    radius: int
    components: int = 1
    window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9)
    max_depth: Optional[int] = 5
    max_cones_per_depth: int = 16
    uniform_levels_only: bool = True

    def _splits(self) -> Tuple[Tuple[int, ...], ...]:
        """The (memoized, shared) level splittings of the space."""
        return _cached_splits(self.total_iterations, self.max_depth,
                              self.uniform_levels_only)

    def level_splits(self) -> List[List[int]]:
        return [list(split) for split in self._splits()]

    def distinct_shapes(self) -> List[Tuple[int, int]]:
        """Every (window_side, depth) cone module the space may need."""
        depths = {depth for split in self._splits() for depth in split}
        return sorted((window, depth)
                      for window in set(self.window_sides)
                      for depth in depths)

    def architecture_groups(self,
                            cone_count_choices: Optional[Sequence[int]] = None
                            ) -> Iterator[Tuple[int, List[int],
                                                List[ConeArchitecture]]]:
        """Yield ``(window, split, architectures)`` per (window, splitting).

        The architectures of one group differ only in the instance count of
        the primary (deepest) cone — they share cone shapes, per-depth areas,
        and cone-performance tables, so per-point consumers (the explorer's
        estimation loop) hoist that work to the group level instead of
        redoing it ``max_cones_per_depth`` times.
        """
        counts = tuple(cone_count_choices
                       or range(1, self.max_cones_per_depth + 1))
        split_meta = []
        for split in self._splits():
            depths = sorted(set(split))
            split_meta.append((split, depths, depths[-1]))
        for window in self.window_sides:
            for split, depths, primary in split_meta:
                group = []
                for count in counts:
                    cone_counts: Dict[int, int] = {d: 1 for d in depths}
                    cone_counts[primary] = count
                    group.append(ConeArchitecture(
                        kernel_name=self.kernel_name,
                        window_side=window,
                        level_depths=list(split),
                        cone_counts=cone_counts,
                        radius=self.radius,
                        components=self.components,
                    ))
                yield window, list(split), group

    def architectures(self,
                      cone_count_choices: Optional[Sequence[int]] = None
                      ) -> Iterator[ConeArchitecture]:
        """Yield every candidate architecture in the space.

        ``cone_count_choices`` restricts the number of instances of the
        *primary* (deepest) cone; remainder depths always get one instance,
        matching how the paper's tables scale the ``core_num`` column.
        """
        for _window, _split, group in self.architecture_groups(
                cone_count_choices):
            yield from group

    def size(self, cone_count_choices: Optional[Sequence[int]] = None) -> int:
        # mirror architecture_groups(): a falsy choices value means the full
        # 1..max_cones_per_depth range, so size() always equals
        # len(list(architectures(...)))
        counts = tuple(cone_count_choices
                       or range(1, self.max_cones_per_depth + 1))
        return (len(self._splits()) * len(tuple(self.window_sides))
                * len(counts))


def enumerate_architectures(kernel_name: str, total_iterations: int, radius: int,
                            components: int = 1,
                            window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
                            max_depth: Optional[int] = 5,
                            max_cones_per_depth: int = 16) -> List[ConeArchitecture]:
    """Convenience wrapper returning the full candidate list."""
    space = ArchitectureSpace(
        kernel_name=kernel_name,
        total_iterations=total_iterations,
        radius=radius,
        components=components,
        window_sides=window_sides,
        max_depth=max_depth,
        max_cones_per_depth=max_cones_per_depth,
    )
    return list(space.architectures())
