"""Enumeration of the architecture solution space.

The design space the paper explores is the cross product of output window
sizes, level splittings of the iteration count, and cone instance counts.
For the experiments of Section 4 the splittings are *uniform*: a single cone
depth d is used for all levels, plus (when d does not divide the iteration
count) one extra level of smaller depth covering the remaining iterations —
this is exactly the effect discussed around Figure 7, where depths that do
not divide the iteration count waste area on the remainder cone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.utils.validation import check_positive
from repro.architecture.template import ConeArchitecture


def single_depth_split(total_iterations: int, depth: int) -> List[int]:
    """Uniform splitting: as many levels of ``depth`` as fit, plus a remainder level."""
    check_positive("total_iterations", total_iterations)
    check_positive("depth", depth)
    if depth > total_iterations:
        return [total_iterations]
    levels = [depth] * (total_iterations // depth)
    remainder = total_iterations % depth
    if remainder:
        levels.append(remainder)
    return levels


def enumerate_level_splits(total_iterations: int,
                           max_depth: Optional[int] = None,
                           uniform_only: bool = True) -> List[List[int]]:
    """Enumerate level splittings of the iteration count.

    With ``uniform_only`` (the default, matching the paper's experiments) one
    splitting per candidate depth is produced.  With ``uniform_only=False``
    every composition of the iteration count into depths bounded by
    ``max_depth`` is generated (useful for ablations; the space grows quickly).
    """
    check_positive("total_iterations", total_iterations)
    limit = max_depth if max_depth is not None else total_iterations
    limit = min(limit, total_iterations)

    if uniform_only:
        splits = []
        for depth in range(1, limit + 1):
            split = single_depth_split(total_iterations, depth)
            if split not in splits:
                splits.append(split)
        return splits

    results: List[List[int]] = []

    def compose(remaining: int, current: List[int]) -> None:
        if remaining == 0:
            results.append(list(current))
            return
        for depth in range(1, min(limit, remaining) + 1):
            current.append(depth)
            compose(remaining - depth, current)
            current.pop()

    compose(total_iterations, [])
    return results


@dataclass
class ArchitectureSpace:
    """The set of candidate architectures for one kernel and iteration count."""

    kernel_name: str
    total_iterations: int
    radius: int
    components: int = 1
    window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9)
    max_depth: Optional[int] = 5
    max_cones_per_depth: int = 16
    uniform_levels_only: bool = True

    def level_splits(self) -> List[List[int]]:
        return enumerate_level_splits(self.total_iterations, self.max_depth,
                                      self.uniform_levels_only)

    def distinct_shapes(self) -> List[Tuple[int, int]]:
        """Every (window_side, depth) cone module the space may need."""
        shapes = set()
        for window in self.window_sides:
            for split in self.level_splits():
                for depth in set(split):
                    shapes.add((window, depth))
        return sorted(shapes)

    def architectures(self,
                      cone_count_choices: Optional[Sequence[int]] = None
                      ) -> Iterator[ConeArchitecture]:
        """Yield every candidate architecture in the space.

        ``cone_count_choices`` restricts the number of instances of the
        *primary* (deepest) cone; remainder depths always get one instance,
        matching how the paper's tables scale the ``core_num`` column.
        """
        counts = cone_count_choices or range(1, self.max_cones_per_depth + 1)
        for window in self.window_sides:
            for split in self.level_splits():
                depths = sorted(set(split))
                primary = max(depths)
                for count in counts:
                    cone_counts: Dict[int, int] = {d: 1 for d in depths}
                    cone_counts[primary] = count
                    yield ConeArchitecture(
                        kernel_name=self.kernel_name,
                        window_side=window,
                        level_depths=list(split),
                        cone_counts=cone_counts,
                        radius=self.radius,
                        components=self.components,
                    )

    def size(self, cone_count_choices: Optional[Sequence[int]] = None) -> int:
        counts = cone_count_choices or range(1, self.max_cones_per_depth + 1)
        return len(list(self.level_splits())) * len(list(self.window_sides)) * len(list(counts))


def enumerate_architectures(kernel_name: str, total_iterations: int, radius: int,
                            components: int = 1,
                            window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
                            max_depth: Optional[int] = 5,
                            max_cones_per_depth: int = 16) -> List[ConeArchitecture]:
    """Convenience wrapper returning the full candidate list."""
    space = ArchitectureSpace(
        kernel_name=kernel_name,
        total_iterations=total_iterations,
        radius=radius,
        components=components,
        window_sides=window_sides,
        max_depth=max_depth,
        max_cones_per_depth=max_cones_per_depth,
    )
    return list(space.architectures())
