"""Cone-based architecture template (Section 3.1 of the paper).

An architecture instance is fully characterised by the output window size of
its cones, the way the total iteration count is split into levels of given
depths, and how many physical cone instances of each depth are deployed on
the device.
"""

from repro.architecture.cone import ConeShape, ConeGeometry
from repro.architecture.template import (
    LevelSpec,
    ConeArchitecture,
    FeasibilityError,
)
from repro.architecture.enumeration import (
    enumerate_level_splits,
    enumerate_architectures,
    single_depth_split,
    ArchitectureSpace,
)

__all__ = [
    "ConeShape",
    "ConeGeometry",
    "LevelSpec",
    "ConeArchitecture",
    "FeasibilityError",
    "enumerate_level_splits",
    "enumerate_architectures",
    "single_depth_split",
    "ArchitectureSpace",
]
