"""Prometheus-style text rendering of the service/fleet counters.

No new dependency, no new bookkeeping: :func:`render_prometheus` walks the
JSON-ready ``stats()`` document a server (or router) already maintains —
``SessionStats``, the queue/scheduler counters, store counters — and emits
every numeric leaf in the Prometheus text exposition format (version
0.0.4)::

    # TYPE repro_queue_pending gauge
    repro_queue_pending 3
    # TYPE repro_session_synthesis_runs counter
    repro_session_synthesis_runs 42

Leaves are *typed*: a leaf whose name is in :data:`COUNTER_LEAVES` — the
monotone lifetime counters of every layer (submissions, sheds, synthesis
runs, store writes, routed jobs, ...) — renders as ``counter``; anything
else numeric (depths, rates, uptimes, capacities) renders as ``gauge``.
Prometheus consumers need the distinction: ``rate()``/``increase()`` are
only sound over counters, and exposing a counter as a gauge (the pre-0.10
behavior) silently breaks them across restarts.

A :class:`repro.obs.metrics.MetricsRegistry` can additionally be merged in
(``registry=``): its counters/gauges render alongside the walked leaves
and its histograms emit the full ``_bucket{le="..."}`` / ``_sum`` /
``_count`` family — queue-wait, stage-latency, and chunk-fold latency
distributions ride the same ``GET /metrics`` scrape.

Nested mappings flatten with ``_`` (``{"queue": {"pending": 3}}`` becomes
``repro_queue_pending``); booleans render as ``0``/``1``; strings, nulls,
and lists are skipped (they are labels, not samples).  Both the worker
(:class:`~repro.service.server.ReproServer`) and the fleet router
(:class:`~repro.fleet.router.FleetRouter`) serve the result on
``GET /metrics``.
"""

from __future__ import annotations

import math
import re
from typing import Any, List, Mapping, Optional

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Leaf keys of the ``stats()`` documents whose values only ever grow —
#: lifetime totals, never levels.  Classified by the *leaf* name (the last
#: path component), so ``queue.submitted`` and ``aggregate.submitted``
#: both type as counters while ``queue.pending`` stays a gauge.
COUNTER_LEAVES = frozenset({
    # queue lifecycle totals
    "submitted", "coalesced", "completed", "failed", "cancelled",
    "timed_out", "shed",
    # scheduler dispatch totals
    "batches", "batched_dispatches", "jobs_completed", "jobs_failed",
    # session totals (work done and cache traffic)
    "workloads_run", "workloads_failed", "synthesis_runs",
    "characterization_cache_hits", "characterization_cache_misses",
    "store_disk_hits", "store_disk_misses", "store_writes",
    "tool_runtime_spent_s", "tool_runtime_avoided_s", "workload_time_s",
    # store / shared-table / stream-cache traffic
    "hits", "misses", "writes", "corrupt", "evictions",
    "runs", "parallel_runs", "chunks_materialized",
    "duplicate_chunk_materializations", "throughput_pruned_rows",
    # fleet router / admission / membership totals
    "routed", "failovers", "replays", "done",
    "admitted", "denied", "deaths", "revivals",
    # trace-store accounting
    "spans_added", "traces_evicted", "spans_dropped",
})

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(*parts: str) -> str:
    """Join path components into a legal Prometheus metric name."""
    joined = "_".join(part for part in parts if part)
    name = _NAME_SANITIZER.sub("_", joined)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _leaf_type(key: str) -> str:
    return "counter" if key in COUNTER_LEAVES else "gauge"


def _walk(prefix: str, document: Mapping[str, Any],
          samples: List[str]) -> None:
    for key in sorted(document):
        value = document[key]
        name = _metric_name(prefix, str(key))
        if isinstance(value, Mapping):
            _walk(name, value, samples)
        elif isinstance(value, bool):
            samples.append(f"# TYPE {name} gauge\n{name} {int(value)}")
        elif isinstance(value, (int, float)):
            if isinstance(value, float) and not math.isfinite(value):
                continue  # NaN/inf samples poison scrapes; drop them
            kind = _leaf_type(str(key))
            samples.append(f"# TYPE {name} {kind}\n{name} {value}")
        # strings, None, lists: identity/labels, not numeric samples


def _format_le(bound: float) -> str:
    """Render a bucket bound the way Prometheus clients expect."""
    if math.isinf(bound):
        return "+Inf"
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def _render_registry(snapshot: Mapping[str, Mapping[str, Any]],
                     samples: List[str]) -> None:
    """Emit a :meth:`MetricsRegistry.snapshot` as exposition families."""
    for name in sorted(snapshot):
        family = snapshot[name]
        metric = _metric_name(name)
        kind = family["type"]
        if kind == "histogram":
            lines = [f"# TYPE {metric} histogram"]
            for bound, count in family["buckets"]:
                lines.append(
                    f'{metric}_bucket{{le="{_format_le(bound)}"}} {count}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {family["count"]}')
            lines.append(f"{metric}_sum {family['sum']}")
            lines.append(f"{metric}_count {family['count']}")
            samples.append("\n".join(lines))
        else:
            value = family["value"]
            if isinstance(value, float) and not math.isfinite(value):
                continue
            samples.append(f"# TYPE {metric} {kind}\n{metric} {value}")


def render_prometheus(stats: Mapping[str, Any],
                      prefix: str = "repro",
                      registry: Optional[Any] = None) -> str:
    """Flatten a ``stats()`` document into Prometheus text format.

    ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`) merges its
    typed families — histograms included — after the walked leaves; its
    metric names are absolute (already ``repro_...``-prefixed), not nested
    under ``prefix``.  Deterministic: keys are emitted in sorted order at
    every nesting level, so two scrapes of identical counters are
    byte-identical.
    """
    samples: List[str] = []
    _walk(prefix, stats, samples)
    if registry is not None:
        _render_registry(registry.snapshot(), samples)
    return "\n".join(samples) + "\n"
