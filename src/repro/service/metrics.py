"""Prometheus-style text rendering of the service/fleet counters.

No new dependency, no new bookkeeping: :func:`render_prometheus` walks the
JSON-ready ``stats()`` document a server (or router) already maintains —
``SessionStats``, the queue/scheduler counters, store counters — and emits
every numeric leaf in the Prometheus text exposition format (version
0.0.4)::

    # TYPE repro_queue_pending gauge
    repro_queue_pending 3
    # TYPE repro_session_synthesis_runs gauge
    repro_session_synthesis_runs 42

Nested mappings flatten with ``_`` (``{"queue": {"pending": 3}}`` becomes
``repro_queue_pending``); booleans render as ``0``/``1``; strings, nulls,
and lists are skipped (they are labels, not samples).  Both the worker
(:class:`~repro.service.server.ReproServer`) and the fleet router
(:class:`~repro.fleet.router.FleetRouter`) serve the result on
``GET /metrics``.
"""

from __future__ import annotations

import math
import re
from typing import Any, List, Mapping

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(*parts: str) -> str:
    """Join path components into a legal Prometheus metric name."""
    joined = "_".join(part for part in parts if part)
    name = _NAME_SANITIZER.sub("_", joined)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _walk(prefix: str, document: Mapping[str, Any],
          samples: List[str]) -> None:
    for key in sorted(document):
        value = document[key]
        name = _metric_name(prefix, str(key))
        if isinstance(value, Mapping):
            _walk(name, value, samples)
        elif isinstance(value, bool):
            samples.append(f"# TYPE {name} gauge\n{name} {int(value)}")
        elif isinstance(value, (int, float)):
            if isinstance(value, float) and not math.isfinite(value):
                continue  # NaN/inf samples poison scrapes; drop them
            samples.append(f"# TYPE {name} gauge\n{name} {value}")
        # strings, None, lists: identity/labels, not numeric samples


def render_prometheus(stats: Mapping[str, Any],
                      prefix: str = "repro") -> str:
    """Flatten a ``stats()`` document into Prometheus text format.

    Deterministic: keys are emitted in sorted order at every nesting
    level, so two scrapes of identical counters are byte-identical.
    """
    samples: List[str] = []
    _walk(prefix, stats, samples)
    return "\n".join(samples) + "\n"
