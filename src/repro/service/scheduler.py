"""The dispatcher: queue batches -> ``Session.run_many``.

One daemon thread drains the :class:`~repro.service.queue.JobQueue` and
routes each batch through the shared session:

* a batch of one is answered by :meth:`Session.run`;
* a larger batch goes through :meth:`Session.run_many` with the
  scheduler's executor strategy (any backend registered under the
  ``executor`` registry kind — resolved once, at construction, so a typo
  fails server startup instead of the first burst), which re-costs sibling
  scenarios (devices/formats/frames of one kernel family) against the
  shared columnar :class:`~repro.architecture.enumeration
  .ArchitectureTable` instead of running them serially.

Failure attribution: ``run_many`` completes the whole batch before
re-raising the earliest failure, so on a batch error the scheduler replays
each member through ``Session.run`` — completed members are in-memory
cache hits (no recompute), failing members raise individually — and every
job ends in its own ``done``/``failed`` state.  One poisoned workload
never takes its batch siblings down.
"""

from __future__ import annotations

import threading
import time
from typing import Deque, Dict, List, Optional, Union

from collections import deque

from repro.api.executor import resolve_strategy, validate_max_workers
from repro.api.session import Session
from repro.obs import trace as obs_trace
from repro.service.jobs import Job
from repro.service.queue import JobQueue

#: How many recent batch sizes the stats ring buffer remembers.
BATCH_SIZE_HISTORY = 256


class Scheduler:
    """Owns the dispatcher thread between a queue and a session."""

    def __init__(self, session: Session, queue: JobQueue,
                 executor: Union[str, object, None] = None,
                 max_workers: Optional[int] = None,
                 max_batch: int = 16,
                 batch_window_s: float = 0.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1 (got {max_batch})")
        validate_max_workers(max_workers)
        self._session = session
        self._queue = queue
        self._strategy = resolve_strategy(executor)
        # streamed explorations dispatched by this scheduler fan chunk
        # shards through the same strategy as the batch itself, unless the
        # session was already configured with its own stream executor
        if getattr(session, "stream_executor", None) is None:
            session.stream_executor = self._strategy
        self._max_workers = max_workers
        self._max_batch = max_batch
        self._batch_window_s = batch_window_s
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._batches = 0
        self._batched_dispatches = 0  # batches with more than one job
        self._jobs_completed = 0
        self._jobs_failed = 0
        self._batch_sizes: Deque[int] = deque(maxlen=BATCH_SIZE_HISTORY)
        self._largest_batch = 0

    @property
    def executor_name(self) -> str:
        return getattr(self._strategy, "name", type(self._strategy).__name__)

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "Scheduler":
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="repro-scheduler", daemon=True)
                self._thread.start()
        return self

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> None:
        """Close the queue and wait for the dispatcher to exit.

        With ``drain`` (the default) every already-queued job is still
        executed; without it the queued jobs are cancelled (their waiters
        are released with :class:`JobCancelledError`) and only the batch
        already in flight finishes.
        """
        self._queue.close(cancel_pending=not drain)
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    # ------------------------------------------------------------------ #
    # dispatch loop

    def _loop(self) -> None:
        while True:
            batch = self._queue.drain_batch(self._max_batch,
                                            linger_s=self._batch_window_s)
            if batch is None:
                return  # queue closed and fully drained
            if batch:
                self._dispatch(batch)

    def _dispatch(self, jobs: List[Job]) -> None:
        started = time.perf_counter()
        with self._lock:
            self._batches += 1
            self._batch_sizes.append(len(jobs))
            self._largest_batch = max(self._largest_batch, len(jobs))
            if len(jobs) > 1:
                self._batched_dispatches += 1
        for job in jobs:
            with obs_trace.adopt(job.trace_context):
                self._emit_job_event("job-started", job)
        # Partition by job class: validations run per-job through
        # Session.validate (each is one vectorized simulation — there is no
        # cross-job batching to exploit), explorations keep the
        # run/run_many batch semantics below.
        validations = [job for job in jobs if job.kind == "validate"]
        jobs = [job for job in jobs if job.kind != "validate"]
        for job in validations:
            self._run_single(job, self._session.validate)
        if not jobs:
            return
        try:
            if len(jobs) == 1:
                with obs_trace.adopt(jobs[0].trace_context):
                    with obs_trace.span("scheduler.dispatch", jobs=1):
                        results = [self._session.run(jobs[0].workload)]
            else:
                # a multi-job batch dispatches under the *first* job's
                # trace (one run_many call cannot belong to N traces);
                # every job still owns its service.job span and events
                with obs_trace.adopt(jobs[0].trace_context):
                    with obs_trace.span("scheduler.dispatch",
                                        jobs=len(jobs)):
                        results = self._session.run_many(
                            [job.workload for job in jobs],
                            max_workers=self._max_workers,
                            executor=self._strategy)
        except Exception as error:
            if len(jobs) == 1:
                # nothing to attribute: fail the lone job directly instead
                # of paying the failed pipeline a second time in a replay
                context = jobs[0].trace_context
                self._queue.fail(jobs[0], error)
                with obs_trace.adopt(context):
                    self._emit_job_event(
                        "job-failed", jobs[0],
                        elapsed_s=time.perf_counter() - started,
                        detail=str(error))
                with self._lock:
                    self._jobs_failed += 1
            else:
                self._replay_individually(jobs)
            return
        elapsed = time.perf_counter() - started
        for job, result in zip(jobs, results):
            context = job.trace_context
            self._queue.finish(job, result)
            with obs_trace.adopt(context):
                self._emit_job_event("job-finished", job,
                                     elapsed_s=elapsed / len(jobs))
        with self._lock:
            self._jobs_completed += len(jobs)

    def _run_single(self, job: Job, runner) -> None:
        """Run one job through ``runner(workload)`` with full accounting."""
        started = time.perf_counter()
        try:
            with obs_trace.adopt(job.trace_context):
                with obs_trace.span("scheduler.dispatch", jobs=1):
                    result = runner(job.workload)
        except Exception as error:
            context = job.trace_context
            self._queue.fail(job, error)
            with obs_trace.adopt(context):
                self._emit_job_event(
                    "job-failed", job,
                    elapsed_s=time.perf_counter() - started,
                    detail=str(error))
            with self._lock:
                self._jobs_failed += 1
        else:
            context = job.trace_context
            self._queue.finish(job, result)
            with obs_trace.adopt(context):
                self._emit_job_event(
                    "job-finished", job,
                    elapsed_s=time.perf_counter() - started)
            with self._lock:
                self._jobs_completed += 1

    def _replay_individually(self, jobs: List[Job]) -> None:
        """Attribute a batch failure job by job (cache-hit replays)."""
        for job in jobs:
            self._run_single(job, self._session.run)

    def _emit_job_event(self, kind: str, job: Job,
                        elapsed_s: Optional[float] = None,
                        detail: str = "") -> None:
        """Stream a job-lifecycle event through the session's progress
        protocol (same callbacks, ``job-*`` kinds, job id in the detail)."""
        self._session._emit_batch_event(
            kind, job.workload, elapsed_s=elapsed_s,
            detail=detail or job.id)

    # ------------------------------------------------------------------ #
    # introspection

    def stats_snapshot(self) -> Dict[str, object]:
        """Atomic JSON-ready view of the dispatch counters."""
        with self._lock:
            sizes = list(self._batch_sizes)
            return {
                "executor": self.executor_name,
                "max_batch": self._max_batch,
                "batch_window_s": self._batch_window_s,
                "batches": self._batches,
                "batched_dispatches": self._batched_dispatches,
                "largest_batch": self._largest_batch,
                "mean_batch_size": (sum(sizes) / len(sizes)
                                    if sizes else 0.0),
                "recent_batch_sizes": sizes,
                "jobs_completed": self._jobs_completed,
                "jobs_failed": self._jobs_failed,
            }
