"""The service client: one ergonomic surface over both transports.

``ReproClient(server)`` talks to an in-process server — a
:class:`~repro.service.server.ReproServer` or a
:class:`~repro.fleet.router.FleetRouter` — by direct method call;
``ReproClient("http://...")`` speaks the JSON endpoint with nothing
beyond :mod:`urllib`.  Either way the verbs are the same — ``submit``
returns a :class:`JobHandle`, ``handle.result()`` blocks (HTTP waits are
chunked into bounded server-side polls, so a slow exploration never pins
one connection), and unsuccessful jobs raise the same
:class:`~repro.service.jobs` error taxonomy the server raises locally.

Production traffic hygiene (both transports):

* **shed-retry with backoff** — a submission shed by a bounded queue
  (``503 + Retry-After``, :class:`QueueFullError`) is retried with capped
  exponential backoff and *deterministic, seeded* jitter, honoring the
  server's ``Retry-After`` hint as the floor of each delay; once the
  retry budget is spent the client gives up with a typed
  :class:`FleetOverloadedError` instead of a bare :mod:`urllib` error;
* **endpoint failover** — ``ReproClient(["http://a", "http://b"])``
  rotates to the next URL when the current one is unreachable, and stays
  on the working one (sticky) until it too fails.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.api.results import FlowResult, ValidationResult
from repro.api.workload import Workload
from repro.obs import trace as obs_trace
from repro.service.jobs import (
    AdmissionDeniedError,
    FleetOverloadedError,
    JobCancelledError,
    JobFailedError,
    JobTimeoutError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)

#: Server-side wait per HTTP ``/result`` poll (the client loops until its
#: own timeout; shorter chunks keep connections short-lived).
RESULT_POLL_S = 30.0

#: Default shed-retry budget: how many times a shed submission is
#: resubmitted before :class:`FleetOverloadedError`.
DEFAULT_RETRIES = 4

#: Exponential backoff of the shed-retry path: ``base * 2**attempt``
#: seconds, capped, then jittered into ``[0.5, 1.0]`` of itself.
DEFAULT_BACKOFF_BASE_S = 0.25
DEFAULT_BACKOFF_CAP_S = 4.0

#: HTTP error payload ``kind`` -> the exception re-raised client-side.
_ERROR_KINDS = {
    "UnknownJobError": UnknownJobError,
    "JobTimeoutError": JobTimeoutError,
    "JobCancelledError": JobCancelledError,
    "JobFailedError": JobFailedError,
    "QueueFullError": QueueFullError,
    "AdmissionDeniedError": AdmissionDeniedError,
    "ServiceClosedError": ServiceClosedError,
    "ValueError": ValueError,
    "TypeError": TypeError,
}


class JobHandle:
    """A submitted job as seen by one requester."""

    def __init__(self, client: "ReproClient", job_id: str,
                 coalesced: bool,
                 trace_id: Optional[str] = None) -> None:
        self._client = client
        self.id = job_id
        #: Whether this submission shared an already-in-flight computation.
        self.coalesced = coalesced
        #: Trace id of the server-side job span (``None`` when the server
        #: traces nothing); fetch the spans with ``client.trace(trace_id)``.
        self.trace_id = trace_id

    def __repr__(self) -> str:
        return (f"JobHandle({self.id!r}, "
                f"coalesced={self.coalesced})")

    def status(self) -> Dict[str, Any]:
        return self._client.status(self.id)

    def result(self, timeout: Optional[float] = None
               ) -> Union[FlowResult, ValidationResult]:
        """Wait for this job's result (raises on failure): a
        :class:`FlowResult` for ``explore`` submissions, a
        :class:`ValidationResult` for ``validate`` ones."""
        return self._client.result(self.id, timeout=timeout)

    def cancel(self) -> Dict[str, Any]:
        return self._client.cancel(self.id)


class ReproClient:
    """Submit workloads to a server or fleet router, local or remote.

    ``target`` is an in-process server-like object (anything exposing the
    job-API verbs: ``ReproServer``, ``FleetRouter``), one ``http://`` URL,
    or a sequence of URLs (failover order).  ``retries`` /
    ``backoff_base_s`` / ``backoff_cap_s`` configure the shed-retry
    policy; ``retry_jitter_seed`` seeds the jitter deterministically (two
    clients with the same seed back off identically — reproducible tests,
    and distinct seeds de-synchronize a thundering herd).
    """

    def __init__(self, target: Union[str, Sequence[str], Any],
                 request_timeout_s: float = 10.0,
                 retries: int = DEFAULT_RETRIES,
                 backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
                 backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
                 retry_jitter_seed: int = 0) -> None:
        self._server: Optional[Any] = None
        self._base_urls: List[str] = []
        self._url_index = 0
        if isinstance(target, str):
            self._base_urls = [self._check_url(target)]
        elif (isinstance(target, Sequence)
              and all(isinstance(item, str) for item in target)):
            if not target:
                raise ValueError("target URL list must not be empty")
            self._base_urls = [self._check_url(url) for url in target]
        elif hasattr(target, "submit") and hasattr(target, "result"):
            self._server = target
        else:
            raise ValueError(
                f"target must be a server object, an http(s) URL, or a "
                f"list of URLs (got {target!r})")
        if retries < 0:
            raise ValueError(f"retries must be >= 0 (got {retries})")
        #: Socket timeout of one HTTP exchange (waiting calls add the
        #: server-side wait on top).
        self.request_timeout_s = request_timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._jitter = random.Random(retry_jitter_seed)

    @staticmethod
    def _check_url(url: str) -> str:
        url = url.rstrip("/")
        if not url.startswith(("http://", "https://")):
            raise ValueError(
                f"server URL must start with http:// or https:// "
                f"(got {url!r})")
        return url

    @property
    def _base_url(self) -> str:
        """The currently-preferred endpoint (sticky across failovers)."""
        return self._base_urls[self._url_index]

    # ------------------------------------------------------------------ #
    # verbs

    def submit(self, workload: Union[Workload, Mapping[str, Any]],
               priority: Union[str, int, None] = None,
               timeout_s: Optional[float] = None,
               role: Optional[str] = None,
               job: Optional[str] = None) -> JobHandle:
        """File a workload; returns its :class:`JobHandle`.

        ``job`` selects the job class — ``explore`` (default) runs the
        full staged flow, ``validate`` runs the simulated-vs-golden
        equivalence check and yields a :class:`ValidationResult`.

        A shed submission (bounded queue full; ``503 + Retry-After``) is
        retried up to ``self.retries`` times with capped exponential
        backoff and seeded jitter, honoring the server's ``Retry-After``
        hint as the floor of each delay.  When the budget is spent the
        last shed surfaces as :class:`FleetOverloadedError`.
        ``retries=0`` disables the retry layer entirely — the raw
        :class:`QueueFullError` propagates (how the fleet router's
        internal clients run: backpressure must reach the *end* client
        untouched).  ``role`` names the requester's role for fleet
        admission control (omit it against a plain worker).
        """
        attempt = 0
        while True:
            try:
                return self._submit_once(workload, priority, timeout_s,
                                         role, job)
            except QueueFullError as shed:
                if self.retries == 0:
                    raise
                if attempt >= self.retries:
                    raise FleetOverloadedError(
                        f"submission shed {attempt + 1} time(s) and the "
                        f"retry budget ({self.retries}) is spent: {shed}"
                    ) from shed
                time.sleep(self._backoff_delay(attempt,
                                               shed.retry_after_s))
                attempt += 1

    def _backoff_delay(self, attempt: int,
                       retry_after_s: Optional[float]) -> float:
        """Capped exponential backoff, floored by the server's hint,
        jittered deterministically into ``[0.5, 1.0]`` of itself."""
        delay = self.backoff_base_s * (2 ** attempt)
        if retry_after_s is not None:
            delay = max(delay, retry_after_s)
        delay = min(delay, self.backoff_cap_s)
        return delay * (0.5 + 0.5 * self._jitter.random())

    def _submit_once(self, workload: Union[Workload, Mapping[str, Any]],
                     priority: Union[str, int, None],
                     timeout_s: Optional[float],
                     role: Optional[str],
                     job: Optional[str] = None) -> JobHandle:
        if self._server is not None:
            keywords: Dict[str, Any] = {"priority": priority,
                                        "timeout_s": timeout_s}
            if role is not None:
                keywords["role"] = role
            if job is not None:
                keywords["job"] = job
            receipt = self._server.submit(workload, **keywords)
        else:
            payload = (workload.to_dict() if isinstance(workload, Workload)
                       else dict(workload))
            body: Dict[str, Any] = {"workload": payload,
                                    "priority": priority,
                                    "timeout_s": timeout_s}
            if role is not None:
                body["role"] = role
            if job is not None:
                body["job"] = job
            receipt = self._post("/submit", body)
        return JobHandle(self, receipt["job_id"],
                         bool(receipt.get("coalesced")),
                         trace_id=receipt.get("trace_id"))

    def run(self, workload: Union[Workload, Mapping[str, Any]],
            priority: Union[str, int, None] = None,
            timeout: Optional[float] = None,
            role: Optional[str] = None) -> FlowResult:
        """``submit`` + ``result`` in one call (the blocking convenience)."""
        return self.submit(workload, priority=priority, timeout_s=timeout,
                           role=role).result(timeout=timeout)

    def status(self, job_id: str) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.status(job_id)
        return self._get(f"/status?id={job_id}")

    def result(self, job_id: str,
               timeout: Optional[float] = None
               ) -> Union[FlowResult, ValidationResult]:
        """Wait for a job and reconstruct its typed result."""
        if self._server is not None:
            return self._server.result(job_id, timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                error = JobTimeoutError(
                    f"job {job_id} not finished within the {timeout}s wait")
                error.terminal = False  # our wait expired, not the job's
                raise error
            wait_s = (RESULT_POLL_S if remaining is None
                      else min(RESULT_POLL_S, max(0.1, remaining)))
            payload = self._get(
                f"/result?id={job_id}&timeout={wait_s:.3f}",
                read_timeout=self.request_timeout_s + wait_s)
            if payload.get("pending"):
                continue  # the poll window expired; the job is in flight
            if payload.get("result_kind") == "validation":
                return ValidationResult.from_dict(payload["result"])
            return FlowResult.from_dict(payload["result"])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.cancel(job_id)
        return self._post("/cancel", {"job_id": job_id})

    def stats(self) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.stats()
        return self._get("/stats")

    def healthz(self) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.healthz()
        return self._get("/healthz")

    def metrics(self) -> str:
        """The Prometheus text of ``GET /metrics``."""
        if self._server is not None:
            return self._server.metrics_text()
        return self._get_text("/metrics")

    def trace(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """Recorded traces: the index (no id) or one trace's spans."""
        if self._server is not None:
            return self._server.trace(trace_id)
        if trace_id is None:
            return self._get("/trace")
        return self._get(f"/trace/{trace_id}")

    def register(self, info: Mapping[str, Any]) -> Dict[str, Any]:
        """The fleet registration handshake (``POST /register``)."""
        if self._server is not None:
            return self._server.register(dict(info))
        return self._post("/register", dict(info))

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Ask the server to stop (drain by default)."""
        if self._server is not None:
            self._server.initiate_shutdown(drain=drain)
            return {"ok": True, "draining": drain}
        return self._post("/shutdown", {"drain": drain})

    # ------------------------------------------------------------------ #
    # HTTP plumbing

    def _get(self, path: str,
             read_timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._exchange(path, None, read_timeout)

    def _get_text(self, path: str) -> str:
        return self._exchange(path, None, None, decode_json=False)

    def _post(self, path: str,
              payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self._exchange(path, json.dumps(payload).encode("utf-8"),
                              None)

    def _exchange(self, path: str, body: Optional[bytes],
                  read_timeout: Optional[float],
                  decode_json: bool = True) -> Any:
        """One request against the preferred URL, failing over on
        unreachable endpoints (sticky: the first URL that answers stays
        preferred until it stops answering)."""
        timeout = (self.request_timeout_s if read_timeout is None
                   else read_timeout)
        reasons: List[str] = []
        for offset in range(len(self._base_urls)):
            index = (self._url_index + offset) % len(self._base_urls)
            url = self._base_urls[index]
            headers: Dict[str, str] = {}
            if body is not None:
                headers["Content-Type"] = "application/json"
            trace_header = obs_trace.header_value()
            if trace_header is not None:
                # propagate the caller's span context across the hop so
                # the server parents its job span into the same trace
                headers[obs_trace.TRACE_HEADER] = trace_header
            request = urllib.request.Request(
                url + path, data=body,
                method="POST" if body is not None else "GET",
                headers=headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=timeout) as reply:
                    text = reply.read().decode("utf-8")
                self._url_index = index
                return json.loads(text) if decode_json else text
            except urllib.error.HTTPError as error:
                self._url_index = index  # reachable; its answer is final
                raise self._taxonomy_error(error) from None
            except urllib.error.URLError as error:
                reasons.append(f"{url}: {error.reason}")
        raise ServiceError(
            "cannot reach the repro service at any endpoint ("
            + "; ".join(reasons) + ")") from None

    @staticmethod
    def _taxonomy_error(error: urllib.error.HTTPError) -> ServiceError:
        """Rebuild the server-side exception from an HTTP error payload."""
        try:
            payload = json.loads(error.read().decode("utf-8"))
        except (ValueError, OSError):
            payload = {}
        kind = _ERROR_KINDS.get(payload.get("kind"), ServiceError)
        message = payload.get("error", f"HTTP {error.code}")
        if kind is QueueFullError:
            retry_after = payload.get("retry_after_s")
            if retry_after is None:
                header = error.headers.get("Retry-After")
                retry_after = float(header) if header else 1.0
            return QueueFullError(message, retry_after_s=float(retry_after))
        return kind(message)
