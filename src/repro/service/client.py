"""The service client: one ergonomic surface over both transports.

``ReproClient(server)`` talks to an in-process :class:`~repro.service
.server.ReproServer` by direct method call; ``ReproClient("http://...")``
speaks the JSON endpoint with nothing beyond :mod:`urllib`.  Either way
the verbs are the same — ``submit`` returns a :class:`JobHandle`,
``handle.result()`` blocks (HTTP waits are chunked into bounded
server-side polls, so a slow exploration never pins one connection), and
unsuccessful jobs raise the same :class:`~repro.service.jobs` error
taxonomy the server raises locally.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional, Union

from repro.api.results import FlowResult
from repro.api.workload import Workload
from repro.service.jobs import (
    JobCancelledError,
    JobFailedError,
    JobTimeoutError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)
from repro.service.server import ReproServer

#: Server-side wait per HTTP ``/result`` poll (the client loops until its
#: own timeout; shorter chunks keep connections short-lived).
RESULT_POLL_S = 30.0

#: HTTP error payload ``kind`` -> the exception re-raised client-side.
_ERROR_KINDS = {
    "UnknownJobError": UnknownJobError,
    "JobTimeoutError": JobTimeoutError,
    "JobCancelledError": JobCancelledError,
    "JobFailedError": JobFailedError,
    "ServiceClosedError": ServiceClosedError,
    "ValueError": ValueError,
}


class JobHandle:
    """A submitted job as seen by one requester."""

    def __init__(self, client: "ReproClient", job_id: str,
                 coalesced: bool) -> None:
        self._client = client
        self.id = job_id
        #: Whether this submission shared an already-in-flight computation.
        self.coalesced = coalesced

    def __repr__(self) -> str:
        return (f"JobHandle({self.id!r}, "
                f"coalesced={self.coalesced})")

    def status(self) -> Dict[str, Any]:
        return self._client.status(self.id)

    def result(self, timeout: Optional[float] = None) -> FlowResult:
        """Wait for this job's :class:`FlowResult` (raises on failure)."""
        return self._client.result(self.id, timeout=timeout)

    def cancel(self) -> Dict[str, Any]:
        return self._client.cancel(self.id)


class ReproClient:
    """Submit workloads to a :class:`ReproServer`, local or remote."""

    def __init__(self, target: Union[str, ReproServer],
                 request_timeout_s: float = 10.0) -> None:
        if isinstance(target, ReproServer):
            self._server: Optional[ReproServer] = target
            self._base_url: Optional[str] = None
        else:
            self._server = None
            self._base_url = target.rstrip("/")
            if not self._base_url.startswith(("http://", "https://")):
                raise ValueError(
                    f"server URL must start with http:// or https:// "
                    f"(got {target!r})")
        #: Socket timeout of one HTTP exchange (waiting calls add the
        #: server-side wait on top).
        self.request_timeout_s = request_timeout_s

    # ------------------------------------------------------------------ #
    # verbs

    def submit(self, workload: Union[Workload, Mapping[str, Any]],
               priority: Union[str, int, None] = None,
               timeout_s: Optional[float] = None) -> JobHandle:
        """File a workload for exploration; returns its :class:`JobHandle`."""
        if self._server is not None:
            receipt = self._server.submit(workload, priority=priority,
                                          timeout_s=timeout_s)
        else:
            payload = (workload.to_dict() if isinstance(workload, Workload)
                       else dict(workload))
            receipt = self._post("/submit", {"workload": payload,
                                             "priority": priority,
                                             "timeout_s": timeout_s})
        return JobHandle(self, receipt["job_id"],
                         bool(receipt.get("coalesced")))

    def run(self, workload: Union[Workload, Mapping[str, Any]],
            priority: Union[str, int, None] = None,
            timeout: Optional[float] = None) -> FlowResult:
        """``submit`` + ``result`` in one call (the blocking convenience)."""
        return self.submit(workload, priority=priority,
                           timeout_s=timeout).result(timeout=timeout)

    def status(self, job_id: str) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.status(job_id)
        return self._get(f"/status?id={job_id}")

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> FlowResult:
        """Wait for a job and reconstruct its :class:`FlowResult`."""
        if self._server is not None:
            return self._server.result(job_id, timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                raise JobTimeoutError(
                    f"job {job_id} not finished within the {timeout}s wait")
            wait_s = (RESULT_POLL_S if remaining is None
                      else min(RESULT_POLL_S, max(0.1, remaining)))
            payload = self._get(
                f"/result?id={job_id}&timeout={wait_s:.3f}",
                read_timeout=self.request_timeout_s + wait_s)
            if payload.get("pending"):
                continue  # the poll window expired; the job is in flight
            return FlowResult.from_dict(payload["result"])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.cancel(job_id)
        return self._post("/cancel", {"job_id": job_id})

    def stats(self) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.stats()
        return self._get("/stats")

    def healthz(self) -> Dict[str, Any]:
        if self._server is not None:
            return self._server.healthz()
        return self._get("/healthz")

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Ask the server to stop (drain by default)."""
        if self._server is not None:
            self._server.initiate_shutdown(drain=drain)
            return {"ok": True, "draining": drain}
        return self._post("/shutdown", {"drain": drain})

    # ------------------------------------------------------------------ #
    # HTTP plumbing

    def _get(self, path: str,
             read_timeout: Optional[float] = None) -> Dict[str, Any]:
        request = urllib.request.Request(self._base_url + path,
                                         method="GET")
        return self._exchange(request, read_timeout)

    def _post(self, path: str,
              payload: Mapping[str, Any]) -> Dict[str, Any]:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self._base_url + path, data=body, method="POST",
            headers={"Content-Type": "application/json"})
        return self._exchange(request, None)

    def _exchange(self, request: urllib.request.Request,
                  read_timeout: Optional[float]) -> Dict[str, Any]:
        timeout = (self.request_timeout_s if read_timeout is None
                   else read_timeout)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, OSError):
                payload = {}
            kind = _ERROR_KINDS.get(payload.get("kind"), ServiceError)
            raise kind(payload.get("error",
                                   f"HTTP {error.code}")) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach the repro service at {self._base_url}: "
                f"{error.reason}") from None
