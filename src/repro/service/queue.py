"""The coalescing, priority-classed job queue.

Two data structures under one lock:

* a binary heap ordered by ``(priority, sequence)`` — the dispatch order:
  highest class first, submission order within a class;
* an *in-flight index* mapping each queued or running job's
  :class:`~repro.api.workload.Workload` to its :class:`Job` — the
  coalescing table.  :class:`Workload` equality covers the
  characterization key, the kernel fingerprint, and every per-run knob
  (frame geometry, iterations, constraints, backend names), so two
  submissions coalesce exactly when a direct ``Session.run`` would return
  the same :class:`~repro.api.results.FlowResult` for both.

A coalesced submission may *promote* its job: submitting an identical
workload at a higher priority class while the job is still queued re-files
it under the better class (the heap uses lazy invalidation — stale entries
are skipped on pop, so promotion is O(log n), not a rebuild).

Per-job deadlines are enforced at the queue: a job whose deadline passes
while still queued is moved to the ``timeout`` state instead of being
dispatched, and :meth:`drain_batch` sleeps no longer than the nearest
queued deadline so expiry does not wait for the next submission.

The queue is optionally *bounded* (``max_pending``): once that many jobs
are queued, further non-coalescing submissions are **shed** with
:class:`~repro.service.jobs.QueueFullError` instead of growing the
backlog without limit — the HTTP transport turns that into ``503`` with a
``Retry-After`` header, and well-behaved clients back off and resubmit.
Coalescing submissions are always admitted (they add no work), so a
saturated queue still deduplicates.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.api.workload import Workload
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.jobs import (
    Job,
    JobTimeoutError,
    QueueFullError,
    ServiceClosedError,
    UnknownJobError,
    parse_job_kind,
    parse_priority,
)

#: How many terminal jobs are remembered for late ``status``/``result``
#: calls before the oldest are forgotten (in-flight jobs never expire).
DEFAULT_HISTORY_LIMIT = 1024

#: ``Retry-After`` suggested by a shedding queue (seconds): the base hint
#: plus this much per already-queued job, capped.  Deterministic — tests
#: and clients can reason about it.
SHED_RETRY_AFTER_BASE_S = 1.0
SHED_RETRY_AFTER_PER_JOB_S = 0.25
SHED_RETRY_AFTER_CAP_S = 30.0


class JobQueue:
    """Thread-safe priority queue with request coalescing (see module doc).

    ``max_pending`` bounds the queued backlog (``None`` = unbounded): a
    non-coalescing submission that would exceed it is shed with
    :class:`QueueFullError` carrying a deterministic ``retry_after_s``
    hint that grows with queue depth.
    """

    def __init__(self, history_limit: int = DEFAULT_HISTORY_LIMIT,
                 max_pending: Optional[int] = None) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1 or None (got {max_pending})")
        self._max_pending = max_pending
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        #: Heap entries: (priority, sequence, job).  Entries whose job is
        #: no longer queued, or whose priority no longer matches the job's
        #: (promotion happened), are stale and skipped on pop.
        self._heap: List[Tuple[int, int, Job]] = []
        #: Coalescing index: (job kind, workload) -> its queued-or-running
        #: job.  Keying on the kind keeps an exploration and a validation
        #: of the same workload apart — their results are different types.
        self._inflight: Dict[Tuple[str, Workload], Job] = {}
        #: Every remembered job by id (bounded terminal history).
        self._jobs: Dict[str, Job] = {}
        self._terminal_order: Deque[str] = deque()
        self._history_limit = history_limit
        self._sequence = itertools.count(1)
        self._closed = False
        # lifetime counters (monotonic; read via stats_snapshot)
        self._submitted = 0
        self._coalesced = 0
        self._cancelled = 0
        self._timed_out = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0

    # ------------------------------------------------------------------ #
    # submission / coalescing

    def submit(self, workload: Workload,
               priority: Union[str, int, None] = None,
               timeout_s: Optional[float] = None,
               kind: Optional[str] = None) -> Tuple[Job, bool]:
        """File a workload; returns ``(job, coalesced)``.

        ``kind`` selects the job class (``explore``, the default, or
        ``validate``).  An identical in-flight workload *of the same kind*
        coalesces: the existing job gains a requester (and, if the new
        submission outranks it while still queued, its better priority
        class) and is returned with ``coalesced=True``.  ``timeout_s`` is a *dispatch* deadline; a
        coalesced job waits as long as its most patient requester (one
        requester's tight timeout must never expire a computation others
        are still willing to wait for — impatient requesters bound their
        own ``result(timeout=...)`` instead).
        """
        priority = parse_priority(priority)
        kind = parse_job_kind(kind)
        if timeout_s is not None and timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0 (got {timeout_s})")
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        with self._has_work:
            if self._closed:
                raise ServiceClosedError(
                    "the service is draining and accepts no new jobs")
            job = self._inflight.get((kind, workload))
            if job is None and self._max_pending is not None:
                pending = sum(1 for queued in self._inflight.values()
                              if queued.state == "queued")
                if pending >= self._max_pending:
                    self._shed += 1
                    retry_after = min(
                        SHED_RETRY_AFTER_CAP_S,
                        SHED_RETRY_AFTER_BASE_S
                        + pending * SHED_RETRY_AFTER_PER_JOB_S)
                    raise QueueFullError(
                        f"queue full ({pending} jobs pending, bound "
                        f"{self._max_pending}); retry in ~{retry_after:.1f}s",
                        retry_after_s=retry_after)
            self._submitted += 1
            if job is not None:
                job.requesters += 1
                job.coalesced += 1
                self._coalesced += 1
                if job.deadline is not None:
                    # most-patient-requester rule: an unbounded requester
                    # clears the deadline, a later one only extends it
                    if deadline is None:
                        job.deadline = None
                        job.timeout_s = None
                    elif deadline > job.deadline:
                        job.deadline = deadline
                        job.timeout_s = timeout_s
                if priority < job.priority and job.state == "queued":
                    job.priority = priority  # invalidates the old entry
                    heapq.heappush(self._heap,
                                   (priority, job.sequence, job))
                    self._has_work.notify_all()
                return job, True
            sequence = next(self._sequence)
            job = Job(id=f"job-{sequence}", workload=workload,
                      priority=priority, sequence=sequence, kind=kind,
                      timeout_s=timeout_s, deadline=deadline)
            if obs_trace.enabled():
                # one span per server-side job, parented to whatever is
                # current on the submitting thread — the HTTP handler's
                # adopted X-Repro-Trace context, or an in-process
                # caller's span.  Attached under the lock, before the
                # heap push, so the dispatcher can never pop a job whose
                # trace context is still missing.  Finished at the
                # terminal transition.
                span = obs_trace.start_span("service.job", job_id=job.id,
                                            kind=kind,
                                            workload=workload.name)
                job.span = span
                job.trace_context = span.context_payload()
            self._jobs[job.id] = job
            self._inflight[(kind, workload)] = job
            heapq.heappush(self._heap, (priority, sequence, job))
            self._has_work.notify_all()
            return job, False

    def job(self, job_id: str) -> Job:
        """The job named ``job_id`` (raises :class:`UnknownJobError`)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(
                f"unknown job {job_id!r} (completed jobs are remembered "
                f"for the last {self._history_limit} terminals)")
        return job

    def cancel(self, job_id: str) -> bool:
        """Withdraw one requester from a job; returns whether it still ran.

        A queued job whose last requester cancels moves to ``cancelled``
        and is never dispatched (returns ``False``).  A job with other
        requesters — or one already running (the exploration cannot be
        interrupted mid-flight) — keeps going (returns ``True``).
        """
        job = self.job(job_id)
        with self._has_work:
            if job.done():
                return job.state not in ("cancelled", "timeout")
            job.requesters = max(0, job.requesters - 1)
            if job.requesters > 0 or job.state != "queued":
                return True
            self._make_terminal(job, "cancelled")
            self._cancelled += 1
            return False

    # ------------------------------------------------------------------ #
    # dispatch

    def drain_batch(self, max_batch: int,
                    linger_s: float = 0.0,
                    wait_timeout: Optional[float] = None
                    ) -> Optional[List[Job]]:
        """Pop the next batch of compatible jobs (blocks until available).

        The batch is the highest-priority queued job plus every further
        queued job *of the same priority class*, in submission order, up
        to ``max_batch`` — the compatibility rule that keeps priority
        inversion out while still letting a burst of sibling scenarios
        ride one ``run_many`` call.  With ``linger_s > 0`` the first job
        waits that long for same-class company before the batch is sealed
        (bursts arriving over HTTP rarely land in the same microsecond).

        Every returned job is already in the ``running`` state.  Returns
        ``None`` when the queue is closed and empty (the scheduler's exit
        signal); ``wait_timeout`` bounds the idle wait (returns ``[]`` on
        expiry so callers can run periodic upkeep).
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1 (got {max_batch})")
        with self._has_work:
            started = time.monotonic()
            while True:
                self._expire_queued()
                first = self._pop_ready()
                if first is not None:
                    break
                if self._closed:
                    return None
                remaining = (None if wait_timeout is None
                             else wait_timeout - (time.monotonic() - started))
                if remaining is not None and remaining <= 0:
                    return []
                self._has_work.wait(self._bounded_wait(remaining))
            if linger_s > 0:
                # give the burst a moment to finish arriving; coalescing
                # onto the (already running) first job still works either
                # way, lingering only widens the batch.  Loop: each
                # submit() notifies the condition, and returning on the
                # first wakeup would seal the batch at size two — wait
                # out the full window (or until it cannot grow further).
                linger_until = time.monotonic() + linger_s
                while True:
                    remaining = linger_until - time.monotonic()
                    if remaining <= 0:
                        break
                    if self._queued_count(first.priority) >= max_batch - 1:
                        break  # the batch is already full
                    self._has_work.wait(remaining)
                self._expire_queued()
            batch = [first]
            while len(batch) < max_batch:
                follower = self._pop_ready(priority=first.priority)
                if follower is None:
                    break
                batch.append(follower)
            for job in batch:
                job.batch_size = len(batch)
            return batch

    def _queued_count(self, priority: int) -> int:
        """Queued jobs of one priority class (caller holds the lock)."""
        return sum(1 for job in self._inflight.values()
                   if job.state == "queued" and job.priority == priority)

    def _pop_ready(self, priority: Optional[int] = None) -> Optional[Job]:
        """Pop the next dispatchable job (optionally only of one class)."""
        while self._heap:
            entry_priority, _sequence, job = self._heap[0]
            if job.state != "queued" or entry_priority != job.priority:
                heapq.heappop(self._heap)  # stale (terminal or promoted)
                continue
            if priority is not None and entry_priority != priority:
                return None
            heapq.heappop(self._heap)
            job.state = "running"
            job.started_at = time.time()
            waited = job.started_at - job.submitted_at
            obs_metrics.registry().histogram(
                "repro_service_queue_wait_seconds").observe(waited)
            if job.span is not None:
                job.span.set_attribute("queue_wait_s", waited)
            return job
        return None

    def _expire_queued(self) -> None:
        """Time out queued jobs whose deadline has passed (never dispatched)."""
        now = time.monotonic()
        for job in list(self._inflight.values()):
            if (job.state == "queued" and job.deadline is not None
                    and job.deadline <= now):
                job.error = JobTimeoutError(
                    f"job {job.id} spent more than {job.timeout_s}s queued")
                self._make_terminal(job, "timeout")
                self._timed_out += 1

    def _bounded_wait(self, timeout: Optional[float]) -> Optional[float]:
        """Cap an idle wait at the nearest queued deadline."""
        nearest: Optional[float] = None
        now = time.monotonic()
        for job in self._inflight.values():
            if job.state == "queued" and job.deadline is not None:
                remaining = max(0.0, job.deadline - now)
                nearest = (remaining if nearest is None
                           else min(nearest, remaining))
        if nearest is None:
            return timeout
        return nearest if timeout is None else min(timeout, nearest)

    # ------------------------------------------------------------------ #
    # completion (called by the scheduler)

    def finish(self, job: Job, result) -> None:
        """Mark a running job done and deliver its result to every waiter."""
        with self._has_work:
            job.result = result
            self._make_terminal(job, "done")
            self._completed += 1

    def fail(self, job: Job, error: BaseException) -> None:
        """Mark a running job failed (the error reaches every requester)."""
        with self._has_work:
            job.error = error
            self._make_terminal(job, "failed")
            self._failed += 1

    def _make_terminal(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = time.time()
        if job.span is not None:
            # single funnel for every terminal transition, so the job span
            # closes exactly once whether the job finished, failed, timed
            # out in the queue, or lost its last requester
            job.span.set_attribute("state", state)
            if state == "failed" and job.error is not None:
                job.span.set_error(job.error)
            job.span.finish()
            job.span = None
        if self._inflight.get((job.kind, job.workload)) is job:
            del self._inflight[(job.kind, job.workload)]
        self._terminal_order.append(job.id)
        while len(self._terminal_order) > self._history_limit:
            forgotten = self._terminal_order.popleft()
            old = self._jobs.get(forgotten)
            if old is not None and old.done():
                del self._jobs[forgotten]
        job._done.set()

    # ------------------------------------------------------------------ #
    # shutdown / introspection

    def close(self, cancel_pending: bool = False) -> None:
        """Refuse new submissions; optionally cancel everything queued.

        With ``cancel_pending`` every still-queued job turns ``cancelled``
        (their waiters are released immediately); without it the scheduler
        keeps draining until :meth:`drain_batch` returns ``None``.
        """
        with self._has_work:
            self._closed = True
            if cancel_pending:
                for job in list(self._inflight.values()):
                    if job.state == "queued":
                        self._make_terminal(job, "cancelled")
                        self._cancelled += 1
            self._has_work.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def pending_count(self) -> int:
        """Jobs waiting for dispatch."""
        with self._lock:
            return sum(1 for job in self._inflight.values()
                       if job.state == "queued")

    def running_count(self) -> int:
        with self._lock:
            return sum(1 for job in self._inflight.values()
                       if job.state == "running")

    def stats_snapshot(self) -> Dict[str, object]:
        """Atomic JSON-ready view of the queue counters.

        ``coalesce_hit_rate`` is the fraction of submissions served by an
        already-in-flight computation — the service's headline dedup
        figure.
        """
        with self._lock:
            submitted = self._submitted
            pending = sum(1 for job in self._inflight.values()
                          if job.state == "queued")
            running = sum(1 for job in self._inflight.values()
                          if job.state == "running")
            return {
                "submitted": submitted,
                "coalesced": self._coalesced,
                "coalesce_hit_rate": (self._coalesced / submitted
                                      if submitted else 0.0),
                "completed": self._completed,
                "failed": self._failed,
                "cancelled": self._cancelled,
                "timed_out": self._timed_out,
                "shed": self._shed,
                "max_pending": self._max_pending,
                "pending": pending,
                "running": running,
            }
