"""The exploration daemon: one shared session behind a job API.

:class:`ReproServer` wires the service pieces together — a
:class:`~repro.api.session.Session` (optionally store-backed), a
coalescing :class:`~repro.service.queue.JobQueue`, and a
:class:`~repro.service.scheduler.Scheduler` — and exposes one protocol
over two transports:

* **in-process**: ``submit`` / ``status`` / ``result`` / ``cancel`` /
  ``stats`` / ``healthz`` as plain methods (every payload JSON-ready, so
  the two transports cannot drift);
* **HTTP**: the same operations as a minimal stdlib-only JSON endpoint
  (:mod:`http.server`, threaded) via :meth:`serve_http` — ``POST
  /submit``, ``GET /status``, ``GET /result``, ``POST /cancel``, ``GET
  /stats``, ``GET /healthz``, ``GET /metrics`` (Prometheus text), ``GET
  /trace`` / ``GET /trace/<id>`` (recorded traces), ``POST /register``
  (fleet handshake), ``POST /shutdown``.

The queue is optionally bounded (``max_pending``): a saturated server
*sheds* new work with ``503 + Retry-After`` (:class:`~repro.service.jobs
.QueueFullError`) instead of building unbounded backlog — the
backpressure half of the fleet tier (:mod:`repro.fleet`), whose router
fronts N of these servers and routes by consistent hash.

Job lifecycle (``job-queued`` / ``job-coalesced`` / ``job-started`` /
``job-finished`` / ``job-failed``) streams through the session's existing
progress-callback protocol: :meth:`on_event` callbacks receive
:class:`~repro.api.session.SessionEvent` objects for both the job
transitions and the underlying pipeline stages.

Shutdown is graceful by default: ``close(drain=True)`` stops accepting
submissions (HTTP submitters get 503), finishes every queued job, then
tears the HTTP listener down — so a deploy rollover never drops accepted
work.  ``drain=False`` cancels the queued backlog instead (the batch
already executing still completes; pure-Python explorations cannot be
interrupted mid-flight).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.api.registry import register_backend
from repro.api.results import FlowResult, ValidationResult
from repro.api.session import Session, SessionEvent, _defensive_copy
from repro.api.store import ArtifactStore
from repro.api.workload import Workload
from repro.dse.engine import shared_table_stats
from repro.dse.stream import stream_stats
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.jobs import (
    AdmissionDeniedError,
    JobCancelledError,
    JobFailedError,
    JobTimeoutError,
    QueueFullError,
    ServiceClosedError,
    UnknownJobError,
)
from repro.service.metrics import METRICS_CONTENT_TYPE, render_prometheus
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler

#: Default TCP port of ``python -m repro serve`` (0 = OS-assigned).
DEFAULT_PORT = 8177

#: Upper bound on one HTTP request body (a serialized workload is a few
#: kilobytes; anything near this is not a workload).
MAX_REQUEST_BYTES = 8 * 1024 * 1024

#: Per-request cap on how long ``GET /result`` may block server-side;
#: clients with larger timeouts poll (see :class:`repro.service.client
#: .ReproClient`), so slow explorations never pin a connection forever.
MAX_RESULT_WAIT_S = 300.0


class ReproServer:
    """A long-lived exploration server over one shared session."""

    def __init__(self, session: Optional[Session] = None,
                 store: Optional[Union[str, os.PathLike,
                                       ArtifactStore]] = None,
                 executor: Union[str, object, None] = None,
                 max_workers: Optional[int] = None,
                 max_batch: int = 16,
                 batch_window_s: float = 0.0,
                 history_limit: int = 1024,
                 max_pending: Optional[int] = None,
                 worker_id: Optional[str] = None,
                 on_event: Optional[Callable[[SessionEvent], None]] = None,
                 start: bool = True) -> None:
        if session is not None and store is not None:
            raise ValueError("pass either a session or a store, not both "
                             "(a session already owns its store)")
        # servers trace by default (REPRO_OBS=0 opts out): the ring-buffer
        # TraceStore is bounded, and library use without a server stays on
        # the zero-cost disabled path
        obs_trace.auto_enable()
        self._session = session if session is not None else Session(
            store=store)
        if on_event is not None:
            self._session.on_event(on_event)
        self._queue = JobQueue(history_limit=history_limit,
                               max_pending=max_pending)
        #: This worker's own identity, reported in the fleet registration
        #: handshake (lets a router detect two URLs naming one worker).
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self._fleet_registration: Optional[Dict[str, Any]] = None
        self._scheduler = Scheduler(self._session, self._queue,
                                    executor=executor,
                                    max_workers=max_workers,
                                    max_batch=max_batch,
                                    batch_window_s=batch_window_s)
        self._started_at = time.time()
        self._httpd: Optional[_ServiceHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._http_address: Optional[Tuple[str, int]] = None
        self._shutdown_requested = threading.Event()
        self._drain_on_shutdown = True
        self._close_lock = threading.Lock()
        self._stopped = False
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def session(self) -> Session:
        """The shared session (one cache for every client)."""
        return self._session

    @property
    def queue(self) -> JobQueue:
        return self._queue

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    def start(self) -> "ReproServer":
        """Start the dispatcher (idempotent; ``start=False`` construction
        lets tests pre-load the queue deterministically)."""
        self._scheduler.start()
        return self

    def on_event(self, callback: Callable[[SessionEvent], None]) -> None:
        """Stream job + stage lifecycle events (the session's protocol)."""
        self._session.on_event(callback)

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown was requested (HTTP ``/shutdown`` or
        :meth:`initiate_shutdown`); the CLI's foreground loop."""
        return self._shutdown_requested.wait(timeout)

    def initiate_shutdown(self, drain: bool = True) -> None:
        """Request an asynchronous shutdown (returns immediately).

        The actual teardown runs on a helper thread, so an HTTP handler
        can acknowledge the request before the listener goes away.
        """
        self._drain_on_shutdown = drain
        if not self._shutdown_requested.is_set():
            self._shutdown_requested.set()
            threading.Thread(target=self.close, kwargs={"drain": drain},
                             name="repro-service-shutdown",
                             daemon=True).start()

    def close(self, drain: Optional[bool] = None) -> None:
        """Stop the service (idempotent, thread-safe).

        ``drain=True`` (default) executes every queued job first; HTTP
        stays up while draining so pending ``result`` calls are answered,
        then the listener stops.  ``drain=False`` cancels the backlog.
        """
        if drain is None:
            drain = self._drain_on_shutdown
        with self._close_lock:
            if self._stopped:
                return
            self._shutdown_requested.set()
            self._scheduler.stop(drain=drain)
            if self._httpd is not None:
                self._httpd.shutdown()
                self._httpd.server_close()
                if self._http_thread is not None:
                    self._http_thread.join(timeout=5.0)
                self._httpd = None
                self._http_thread = None
            self._stopped = True

    def _state(self) -> str:
        if self._stopped:
            return "stopped"
        if self._queue.closed or self._shutdown_requested.is_set():
            return "draining"
        return "serving"

    # ------------------------------------------------------------------ #
    # the job API (shared verbatim by both transports)

    def submit(self, workload: Union[Workload, Mapping[str, Any]],
               priority: Union[str, int, None] = None,
               timeout_s: Optional[float] = None,
               job: Optional[str] = None) -> Dict[str, Any]:
        """File a workload; returns the submission receipt.

        ``job`` selects the job class: ``explore`` (default, the full
        staged flow) or ``validate`` (simulated-vs-golden equivalence
        evidence).  The receipt carries ``job_id`` (poll
        ``status``/``result`` with it) and ``coalesced`` — whether this
        submission attached to an identical same-class workload already
        in flight instead of queueing new work.
        """
        if not isinstance(workload, Workload):
            workload = Workload.from_dict(workload)
        job, coalesced = self._queue.submit(workload, priority=priority,
                                            timeout_s=timeout_s, kind=job)
        if obs_trace.enabled() and coalesced:
            # the job's own span was attached by the queue at creation;
            # record the join in the *requester's* trace too — this
            # submission's work is served by an already-in-flight job
            if job.span is not None:
                job.span.set_attribute("coalesced", job.coalesced)
            with obs_trace.span("service.coalesce", job_id=job.id,
                                requesters=job.requesters):
                pass
        self._session._emit_batch_event(
            "job-coalesced" if coalesced else "job-queued",
            workload, detail=job.id)
        receipt = job.snapshot()
        receipt["coalesced"] = coalesced
        return receipt

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current lifecycle snapshot."""
        return self._queue.job(job_id).snapshot()

    def result(self, job_id: str,
               timeout: Optional[float] = None
               ) -> Union[FlowResult, ValidationResult]:
        """Wait for a job and return its result — a :class:`FlowResult`
        for ``explore`` jobs, a :class:`ValidationResult` for ``validate``
        jobs.

        Raises :class:`JobFailedError` / :class:`JobCancelledError` /
        :class:`JobTimeoutError` for unsuccessful terminals.  A job whose
        own ``timeout_s`` deadline passes while *running* raises
        :class:`JobTimeoutError` to waiters but keeps computing — the
        result still lands in the session cache for later requests
        (queued jobs past their deadline are never started at all).
        """
        job = self._queue.job(job_id)
        caller_deadline = (None if timeout is None
                           else time.monotonic() + timeout)
        while not job.done():
            waits = [w for w in (job.deadline_remaining(),
                                 None if caller_deadline is None
                                 else caller_deadline - time.monotonic())
                     if w is not None]
            if job.wait(None if not waits else max(0.0, min(waits))):
                break
            job_remaining = job.deadline_remaining()
            if job_remaining is not None and job_remaining <= 0:
                raise JobTimeoutError(
                    f"job {job.id} exceeded its {job.timeout_s}s timeout "
                    f"(state: {job.state}; a running job completes in the "
                    f"background and warms the cache)")
            if (caller_deadline is not None
                    and caller_deadline - time.monotonic() <= 0):
                error = JobTimeoutError(
                    f"job {job.id} not finished within the {timeout}s wait "
                    f"(state: {job.state})")
                error.terminal = False  # the job itself is still in flight
                raise error
        job.raise_if_unsuccessful()
        # each requester gets an isolated view over the shared heavy
        # artifacts, exactly like concurrent Session.run callers
        return _defensive_copy(job.result)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Withdraw one requester (see :meth:`JobQueue.cancel`)."""
        still_running = self._queue.cancel(job_id)
        snapshot = self.status(job_id)
        snapshot["still_running"] = still_running
        return snapshot

    def stats(self) -> Dict[str, Any]:
        """One JSON document over every layer's counters."""
        store = self._session.store
        return {
            "state": self._state(),
            "uptime_s": time.time() - self._started_at,
            "worker_id": self.worker_id,
            "fleet": self._fleet_registration,
            "http_address": (None if self._http_address is None
                             else "http://{}:{}".format(*self._http_address)),
            "queue": self._queue.stats_snapshot(),
            "scheduler": self._scheduler.stats_snapshot(),
            "session": self._session.stats.to_dict(),
            "store": (None if store is None
                      else {"root": store.root, **store.counters()}),
            "shared_table": shared_table_stats(),
            # mask-cache counters of the out-of-core streaming engine:
            # hits growing across jobs = incremental re-explores reusing
            # pushdown analysis, re-costing only throughput columns
            "stream": stream_stats(),
        }

    def healthz(self) -> Dict[str, Any]:
        """Liveness/readiness probe payload."""
        state = self._state()
        return {
            "ok": state == "serving",
            "state": state,
            "worker_id": self.worker_id,
            "uptime_s": time.time() - self._started_at,
            "pending_jobs": self._queue.pending_count(),
            "running_jobs": self._queue.running_count(),
            "scheduler_alive": self._scheduler.running,
        }

    def metrics_text(self) -> str:
        """The counters as Prometheus text (``GET /metrics``).

        Walked ``stats()`` leaves (typed counter/gauge by leaf name) plus
        the typed registry families — queue-wait, stage-latency, and
        chunk-fold histograms included.
        """
        return render_prometheus(self.stats(),
                                 registry=obs_metrics.registry())

    def trace(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """Recorded traces (``GET /trace``, ``GET /trace/<id>``).

        Without an id: the store's per-trace summaries plus its
        accounting.  With one: that trace's full span list (JSON-ready;
        the CLI converts to JSONL or Chrome ``trace_event`` client-side).
        """
        store = obs_trace.global_store()
        if trace_id is None:
            return {"traces": store.summaries(),
                    "store": store.stats_snapshot()}
        spans = store.get(trace_id)
        if spans is None:
            raise UnknownJobError(
                f"unknown trace {trace_id!r} (the trace store is a ring "
                f"buffer; old traces are evicted)")
        return {"trace_id": trace_id, "spans": spans}

    def register(self, info: Mapping[str, Any]) -> Dict[str, Any]:
        """Fleet registration handshake (``POST /register``).

        A router announces itself here before routing traffic; the worker
        records the registration (visible under ``stats()["fleet"]``) and
        answers with its identity, state, and — crucially — its store
        root, so the router can verify every fleet member shares one
        :class:`~repro.api.store.ArtifactStore` (the warm-through-store
        cache tier).  Re-registration overwrites (routers re-handshake
        after a worker restart).
        """
        store = self._session.store
        self._fleet_registration = {
            "router": info.get("router"),
            "member_name": info.get("member_name"),
            "registered_at": time.time(),
        }
        return {
            "ok": True,
            "worker_id": self.worker_id,
            "state": self._state(),
            "store_root": None if store is None else store.root,
            "max_pending": self._queue.stats_snapshot()["max_pending"],
        }

    # ------------------------------------------------------------------ #
    # HTTP transport

    def serve_http(self, host: str = "127.0.0.1",
                   port: int = DEFAULT_PORT) -> Tuple[str, int]:
        """Start the JSON endpoint on ``host:port`` (0 = ephemeral).

        Returns the bound ``(host, port)``; the listener runs on a
        daemon thread until :meth:`close`.
        """
        if self._httpd is not None:
            return self._http_address  # already listening
        self._httpd, self._http_thread, self._http_address = (
            start_http_endpoint(self, host, port))
        return self._http_address


def start_http_endpoint(service: Any, host: str, port: int,
                        thread_name: str = "repro-service-http"
                        ) -> Tuple["_ServiceHTTPServer", threading.Thread,
                                   Tuple[str, int]]:
    """Bind the JSON endpoint for any job-API object (worker or fleet
    router — the handler only calls the shared verbs) and serve it on a
    daemon thread.  Returns ``(httpd, thread, (host, port))``."""
    httpd = _ServiceHTTPServer((host, port), _ServiceRequestHandler)
    httpd.service = service
    address = (httpd.server_address[0], httpd.server_address[1])
    thread = threading.Thread(target=httpd.serve_forever,
                              name=thread_name, daemon=True)
    thread.start()
    return httpd, thread, address


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: ReproServer


#: Error class -> HTTP status code of the JSON endpoint.
_ERROR_STATUS = (
    (UnknownJobError, 404),
    (JobTimeoutError, 408),
    (JobCancelledError, 409),
    (AdmissionDeniedError, 403),
    (QueueFullError, 503),
    (ServiceClosedError, 503),
    (JobFailedError, 500),
    (ValueError, 400),
    (TypeError, 400),
    (KeyError, 400),
)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the job API; every response body is JSON."""

    server: _ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        query = {key: values[-1]
                 for key, values in parse_qs(parsed.query).items()}
        service = self.server.service
        try:
            if parsed.path == "/healthz":
                payload = service.healthz()
                self._respond(200 if payload["ok"] else 503, payload)
            elif parsed.path == "/stats":
                self._respond(200, service.stats())
            elif parsed.path == "/metrics":
                self._respond_text(200, service.metrics_text(),
                                   METRICS_CONTENT_TYPE)
            elif parsed.path == "/trace":
                self._respond(200, service.trace())
            elif parsed.path.startswith("/trace/"):
                self._respond(200,
                              service.trace(parsed.path[len("/trace/"):]))
            elif parsed.path == "/status":
                self._respond(200, service.status(self._job_id(query)))
            elif parsed.path == "/result":
                wait_s = min(float(query.get("timeout", 30.0)),
                             MAX_RESULT_WAIT_S)
                job_id = self._job_id(query)
                try:
                    result = service.result(job_id, timeout=wait_s)
                except JobTimeoutError as error:
                    if error.terminal:
                        raise
                    # only this poll's wait window expired: tell the
                    # client to keep polling instead of erroring out
                    self._respond(200, {
                        "job_id": job_id,
                        "state": service.status(job_id)["state"],
                        "pending": True,
                    })
                    return
                payload = {
                    "job_id": job_id,
                    "state": "done",
                    "result": result.to_dict(),
                }
                if isinstance(result, ValidationResult):
                    # typed discriminator so the client can rebuild the
                    # right result class without guessing at the schema
                    payload["result_kind"] = "validation"
                self._respond(200, payload)
            else:
                self._respond(404, {"error": f"no route {parsed.path!r}"})
        except Exception as error:  # mapped to a status code below
            self._respond_error(error)

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        service = self.server.service
        try:
            body = self._read_json()
            if parsed.path == "/submit":
                keywords: Dict[str, Any] = {
                    "priority": body.get("priority"),
                    "timeout_s": body.get("timeout_s"),
                }
                if "role" in body:
                    # admission-control surface of the fleet router; a
                    # plain worker rejects it (TypeError -> 400) instead
                    # of silently dropping a capability check
                    keywords["role"] = body["role"]
                if "job" in body:
                    keywords["job"] = body["job"]
                # strict parse: a malformed or absent X-Repro-Trace header
                # degrades to None — a fresh root span — never an error
                context = obs_trace.parse_header(
                    self.headers.get(obs_trace.TRACE_HEADER))
                with obs_trace.adopt(context):
                    receipt = service.submit(body["workload"], **keywords)
                self._respond(200, receipt)
            elif parsed.path == "/register":
                self._respond(200, service.register(body))
            elif parsed.path == "/cancel":
                self._respond(200, service.cancel(body["job_id"]))
            elif parsed.path == "/shutdown":
                drain = bool(body.get("drain", True))
                service.initiate_shutdown(drain=drain)
                self._respond(200, {"ok": True, "draining": drain})
            else:
                self._respond(404, {"error": f"no route {parsed.path!r}"})
        except Exception as error:
            self._respond_error(error)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _job_id(query: Mapping[str, str]) -> str:
        job_id = query.get("id")
        if not job_id:
            raise ValueError("missing ?id=<job id> parameter")
        return job_id

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_REQUEST_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_REQUEST_BYTES}-byte limit")
        if length == 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _respond(self, status: int, payload: Mapping[str, Any],
                 headers: Optional[Mapping[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json", headers)

    def _respond_text(self, status: int, text: str,
                      content_type: str = "text/plain") -> None:
        self._send_body(status, text.encode("utf-8"), content_type, None)

    def _send_body(self, status: int, body: bytes, content_type: str,
                   headers: Optional[Mapping[str, str]]) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(self, error: Exception) -> None:
        status = 500
        for error_type, code in _ERROR_STATUS:
            if isinstance(error, error_type):
                status = code
                break
        message = (error.args[0] if isinstance(error, KeyError)
                   and error.args else str(error))
        payload = {"error": str(message), "kind": type(error).__name__}
        headers = None
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            # the load-shedding contract: 503 + Retry-After, so any
            # off-the-shelf client (curl --retry, proxies) backs off too
            payload["retry_after_s"] = retry_after
            headers = {"Retry-After": str(max(1, round(retry_after)))}
        try:
            self._respond(status, payload, headers)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-error; nothing to salvage

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (stats() is the observable)."""


register_backend("service", "local", ReproServer)
