"""The long-lived exploration service.

``repro.service`` turns the batch API into a daemon: a
:class:`ReproServer` owns one shared :class:`~repro.api.session.Session`
(and therefore one characterization cache, one persistent
:class:`~repro.api.store.ArtifactStore` binding, and one columnar
architecture-table cache) and serves exploration *jobs* submitted by many
concurrent clients.  Three properties distinguish it from N short-lived
sessions:

* **request coalescing** — identical in-flight workloads share one
  computation: the :class:`JobQueue` keys queued *and* running jobs by the
  full workload identity (characterization key + kernel fingerprint +
  per-run knobs), so sixteen concurrent submissions of the same workload
  trigger exactly one exploration and all sixteen receive the same
  :class:`~repro.api.results.FlowResult` — digest-identical to a direct
  ``Session.run``;
* **priority scheduling** — jobs carry a priority class (``interactive`` >
  ``batch`` > ``background``); the :class:`Scheduler` always drains the
  highest non-empty class first, so an interactive request never waits
  behind a background sweep that is still queued;
* **batched columnar dispatch** — the scheduler drains *compatible* queued
  jobs (same priority class) into one :meth:`Session.run_many` call, so a
  burst of multi-device/multi-format requests is re-costed against one
  cached :class:`~repro.architecture.enumeration.ArchitectureTable`
  instead of running serially, with the batch executor pluggable through
  the ``executor`` backend registry kind.

The server speaks two transports with one protocol: in-process method
calls, and a minimal stdlib-only JSON endpoint over :mod:`http.server`
(``submit`` / ``status`` / ``result`` / ``stats`` / ``healthz``), with
:class:`ReproClient` wrapping both.  Job lifecycle is streamed through the
existing progress-callback protocol (:class:`~repro.api.session
.SessionEvent` with ``job-*`` kinds) alongside the session's stage events.

Quick start::

    from repro.api import Workload
    from repro.service import ReproClient, ReproServer

    with ReproServer(store="~/.cache/repro") as server:
        client = ReproClient(server)            # or ReproClient("http://...")
        handle = client.submit(Workload.from_algorithm("blur"),
                               priority="interactive")
        result = handle.result(timeout=60)

Shell equivalent: ``python -m repro serve --store ~/.cache/repro`` then
``python -m repro submit blur``.
"""

from repro.service.jobs import (
    JOB_STATES,
    AdmissionDeniedError,
    FleetOverloadedError,
    Job,
    JobCancelledError,
    JobFailedError,
    JobTimeoutError,
    PRIORITY_CLASSES,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
    parse_job_kind,
    parse_priority,
    priority_name,
)
from repro.service.metrics import METRICS_CONTENT_TYPE, render_prometheus
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.server import DEFAULT_PORT, ReproServer
from repro.service.client import JobHandle, ReproClient

__all__ = [
    "AdmissionDeniedError",
    "DEFAULT_PORT",
    "FleetOverloadedError",
    "JOB_STATES",
    "Job",
    "JobCancelledError",
    "JobFailedError",
    "JobHandle",
    "JobQueue",
    "JobTimeoutError",
    "METRICS_CONTENT_TYPE",
    "PRIORITY_CLASSES",
    "QueueFullError",
    "ReproClient",
    "ReproServer",
    "Scheduler",
    "ServiceClosedError",
    "ServiceError",
    "UnknownJobError",
    "parse_job_kind",
    "parse_priority",
    "priority_name",
    "render_prometheus",
]
