"""Job records and the service error taxonomy.

A :class:`Job` is one unit of server-side work: a :class:`~repro.api
.workload.Workload` plus scheduling metadata (priority class, optional
deadline) and a completion event.  Jobs are created by
:meth:`repro.service.queue.JobQueue.submit` and mutated only under the
queue's lock; waiters block on the job's completion event, never on the
lock, so a slow exploration cannot stall ``status``/``stats`` traffic.

Coalescing makes one job the unit of *sharing* too: N identical
submissions attach to one job (``requesters`` counts them,
``coalesced`` counts the N-1 piggybackers) and every requester receives
the same :class:`~repro.api.results.FlowResult`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.api.results import FlowResult, ValidationResult
from repro.api.workload import Workload

#: Priority classes, highest first.  Lower number = drained earlier; the
#: scheduler always empties the highest non-empty class before touching
#: the next one.
PRIORITY_CLASSES: Dict[str, int] = {
    "interactive": 0,
    "batch": 1,
    "background": 2,
}

#: Reverse mapping for reporting (priority number -> class name).
_PRIORITY_NAMES = {number: name for name, number in PRIORITY_CLASSES.items()}

#: The job lifecycle states.  ``queued`` and ``running`` are the in-flight
#: states (new identical submissions coalesce onto them); the other four
#: are terminal.
JOB_STATES: Tuple[str, ...] = ("queued", "running", "done", "failed",
                               "cancelled", "timeout")


def parse_priority(value: Union[str, int, None]) -> int:
    """Normalize a priority class (name or number) to its number.

    ``None`` means the default class (``batch``).  Unknown names and
    out-of-range numbers are configuration errors, not requests for a
    default.
    """
    if value is None:
        return PRIORITY_CLASSES["batch"]
    if isinstance(value, bool):
        raise ValueError(f"invalid job priority {value!r}")
    if isinstance(value, int):
        if value not in _PRIORITY_NAMES:
            raise ValueError(
                f"invalid job priority {value}; classes are "
                + ", ".join(f"{name}={n}"
                            for name, n in PRIORITY_CLASSES.items()))
        return value
    try:
        return PRIORITY_CLASSES[value.strip().lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown job priority {value!r}; classes are "
            f"{', '.join(PRIORITY_CLASSES)}") from None


def priority_name(priority: int) -> str:
    """The class name of a priority number (for reporting)."""
    return _PRIORITY_NAMES.get(priority, str(priority))


#: The job classes the service runs.  ``explore`` is the full staged flow
#: (coalescible, batchable through ``run_many``); ``validate`` is the
#: simulated-vs-golden equivalence check (coalescible among validations,
#: always dispatched per-job through ``Session.validate``).
JOB_KINDS: Tuple[str, ...] = ("explore", "validate")


def parse_job_kind(value: Optional[str]) -> str:
    """Normalize a job-class name.  ``None`` means ``explore``."""
    if value is None:
        return "explore"
    try:
        name = value.strip().lower()
    except AttributeError:
        raise ValueError(f"invalid job kind {value!r}; kinds are "
                         f"{', '.join(JOB_KINDS)}") from None
    if name not in JOB_KINDS:
        raise ValueError(f"unknown job kind {value!r}; kinds are "
                         f"{', '.join(JOB_KINDS)}")
    return name


# ---------------------------------------------------------------------- #
# error taxonomy


class ServiceError(RuntimeError):
    """Base class of every service-level error."""


class UnknownJobError(ServiceError, KeyError):
    """Raised when a job id does not name a (still remembered) job."""

    def __str__(self) -> str:  # KeyError repr-quotes its argument; don't
        return self.args[0] if self.args else ""


class JobCancelledError(ServiceError):
    """Raised by ``result()`` when the job was cancelled before running."""


class JobTimeoutError(ServiceError):
    """Raised when a job's deadline, or a waiter's timeout, expired.

    ``terminal`` distinguishes the two: ``True`` means the *job's own*
    timeout budget is exhausted (waiting longer cannot help this
    requester), ``False`` means only the caller-supplied wait window
    expired (the job is still in flight and may yet finish).
    """

    terminal = True


class JobFailedError(ServiceError):
    """Raised by ``result()`` when the workload itself failed.

    The original error message is carried verbatim (the HTTP transport
    only ships strings; the in-process path additionally chains the
    original exception as ``__cause__``).
    """


class ServiceClosedError(ServiceError):
    """Raised on submission to a draining or stopped server."""


class QueueFullError(ServiceError):
    """Raised when a bounded queue sheds a submission (load-shedding).

    Shedding is backpressure, not failure: the HTTP transport maps this to
    ``503`` with a ``Retry-After`` header (``retry_after_s``), and
    :class:`~repro.service.client.ReproClient` retries the submission with
    capped exponential backoff before giving up with
    :class:`FleetOverloadedError`.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        #: Seconds the shedder suggests waiting before resubmitting.
        self.retry_after_s = retry_after_s


class FleetOverloadedError(ServiceError):
    """Raised client-side when every shed-retry attempt was itself shed.

    The typed give-up of the backpressure protocol: the service (or the
    whole fleet) stayed saturated for the client's entire retry budget.
    """


class AdmissionDeniedError(ServiceError):
    """Raised when a requester's role does not grant the priority class.

    Enforced by the fleet router's :class:`~repro.fleet.admission
    .AdmissionPolicy` (priority classes are *capabilities*, not an honor
    system); the HTTP transport maps this to ``403``.
    """


# ---------------------------------------------------------------------- #
# the job record


@dataclass
class Job:
    """One scheduled exploration request (mutated only under the queue lock).

    ``sequence`` is the queue-wide submission counter; within a priority
    class jobs are dispatched in sequence order, so equal-priority
    requests complete first-come-first-served.
    """

    id: str
    workload: Workload
    priority: int
    sequence: int
    #: Job class (see :data:`JOB_KINDS`): what the scheduler runs for this
    #: workload and what ``result`` carries when done.
    kind: str = "explore"
    timeout_s: Optional[float] = None
    #: Monotonic deadline derived from ``timeout_s`` (queued jobs past it
    #: are timed out instead of dispatched; see the queue).
    deadline: Optional[float] = None
    submitted_at: float = field(default_factory=time.time)
    state: str = "queued"
    #: How many submissions this job currently serves (coalescing).
    requesters: int = 1
    #: How many of those were coalesced onto an already-in-flight job.
    coalesced: int = 0
    #: Size of the ``run_many`` batch this job was dispatched in.
    batch_size: int = 0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Union[FlowResult, ValidationResult]] = None
    error: Optional[BaseException] = None
    #: Span handoff payload (``repro.obs.trace.context_payload`` shape)
    #: parenting every server-side span of this job; ``None`` when tracing
    #: is off.  The live span object itself lives in ``span`` and is
    #: finished by the queue at the terminal transition.
    trace_context: Optional[Dict[str, object]] = None
    span: Optional[object] = field(default=None, repr=False)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        return self._done.wait(timeout)

    def deadline_remaining(self, now: Optional[float] = None
                           ) -> Optional[float]:
        """Seconds until the job's deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready status view (what ``status``/``submit`` return)."""
        return {
            "job_id": self.id,
            "state": self.state,
            "kind": self.kind,
            "priority": priority_name(self.priority),
            "workload": self.workload.name,
            "kernel_fingerprint": self.workload.kernel_fingerprint,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "requesters": self.requesters,
            "coalesced": self.coalesced,
            "batch_size": self.batch_size,
            "timeout_s": self.timeout_s,
            "trace_id": (None if self.trace_context is None
                         else self.trace_context.get("trace_id")),
            "error": None if self.error is None else str(self.error),
        }

    def raise_if_unsuccessful(self) -> None:
        """Map a terminal non-``done`` state onto the error taxonomy."""
        if self.state == "failed":
            raise JobFailedError(
                f"job {self.id} ({self.workload.name}) failed: "
                f"{self.error}") from self.error
        if self.state == "cancelled":
            raise JobCancelledError(f"job {self.id} was cancelled")
        if self.state == "timeout":
            raise JobTimeoutError(
                f"job {self.id} timed out after {self.timeout_s}s "
                f"in the queue")
