"""Scheduling of cone datapaths.

The throughput estimation of Section 3.3 of the paper "follows the
traditional approach, i.e., summing the delays of the operations included in
each cone" — that is the ASAP critical path computed here.  The pipeline
schedule additionally chops the combinational path into stages that fit the
target clock period, giving the core latency (in cycles) and the initiation
interval of the cone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.dfg import DataflowGraph, DfgNode, NodeKind
from repro.ir.operators import OperatorLibrary, default_library


@dataclass
class Schedule:
    """Result of scheduling a DFG against a clock period."""

    graph_name: str
    clock_period_ns: float
    critical_path_ns: float
    pipeline_stages: int
    latency_cycles: int
    initiation_interval: int
    stage_of_node: Dict[int, int] = field(default_factory=dict)
    pipeline_register_count: int = 0

    @property
    def max_frequency_hz(self) -> float:
        """Highest clock the schedule closes timing at (bounded by one stage)."""
        if self.pipeline_stages <= 0:
            return 0.0
        limiting = self.critical_path_ns / self.pipeline_stages
        limiting = max(limiting, _MIN_STAGE_DELAY_NS)
        return 1e9 / limiting


_MIN_STAGE_DELAY_NS = 1.2   # clock-to-out + setup + routing floor


def _node_delay(node: DfgNode, graph: DataflowGraph,
                library: OperatorLibrary) -> float:
    if node.kind is not NodeKind.OP:
        return 0.0
    assert node.op_kind is not None
    constant = node.has_constant_operand(graph)
    return library.spec_for(node.op_kind, constant_operand=constant).delay_ns


def asap_schedule(graph: DataflowGraph,
                  library: Optional[OperatorLibrary] = None) -> Dict[int, float]:
    """Earliest finish time (ns) of every node assuming unlimited resources."""
    library = library or default_library()
    finish: Dict[int, float] = {}
    for node in graph.topological_order():
        start = max((finish[i] for i in node.operands), default=0.0)
        finish[node.node_id] = start + _node_delay(node, graph, library)
    return finish


def alap_schedule(graph: DataflowGraph,
                  library: Optional[OperatorLibrary] = None) -> Dict[int, float]:
    """Latest start time (ns) of every node for the ASAP-determined length."""
    library = library or default_library()
    finish = asap_schedule(graph, library)
    total = max(finish.values(), default=0.0)
    latest: Dict[int, float] = {}
    for node in reversed(graph.topological_order()):
        user_starts = [latest[u] for u in graph.users_of(node.node_id) if u in latest]
        end = min(user_starts, default=total)
        latest[node.node_id] = end - _node_delay(node, graph, library)
    return latest


def critical_path_ns(graph: DataflowGraph,
                     library: Optional[OperatorLibrary] = None) -> float:
    """Total combinational delay from any input to any output."""
    finish = asap_schedule(graph, library)
    return max(finish.values(), default=0.0)


def pipeline_schedule(graph: DataflowGraph,
                      clock_period_ns: float,
                      library: Optional[OperatorLibrary] = None) -> Schedule:
    """Pipeline the datapath so every stage fits in ``clock_period_ns``.

    Operations are assigned to stages greedily along the ASAP order: a node
    goes to the earliest stage that is no earlier than any of its operands'
    stages and whose accumulated combinational delay stays within the clock
    period.  The number of pipeline registers is the number of DAG edges that
    cross a stage boundary — these registers are part of the register count
    that Equation 1 tracks.
    """
    if clock_period_ns <= 0:
        raise ValueError("clock period must be positive")
    library = library or default_library()

    stage_of: Dict[int, int] = {}
    slack_in_stage: Dict[int, float] = {}
    pipeline_registers = 0

    for node in graph.topological_order():
        delay = _node_delay(node, graph, library)
        if not node.operands:
            stage_of[node.node_id] = 0
            slack_in_stage[node.node_id] = delay
            continue
        operand_stage = max(stage_of[i] for i in node.operands)
        accumulated = max(
            (slack_in_stage[i] for i in node.operands
             if stage_of[i] == operand_stage),
            default=0.0,
        )
        if delay > clock_period_ns:
            # a single operator longer than the clock period occupies several
            # stages on its own (it is internally pipelined by the backend)
            extra = math.ceil(delay / clock_period_ns)
            stage = operand_stage + extra
            accumulated = delay - (extra - 1) * clock_period_ns
        elif accumulated + delay <= clock_period_ns:
            stage = operand_stage
            accumulated = accumulated + delay
        else:
            stage = operand_stage + 1
            accumulated = delay
        stage_of[node.node_id] = stage
        slack_in_stage[node.node_id] = accumulated

    for node in graph.nodes():
        for operand in node.operands:
            crossing = stage_of[node.node_id] - stage_of[operand]
            if crossing > 0:
                pipeline_registers += crossing

    stages = max(stage_of.values(), default=0) + 1
    cp = critical_path_ns(graph, library)
    return Schedule(
        graph_name=graph.name,
        clock_period_ns=clock_period_ns,
        critical_path_ns=cp,
        pipeline_stages=stages,
        latency_cycles=stages,
        initiation_interval=1,
        stage_of_node=stage_of,
        pipeline_register_count=pipeline_registers,
    )
