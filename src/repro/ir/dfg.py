"""Dataflow graph (DFG) of a cone datapath.

The DFG is the hardware-facing view of the cone: inputs are the level-0
window elements the cone reads from the previous level (or from on-chip
memory), constants are kernel coefficients, operation nodes are the
arithmetic units, and outputs are the elements of the cone's output window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.utils.geometry import Offset
from repro.symbolic.expression import (
    Constant,
    Expression,
    FieldSymbol,
    Operation,
    OpKind,
)
from repro.symbolic.cone_expression import ConeExpressions


class NodeKind(enum.Enum):
    INPUT = "input"
    CONST = "const"
    OP = "op"
    OUTPUT = "output"


@dataclass
class DfgNode:
    """One node of the dataflow graph."""

    node_id: int
    kind: NodeKind
    op_kind: Optional[OpKind] = None
    operands: Tuple[int, ...] = ()
    name: str = ""
    value: Optional[float] = None          # for CONST nodes
    #: For INPUT/OUTPUT nodes: the (field, component, offset, level) they carry.
    port: Optional[Tuple[str, int, Offset, int]] = None

    @property
    def is_operation(self) -> bool:
        return self.kind is NodeKind.OP

    def has_constant_operand(self, graph: "DataflowGraph") -> bool:
        return any(graph.node(i).kind is NodeKind.CONST for i in self.operands)


class DataflowGraph:
    """A directed acyclic dataflow graph with stable integer node ids."""

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._nodes: Dict[int, DfgNode] = {}
        self._next_id = 0
        self._outputs: List[int] = []
        self._users: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------ #
    # construction

    def _add(self, node: DfgNode) -> int:
        self._nodes[node.node_id] = node
        self._users.setdefault(node.node_id, set())
        for operand in node.operands:
            self._users.setdefault(operand, set()).add(node.node_id)
        return node.node_id

    def add_input(self, name: str,
                  port: Optional[Tuple[str, int, Offset, int]] = None) -> int:
        node_id = self._next_id
        self._next_id += 1
        return self._add(DfgNode(node_id, NodeKind.INPUT, name=name, port=port))

    def add_const(self, value: float, name: str = "") -> int:
        node_id = self._next_id
        self._next_id += 1
        return self._add(DfgNode(node_id, NodeKind.CONST, value=float(value),
                                 name=name or f"c{node_id}"))

    def add_op(self, op_kind: OpKind, operands: Sequence[int], name: str = "") -> int:
        for operand in operands:
            if operand not in self._nodes:
                raise KeyError(f"operand node {operand} does not exist")
        node_id = self._next_id
        self._next_id += 1
        return self._add(DfgNode(node_id, NodeKind.OP, op_kind=op_kind,
                                 operands=tuple(operands),
                                 name=name or f"{op_kind.value}{node_id}"))

    def add_output(self, source: int, name: str,
                   port: Optional[Tuple[str, int, Offset, int]] = None) -> int:
        if source not in self._nodes:
            raise KeyError(f"source node {source} does not exist")
        node_id = self._next_id
        self._next_id += 1
        out = self._add(DfgNode(node_id, NodeKind.OUTPUT, operands=(source,),
                                name=name, port=port))
        self._outputs.append(node_id)
        return out

    # ------------------------------------------------------------------ #
    # accessors

    def node(self, node_id: int) -> DfgNode:
        return self._nodes[node_id]

    def nodes(self) -> List[DfgNode]:
        return list(self._nodes.values())

    def users_of(self, node_id: int) -> Set[int]:
        return set(self._users.get(node_id, set()))

    @property
    def output_ids(self) -> List[int]:
        return list(self._outputs)

    @property
    def input_nodes(self) -> List[DfgNode]:
        return [n for n in self._nodes.values() if n.kind is NodeKind.INPUT]

    @property
    def const_nodes(self) -> List[DfgNode]:
        return [n for n in self._nodes.values() if n.kind is NodeKind.CONST]

    @property
    def operation_nodes(self) -> List[DfgNode]:
        return [n for n in self._nodes.values() if n.kind is NodeKind.OP]

    @property
    def output_nodes(self) -> List[DfgNode]:
        return [self._nodes[i] for i in self._outputs]

    def operation_count(self) -> int:
        return len(self.operation_nodes)

    def operation_histogram(self) -> Dict[OpKind, int]:
        histogram: Dict[OpKind, int] = {}
        for node in self.operation_nodes:
            assert node.op_kind is not None
            histogram[node.op_kind] = histogram.get(node.op_kind, 0) + 1
        return histogram

    @property
    def register_count(self) -> int:
        """Registers needed with full data reuse: one per op node plus one per input."""
        return len(self.operation_nodes) + len(self.input_nodes)

    # ------------------------------------------------------------------ #
    # traversal

    def topological_order(self) -> List[DfgNode]:
        """Return nodes in dependency order (operands before users)."""
        # count *distinct* operand nodes: a node used twice by the same user
        # (e.g. ``x * x``) still only gates that user once.
        in_degree: Dict[int, int] = {nid: len(set(n.operands))
                                     for nid, n in self._nodes.items()}
        ready = [nid for nid, deg in in_degree.items() if deg == 0]
        ready.sort()
        order: List[DfgNode] = []
        while ready:
            nid = ready.pop()
            order.append(self._nodes[nid])
            for user in sorted(self._users.get(nid, ())):
                in_degree[user] -= 1
                if in_degree[user] == 0:
                    ready.append(user)
        if len(order) != len(self._nodes):
            raise ValueError("dataflow graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants (acyclicity, operand existence, arity)."""
        self.topological_order()
        for node in self._nodes.values():
            if node.kind is NodeKind.OP:
                assert node.op_kind is not None
                if len(node.operands) != node.op_kind.arity:
                    raise ValueError(
                        f"node {node.name}: {node.op_kind.value} expects "
                        f"{node.op_kind.arity} operands, has {len(node.operands)}"
                    )
            if node.kind is NodeKind.OUTPUT and len(node.operands) != 1:
                raise ValueError(f"output node {node.name} must have one source")

    # ------------------------------------------------------------------ #
    # evaluation (functional simulation of the datapath)

    def evaluate(self, input_values: Mapping[str, float]) -> Dict[str, float]:
        """Evaluate the DFG given values for every input node name."""
        values: Dict[int, float] = {}
        from repro.symbolic.expression import _fold_constant

        for node in self.topological_order():
            if node.kind is NodeKind.INPUT:
                if node.name not in input_values:
                    raise KeyError(f"missing value for input {node.name!r}")
                values[node.node_id] = float(input_values[node.name])
            elif node.kind is NodeKind.CONST:
                values[node.node_id] = float(node.value)  # type: ignore[arg-type]
            elif node.kind is NodeKind.OP:
                assert node.op_kind is not None
                operand_values = [values[i] for i in node.operands]
                values[node.node_id] = _fold_constant(node.op_kind, operand_values)
            else:  # OUTPUT
                values[node.node_id] = values[node.operands[0]]
        return {self._nodes[i].name: values[i] for i in self._outputs}


# --------------------------------------------------------------------------- #
# lowering from cone expressions


def _port_name(field: str, component: int, offset: Offset, level: int) -> str:
    comp = f"_c{component}" if component else ""
    level_tag = "in" if level <= 0 else f"l{level}"
    sign = lambda v: f"p{v}" if v >= 0 else f"m{-v}"
    return f"{field}{comp}_{level_tag}_x{sign(offset.dx)}_y{sign(offset.dy)}"


def build_dfg_from_cone(cone: ConeExpressions, name: str = "") -> DataflowGraph:
    """Lower the symbolic expression DAG of a cone into a dataflow graph.

    The lowering preserves sharing exactly: every distinct expression node
    becomes one DFG node, so the register reuse achieved by the symbolic layer
    carries over to the hardware view.
    """
    graph = DataflowGraph(name or f"{cone.kernel_name}_w{cone.domain.window_side}"
                                  f"_d{cone.domain.depth}")
    mapping: Dict[int, int] = {}

    def lower(expr: Expression) -> int:
        cached = mapping.get(expr.node_id)
        if cached is not None:
            return cached
        if isinstance(expr, FieldSymbol):
            node_id = graph.add_input(
                _port_name(expr.field, expr.component, expr.offset, expr.level),
                port=(expr.field, expr.component, expr.offset, expr.level))
        elif isinstance(expr, Constant):
            node_id = graph.add_const(expr.value)
        elif isinstance(expr, Operation):
            operand_ids = [lower(op) for op in expr.operands]
            node_id = graph.add_op(expr.kind, operand_ids)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported expression node {expr!r}")
        mapping[expr.node_id] = node_id
        return node_id

    for (field, component, offset), expr in sorted(
            cone.outputs.items(),
            key=lambda item: (item[0][0], item[0][1], item[0][2].dy, item[0][2].dx)):
        source = lower(expr)
        graph.add_output(
            source,
            name=_port_name(field, component, offset, cone.domain.depth) + "_out",
            port=(field, component, offset, cone.domain.depth))
    graph.validate()
    return graph
