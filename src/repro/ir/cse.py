"""Common-subexpression elimination and dead-code elimination on DFGs.

DFGs lowered from the symbolic layer are already maximally shared (the
expression builder hash-conses every node), so these passes are mostly
useful for graphs built by other frontends — in particular the commercial-HLS
baseline, which deliberately builds the *unshared* graph a generic tool would
schedule — and as a safety net that the register counts used by Equation 1
really are the post-reuse counts.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.dfg import DataflowGraph, DfgNode, NodeKind


def _structural_key(node: DfgNode, remap: Dict[int, int]) -> Tuple:
    operands = tuple(remap[i] for i in node.operands)
    if node.kind is NodeKind.OP:
        assert node.op_kind is not None
        if node.op_kind.is_commutative:
            operands = tuple(sorted(operands))
        return ("op", node.op_kind.value, operands)
    if node.kind is NodeKind.CONST:
        return ("const", node.value)
    if node.kind is NodeKind.INPUT:
        return ("input", node.name)
    return ("output", node.name, operands)


def eliminate_common_subexpressions(graph: DataflowGraph) -> Tuple[DataflowGraph, int]:
    """Return a new graph with structurally identical nodes merged.

    Returns the rewritten graph and the number of nodes eliminated.
    """
    new_graph = DataflowGraph(graph.name + "_cse")
    remap: Dict[int, int] = {}
    canonical: Dict[Tuple, int] = {}
    eliminated = 0

    for node in graph.topological_order():
        key = _structural_key(node, remap)
        if node.kind is not NodeKind.OUTPUT and key in canonical:
            remap[node.node_id] = canonical[key]
            eliminated += 1
            continue
        if node.kind is NodeKind.INPUT:
            new_id = new_graph.add_input(node.name, port=node.port)
        elif node.kind is NodeKind.CONST:
            new_id = new_graph.add_const(node.value or 0.0, name=node.name)
        elif node.kind is NodeKind.OP:
            assert node.op_kind is not None
            new_id = new_graph.add_op(node.op_kind,
                                      [remap[i] for i in node.operands],
                                      name=node.name)
        else:
            new_id = new_graph.add_output(remap[node.operands[0]], node.name,
                                          port=node.port)
        remap[node.node_id] = new_id
        if node.kind is not NodeKind.OUTPUT:
            canonical[key] = new_id

    return new_graph, eliminated


def dead_code_elimination(graph: DataflowGraph) -> Tuple[DataflowGraph, int]:
    """Remove nodes not reachable from any output."""
    live: set = set()
    stack = list(graph.output_ids)
    while stack:
        node_id = stack.pop()
        if node_id in live:
            continue
        live.add(node_id)
        stack.extend(graph.node(node_id).operands)

    new_graph = DataflowGraph(graph.name + "_dce")
    remap: Dict[int, int] = {}
    removed = 0
    for node in graph.topological_order():
        if node.node_id not in live:
            removed += 1
            continue
        if node.kind is NodeKind.INPUT:
            remap[node.node_id] = new_graph.add_input(node.name, port=node.port)
        elif node.kind is NodeKind.CONST:
            remap[node.node_id] = new_graph.add_const(node.value or 0.0, name=node.name)
        elif node.kind is NodeKind.OP:
            assert node.op_kind is not None
            remap[node.node_id] = new_graph.add_op(
                node.op_kind, [remap[i] for i in node.operands], name=node.name)
        else:
            remap[node.node_id] = new_graph.add_output(
                remap[node.operands[0]], node.name, port=node.port)
    return new_graph, removed
