"""Dataflow intermediate representation of cone hardware.

The symbolic expression DAG of a cone is lowered to an explicit dataflow
graph whose nodes carry hardware operator information (delay and resource
cost per data format).  The DFG is what the VHDL generator emits and what the
synthesis simulator maps onto the FPGA fabric.
"""

from repro.ir.operators import (
    DataFormat,
    OperatorSpec,
    OperatorLibrary,
    ResourceVector,
    default_library,
)
from repro.ir.dfg import DfgNode, NodeKind, DataflowGraph, build_dfg_from_cone
from repro.ir.cse import eliminate_common_subexpressions, dead_code_elimination
from repro.ir.scheduling import (
    Schedule,
    asap_schedule,
    alap_schedule,
    pipeline_schedule,
    critical_path_ns,
)

__all__ = [
    "DataFormat",
    "OperatorSpec",
    "OperatorLibrary",
    "ResourceVector",
    "default_library",
    "DfgNode",
    "NodeKind",
    "DataflowGraph",
    "build_dfg_from_cone",
    "eliminate_common_subexpressions",
    "dead_code_elimination",
    "Schedule",
    "asap_schedule",
    "alap_schedule",
    "pipeline_schedule",
    "critical_path_ns",
]
