"""Hardware operator catalog: delay and resource cost of each operation.

The numbers model a Xilinx Virtex-6-class fabric (6-input LUTs, 25x18 DSP48E1
slices) for fixed-point arithmetic, which is what hand-optimised ISL
implementations on FPGAs use (the manual Chambolle design of Akin et al. is a
fixed-point architecture).  The catalog distinguishes multiplication by a
*constant* (implemented as shift-and-add networks, no DSP) from full
multiplication, because stencil kernels are dominated by constant
coefficients and synthesis tools exploit that aggressively.

The absolute values are a model, not a datasheet; the flow only relies on
them being *consistent* between the estimation path and the synthesis
simulator, which is exactly the situation of the paper (both its Eq. 1 model
and its reference syntheses target the same backend tool).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.symbolic.expression import OpKind


class DataFormat(enum.Enum):
    """Datapath number formats supported by the generated cones."""

    FIXED16 = "fixed16"
    FIXED32 = "fixed32"
    FLOAT32 = "float32"

    @property
    def width(self) -> int:
        if self is DataFormat.FIXED16:
            return 16
        return 32

    @property
    def bytes(self) -> int:
        return self.width // 8


@dataclass(frozen=True)
class ResourceVector:
    """FPGA resource usage: LUTs, flip-flops, DSP slices, block RAMs (in 18Kb units)."""

    luts: float = 0.0
    ffs: float = 0.0
    dsps: float = 0.0
    brams: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.luts + other.luts, self.ffs + other.ffs,
                              self.dsps + other.dsps, self.brams + other.brams)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.luts - other.luts, self.ffs - other.ffs,
                              self.dsps - other.dsps, self.brams - other.brams)

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(self.luts * factor, self.ffs * factor,
                              self.dsps * factor, self.brams * factor)

    def __mul__(self, factor: float) -> "ResourceVector":
        return self.scale(factor)

    __rmul__ = __mul__

    def fits_in(self, other: "ResourceVector") -> bool:
        """True when this usage fits inside the capacity ``other``."""
        return (self.luts <= other.luts and self.ffs <= other.ffs
                and self.dsps <= other.dsps and self.brams <= other.brams)

    def utilisation(self, capacity: "ResourceVector") -> float:
        """Fraction of the binding resource this usage occupies in ``capacity``."""
        ratios = []
        for used, avail in ((self.luts, capacity.luts), (self.ffs, capacity.ffs),
                            (self.dsps, capacity.dsps), (self.brams, capacity.brams)):
            if avail > 0:
                ratios.append(used / avail)
            elif used > 0:
                ratios.append(float("inf"))
        return max(ratios) if ratios else 0.0

    def __str__(self) -> str:
        return (f"{self.luts:.0f} LUT, {self.ffs:.0f} FF, "
                f"{self.dsps:.0f} DSP, {self.brams:.1f} BRAM")


@dataclass(frozen=True)
class OperatorSpec:
    """Delay and cost of one hardware operator for a given data format."""

    kind: OpKind
    delay_ns: float
    resources: ResourceVector
    is_constant_operand: bool = False

    def with_delay(self, delay_ns: float) -> "OperatorSpec":
        return OperatorSpec(self.kind, delay_ns, self.resources,
                            self.is_constant_operand)


def _fixed_catalog(width: int) -> Dict[str, OperatorSpec]:
    """Build the operator catalog for a fixed-point datapath of ``width`` bits.

    Delays are LUT-level combinational delays on a -2 speed grade Virtex-6
    style fabric; costs scale with the operand width.  ``*_const`` entries are
    used when one operand is a literal coefficient.
    """
    w = width
    lut_per_bit_add = 1.0
    mul_full_luts = 0.55 * w * w / 2.0        # LUT-based multiplier fallback
    mul_const_luts = 3.8 * w                  # shift-add network
    div_luts = 0.50 * w * w                   # Newton-Raphson reciprocal-multiply divider
    sqrt_luts = 0.40 * w * w                  # non-restoring square root
    catalog = {
        "add": OperatorSpec(OpKind.ADD, 1.6 + 0.02 * w,
                            ResourceVector(luts=lut_per_bit_add * w, ffs=w)),
        "sub": OperatorSpec(OpKind.SUB, 1.6 + 0.02 * w,
                            ResourceVector(luts=lut_per_bit_add * w, ffs=w)),
        "mul": OperatorSpec(OpKind.MUL, 3.2 + 0.03 * w,
                            ResourceVector(luts=mul_full_luts, ffs=2 * w, dsps=1)),
        "mul_const": OperatorSpec(OpKind.MUL, 2.4 + 0.02 * w,
                                  ResourceVector(luts=mul_const_luts, ffs=w),
                                  is_constant_operand=True),
        "div": OperatorSpec(OpKind.DIV, 5.2 + 0.06 * w,
                            ResourceVector(luts=div_luts, ffs=2 * w)),
        "div_const": OperatorSpec(OpKind.DIV, 2.6 + 0.02 * w,
                                  ResourceVector(luts=mul_const_luts, ffs=w),
                                  is_constant_operand=True),
        "min": OperatorSpec(OpKind.MIN, 1.8 + 0.02 * w,
                            ResourceVector(luts=1.5 * w, ffs=w)),
        "max": OperatorSpec(OpKind.MAX, 1.8 + 0.02 * w,
                            ResourceVector(luts=1.5 * w, ffs=w)),
        "abs": OperatorSpec(OpKind.ABS, 1.4 + 0.01 * w,
                            ResourceVector(luts=1.0 * w, ffs=w)),
        "sqrt": OperatorSpec(OpKind.SQRT, 6.0 + 0.08 * w,
                             ResourceVector(luts=sqrt_luts, ffs=2 * w)),
        "cmp": OperatorSpec(OpKind.CMP_LT, 1.5 + 0.01 * w,
                            ResourceVector(luts=0.8 * w, ffs=1)),
        "select": OperatorSpec(OpKind.SELECT, 1.2 + 0.01 * w,
                               ResourceVector(luts=0.5 * w, ffs=w)),
    }
    return catalog


def _float_catalog() -> Dict[str, OperatorSpec]:
    """Single-precision floating point operators (used by the HLS baselines)."""
    return {
        "add": OperatorSpec(OpKind.ADD, 9.0, ResourceVector(luts=420, ffs=450, dsps=0)),
        "sub": OperatorSpec(OpKind.SUB, 9.0, ResourceVector(luts=420, ffs=450, dsps=0)),
        "mul": OperatorSpec(OpKind.MUL, 8.0, ResourceVector(luts=160, ffs=200, dsps=3)),
        "mul_const": OperatorSpec(OpKind.MUL, 8.0,
                                  ResourceVector(luts=160, ffs=200, dsps=3),
                                  is_constant_operand=True),
        "div": OperatorSpec(OpKind.DIV, 28.0, ResourceVector(luts=800, ffs=900)),
        "div_const": OperatorSpec(OpKind.DIV, 8.0,
                                  ResourceVector(luts=160, ffs=200, dsps=3),
                                  is_constant_operand=True),
        "min": OperatorSpec(OpKind.MIN, 4.0, ResourceVector(luts=80, ffs=40)),
        "max": OperatorSpec(OpKind.MAX, 4.0, ResourceVector(luts=80, ffs=40)),
        "abs": OperatorSpec(OpKind.ABS, 1.0, ResourceVector(luts=2, ffs=32)),
        "sqrt": OperatorSpec(OpKind.SQRT, 26.0, ResourceVector(luts=600, ffs=650)),
        "cmp": OperatorSpec(OpKind.CMP_LT, 4.0, ResourceVector(luts=70, ffs=1)),
        "select": OperatorSpec(OpKind.SELECT, 1.5, ResourceVector(luts=16, ffs=32)),
    }


class OperatorLibrary:
    """Lookup of :class:`OperatorSpec` by operation kind and operand constness."""

    def __init__(self, data_format: DataFormat,
                 catalog: Optional[Dict[str, OperatorSpec]] = None) -> None:
        self.data_format = data_format
        if catalog is None:
            if data_format is DataFormat.FLOAT32:
                catalog = _float_catalog()
            else:
                catalog = _fixed_catalog(data_format.width)
        self._catalog = catalog

    def spec_for(self, kind: OpKind, constant_operand: bool = False) -> OperatorSpec:
        """Return the operator spec; constant-operand variants where they exist."""
        if kind in (OpKind.ADD,):
            return self._catalog["add"]
        if kind is OpKind.SUB or kind is OpKind.NEG:
            return self._catalog["sub"]
        if kind is OpKind.MUL:
            return self._catalog["mul_const" if constant_operand else "mul"]
        if kind is OpKind.DIV:
            return self._catalog["div_const" if constant_operand else "div"]
        if kind is OpKind.MIN:
            return self._catalog["min"]
        if kind is OpKind.MAX:
            return self._catalog["max"]
        if kind is OpKind.ABS:
            return self._catalog["abs"]
        if kind is OpKind.SQRT:
            return self._catalog["sqrt"]
        if kind.is_comparison:
            return self._catalog["cmp"]
        if kind is OpKind.SELECT:
            return self._catalog["select"]
        raise KeyError(f"no operator spec for {kind!r}")

    @property
    def register_resources(self) -> ResourceVector:
        """Cost of one datapath register (the ``Size_reg`` of Equation 1)."""
        width = self.data_format.width
        # A register occupies FFs plus the routing/packing LUT overhead the
        # synthesis backend attributes to it.
        return ResourceVector(luts=0.25 * width, ffs=width)


def default_library(data_format: DataFormat = DataFormat.FIXED32) -> OperatorLibrary:
    """The operator library used throughout the paper reproduction."""
    return OperatorLibrary(data_format)
