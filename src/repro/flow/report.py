"""Textual reports of flow results: the rows behind each figure of the paper."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.dse.design_point import DesignPoint
from repro.dse.explorer import ExplorationResult
from repro.estimation.area_model import AreaModelValidation
from repro.utils.tables import Table, format_si


def pareto_table(points: Sequence[DesignPoint],
                 title: str = "Pareto-optimal architectures") -> Table:
    """Tabulate a Pareto set the way Figures 6 / 9 plot it."""
    table = Table(["label", "window", "levels", "cones", "kLUTs",
                   "ms/frame", "fps", "fits device"], title=title)
    for point in points:
        architecture = point.architecture
        table.add_row([
            point.label,
            f"{architecture.window_side}x{architecture.window_side}",
            "+".join(str(d) for d in architecture.level_depths),
            point.cone_count,
            round(point.kilo_luts, 1),
            round(point.seconds_per_frame * 1e3, 3),
            round(point.frames_per_second, 2),
            "yes" if point.fits_device else "no",
        ])
    return table


def area_validation_table(validations: Dict[int, AreaModelValidation],
                          title: str = "Area estimation accuracy (Equation 1)") -> Table:
    """Tabulate estimated-vs-actual area errors per cone depth (Figures 5 / 8)."""
    table = Table(["depth", "points", "max error %", "mean error %"], title=title)
    for depth in sorted(validations):
        validation = validations[depth]
        table.add_row([
            depth,
            len(validation.entries),
            round(validation.max_error_percent, 2),
            round(validation.mean_error_percent, 2),
        ])
    return table


def throughput_table(result: ExplorationResult,
                     depths: Optional[Iterable[int]] = None,
                     title: str = "Best throughput per window area and depth") -> Table:
    """Tabulate the best fps per (window area, depth) as in Figures 7 / 10."""
    selected = sorted(set(depths)) if depths is not None else sorted(
        {p.primary_depth for p in result.design_points})
    windows = sorted({p.architecture.window_side for p in result.design_points})
    table = Table(["window area"] + [f"depth {d} (fps)" for d in selected],
                  title=title)
    for window in windows:
        row: List[object] = [window * window]
        for depth in selected:
            candidates = [p for p in result.design_points
                          if p.architecture.window_side == window
                          and p.primary_depth == depth and p.fits_device]
            row.append(round(max((p.frames_per_second for p in candidates),
                                 default=0.0), 2))
        table.add_row(row)
    return table


def flow_summary(result: ExplorationResult) -> str:
    """One-paragraph summary of an exploration run."""
    best = result.best_fitting_point()
    lines = [
        f"kernel {result.kernel_name}: {result.total_iterations} iterations on a "
        f"{result.frame_width}x{result.frame_height} frame, device {result.device_name}",
        f"  design points evaluated : {len(result.design_points)}",
        f"  Pareto-optimal points   : {len(result.pareto)}",
        f"  synthesis runs performed: {result.synthesis_runs} "
        f"(avoided {result.synthesis_runs_avoided}, "
        f"saving ~{format_si(result.tool_runtime_avoided_s, 's')} of tool time)",
    ]
    if best is not None:
        lines.append(
            f"  best architecture on device: {best.label} at "
            f"{best.frames_per_second:.2f} fps using {best.kilo_luts:.1f} kLUTs")
    errors = [v.max_error_percent for v in result.area_validations.values()
              if v.entries]
    if errors:
        lines.append(f"  area model max error      : {max(errors):.2f}%")
    return "\n".join(lines)
