"""End-to-end flow orchestration (Figure 2 of the paper)."""

from repro.flow.hls_flow import HlsFlow, FlowOptions, FlowResult
from repro.flow.report import (
    pareto_table,
    area_validation_table,
    throughput_table,
    flow_summary,
)

__all__ = [
    "HlsFlow",
    "FlowOptions",
    "FlowResult",
    "pareto_table",
    "area_validation_table",
    "throughput_table",
    "flow_summary",
]
