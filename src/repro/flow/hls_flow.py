"""Backwards-compatible driver for the end-to-end HLS flow (Figure 2).

The flow itself now lives in :mod:`repro.api` as a composable pipeline
(:class:`repro.api.Workload` → :class:`repro.api.Pipeline` inside a caching
:class:`repro.api.Session`).  ``HlsFlow`` and ``FlowOptions`` are kept as
thin shims over that API so existing call sites keep working unchanged:

* ``FlowOptions`` / ``FlowResult`` are re-exported from
  :mod:`repro.api.results`;
* ``HlsFlow`` wraps a private session, so repeated ``run()`` calls reuse the
  cached characterization — including across mutations of ``flow.options``
  that leave the cone shapes unchanged (e.g. a new frame size), exactly the
  cases the old per-instance explorer cache covered.

New code should prefer::

    from repro.api import Session, Workload
    result = Session().run(Workload.from_algorithm("blur"))
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.api.pipeline import generate_vhdl_files
from repro.api.results import FlowOptions, FlowResult
from repro.api.session import Session
from repro.api.workload import Workload
from repro.dse.design_point import DesignPoint
from repro.dse.explorer import DesignSpaceExplorer
from repro.frontend.extractor import extract_kernel_from_c
from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import validate_kernel
from repro.symbolic.invariance import verify_kernel

__all__ = ["HlsFlow", "FlowOptions", "FlowResult"]


class HlsFlow:
    """Drives the whole flow for one ISL algorithm (legacy surface)."""

    def __init__(self, kernel_or_c_source: Union[StencilKernel, str],
                 options: Optional[FlowOptions] = None,
                 params: Optional[Mapping[str, float]] = None,
                 c_function_name: Optional[str] = None) -> None:
        if isinstance(kernel_or_c_source, StencilKernel):
            self.kernel = kernel_or_c_source
        else:
            self.kernel = extract_kernel_from_c(kernel_or_c_source,
                                                function_name=c_function_name,
                                                scalar_params=params)
        self.options = options or FlowOptions()
        self.params = dict(params) if params else None
        # Same eager checks (and exception types) as the historical
        # constructor: KernelValidationError for structural violations,
        # ValueError for kernels outside the ISL class.
        self.properties = validate_kernel(self.kernel)
        self.invariance = verify_kernel(self.kernel)
        if not self.invariance.is_isl:
            raise ValueError(
                f"kernel {self.kernel.name!r} is outside the ISL class the "
                f"flow targets: {self.invariance.detail}"
            )
        self._session = Session()

    # ------------------------------------------------------------------ #

    def _workload(self) -> Workload:
        """Snapshot the current options/params into a workload.

        Rebuilt per call so post-construction mutation of ``flow.options``
        or ``flow.params`` takes effect, as it did with the old driver.
        """
        return Workload.from_options(self.kernel, self.options,
                                     params=self.params)

    @property
    def explorer(self) -> DesignSpaceExplorer:
        return self._session.explorer_for(self._workload())

    def run(self) -> FlowResult:
        """Execute dependency analysis, estimation, exploration and Pareto
        extraction.

        Each call returns a fresh result with freshly built design-point and
        Pareto lists (as the old driver did), so reordering or filtering a
        result in place never leaks into a later run.  The characterization
        table inside ``result.exploration`` remains shared with the cache —
        exactly as in the old driver — so treat those entries as read-only.
        """
        workload = self._workload()
        # seed the pipeline with the frontend/analysis artifacts already
        # computed eagerly in the constructor, so they are not recomputed
        pipeline = self._session.pipeline(workload)
        pipeline.artifacts.setdefault("frontend", self.kernel)
        pipeline.artifacts.setdefault("analyze", {
            "properties": self.properties, "invariance": self.invariance})
        # pay (or reuse) the characterization through the session, then build
        # a fresh exploration on top of it — one explore per call
        self._session.run(workload, until="characterize")
        exploration = self._session.explorer_for(workload).explore(
            total_iterations=workload.iterations,
            frame_width=workload.frame_width,
            frame_height=workload.frame_height,
            constraints=workload.constraints,
            onchip_port_elements_per_cycle=(
                workload.onchip_port_elements_per_cycle),
        )
        return FlowResult(
            kernel=self.kernel,
            properties=self.properties,
            invariance=self.invariance,
            exploration=exploration,
            options=self.options,
        )

    # ------------------------------------------------------------------ #
    # hardware generation

    def generate_vhdl(self, point: DesignPoint,
                      fractional_bits: int = 12) -> Dict[str, str]:
        """Generate the VHDL of every cone of a design point plus the top
        level.

        Returns a mapping ``file name -> VHDL source`` (the support package,
        one entity per cone depth, and the structural top level).
        """
        return generate_vhdl_files(
            kernel=self.kernel,
            params=self.params,
            data_format=self.options.data_format,
            point=point,
            fractional_bits=fractional_bits,
        )
