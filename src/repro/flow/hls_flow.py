"""The end-to-end HLS flow (Figure 2 of the paper).

``HlsFlow`` wires the pieces together:

1. frontend — accept a C source or an already-built kernel, verify the ISL
   properties (domain narrowness, translation invariance);
2. dependency analysis & cone identification — symbolic execution with
   register reuse (:mod:`repro.symbolic`);
3. performance and area estimation + design-space exploration
   (:mod:`repro.estimation`, :mod:`repro.dse`);
4. Pareto-set extraction;
5. hardware generation — synthesizable VHDL for the cones of any selected
   design point (:mod:`repro.codegen`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.architecture.template import ConeArchitecture
from repro.codegen.vhdl_toplevel import generate_architecture_toplevel
from repro.codegen.vhdl_writer import FIXED_POINT_PACKAGE, VhdlModule, VhdlWriter
from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.frontend.extractor import extract_kernel_from_c
from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import KernelProperties, validate_kernel
from repro.ir.dfg import build_dfg_from_cone
from repro.ir.operators import DataFormat
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.symbolic.invariance import InvarianceReport, verify_kernel
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760


@dataclass(frozen=True)
class FlowOptions:
    """User-tunable knobs of the flow."""

    device: FpgaDevice = VIRTEX6_XC6VLX760
    data_format: DataFormat = DataFormat.FIXED16
    frame_width: int = 1024
    frame_height: int = 768
    iterations: int = 10
    window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9)
    max_depth: int = 5
    max_cones_per_depth: int = 16
    calibration_windows_per_depth: int = 2
    synthesize_all: bool = False
    onchip_port_elements_per_cycle: int = 16
    constraints: Optional[DseConstraints] = None


@dataclass
class FlowResult:
    """Everything the flow produces for one algorithm."""

    kernel: StencilKernel
    properties: KernelProperties
    invariance: InvarianceReport
    exploration: ExplorationResult
    options: FlowOptions

    @property
    def pareto(self) -> List[DesignPoint]:
        return self.exploration.pareto

    @property
    def design_points(self) -> List[DesignPoint]:
        return self.exploration.design_points

    def best_fitting_point(self) -> Optional[DesignPoint]:
        return self.exploration.best_fitting_point()

    def fastest_point(self) -> DesignPoint:
        return min(self.design_points, key=lambda p: p.seconds_per_frame)

    def smallest_point(self) -> DesignPoint:
        return min(self.design_points, key=lambda p: p.area_luts)


class HlsFlow:
    """Drives the whole flow for one ISL algorithm."""

    def __init__(self, kernel_or_c_source: Union[StencilKernel, str],
                 options: Optional[FlowOptions] = None,
                 params: Optional[Mapping[str, float]] = None,
                 c_function_name: Optional[str] = None) -> None:
        if isinstance(kernel_or_c_source, StencilKernel):
            self.kernel = kernel_or_c_source
        else:
            self.kernel = extract_kernel_from_c(kernel_or_c_source,
                                                function_name=c_function_name,
                                                scalar_params=params)
        self.options = options or FlowOptions()
        self.params = dict(params) if params else None
        self.properties = validate_kernel(self.kernel)
        self.invariance = verify_kernel(self.kernel)
        if not self.invariance.is_isl:
            raise ValueError(
                f"kernel {self.kernel.name!r} is outside the ISL class the flow "
                f"targets: {self.invariance.detail}"
            )
        self._explorer: Optional[DesignSpaceExplorer] = None

    # ------------------------------------------------------------------ #

    @property
    def explorer(self) -> DesignSpaceExplorer:
        if self._explorer is None:
            options = self.options
            self._explorer = DesignSpaceExplorer(
                kernel=self.kernel,
                device=options.device,
                data_format=options.data_format,
                window_sides=options.window_sides,
                max_depth=options.max_depth,
                max_cones_per_depth=options.max_cones_per_depth,
                calibration_windows_per_depth=options.calibration_windows_per_depth,
                synthesize_all=options.synthesize_all,
                onchip_port_elements_per_cycle=options.onchip_port_elements_per_cycle,
                params=self.params,
            )
        return self._explorer

    def run(self) -> FlowResult:
        """Execute dependency analysis, estimation, exploration and Pareto extraction."""
        options = self.options
        exploration = self.explorer.explore(
            total_iterations=options.iterations,
            frame_width=options.frame_width,
            frame_height=options.frame_height,
            constraints=options.constraints,
        )
        return FlowResult(
            kernel=self.kernel,
            properties=self.properties,
            invariance=self.invariance,
            exploration=exploration,
            options=options,
        )

    # ------------------------------------------------------------------ #
    # hardware generation

    def generate_vhdl(self, point: DesignPoint,
                      fractional_bits: int = 12) -> Dict[str, str]:
        """Generate the VHDL of every cone of a design point plus the top level.

        Returns a mapping ``file name -> VHDL source`` (the support package,
        one entity per cone depth, and the structural top level).
        """
        architecture = point.architecture
        builder = ConeExpressionBuilder(self.kernel, self.params)
        writer = VhdlWriter(data_format=self.options.data_format,
                            fractional_bits=fractional_bits)
        files: Dict[str, str] = {"isl_fixed_pkg.vhd": FIXED_POINT_PACKAGE}
        entity_names: Dict[int, str] = {}
        for depth in architecture.distinct_depths:
            cone = builder.build(architecture.window_side, depth)
            dfg = build_dfg_from_cone(cone)
            module = writer.generate(dfg)
            entity_names[depth] = module.entity_name
            files[f"{module.entity_name}.vhd"] = module.code
        files[f"{architecture.label()}_top.vhd"] = generate_architecture_toplevel(
            architecture, entity_names, data_width=self.options.data_format.width)
        return files
