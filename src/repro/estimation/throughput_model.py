"""Throughput and latency estimation of cone architectures.

Following Section 3.3 of the paper, the throughput of an architecture is
obtained by (1) taking the latency of each cone from the scheduled datapath
(the sum of operator delays along its pipeline), (2) counting how many cone
executions each level of the template performs for one output tile and how
many physical cones serve them in parallel, and (3) accounting for the memory
system: each execution must be fed its input window through the on-chip
buffer ports, and each tile must move its input region / output window
to and from off-chip memory, overlapped with computation by double buffering.

The transaction-level simulator in
:mod:`repro.simulation.cone_simulator` applies the same accounting tile by
tile; the two are cross-checked in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.architecture.template import ConeArchitecture
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760


@dataclass(frozen=True)
class ConePerformance:
    """Timing characteristics of one cone module (from scheduling or estimation)."""

    depth: int
    window_side: int
    latency_cycles: int
    initiation_interval: int = 1

    @property
    def label(self) -> str:
        return f"w{self.window_side}d{self.depth}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {"depth": self.depth, "window_side": self.window_side,
                "latency_cycles": self.latency_cycles,
                "initiation_interval": self.initiation_interval}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConePerformance":
        return cls(depth=data["depth"], window_side=data["window_side"],
                   latency_cycles=data["latency_cycles"],
                   initiation_interval=data.get("initiation_interval", 1))


@dataclass(frozen=True)
class ArchitecturePerformance:
    """Estimated frame-level performance of one architecture."""

    architecture_label: str
    clock_hz: float
    tiles_per_frame: int
    compute_cycles_per_tile: float
    transfer_cycles_per_tile: float
    cycles_per_tile: float
    seconds_per_frame: float
    frames_per_second: float
    offchip_bytes_per_frame: float
    compute_bound: bool

    @property
    def throughput_pixels_per_second(self) -> float:
        return self.frames_per_second * self.tiles_per_frame

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "architecture_label": self.architecture_label,
            "clock_hz": self.clock_hz,
            "tiles_per_frame": self.tiles_per_frame,
            "compute_cycles_per_tile": self.compute_cycles_per_tile,
            "transfer_cycles_per_tile": self.transfer_cycles_per_tile,
            "cycles_per_tile": self.cycles_per_tile,
            "seconds_per_frame": self.seconds_per_frame,
            "frames_per_second": self.frames_per_second,
            "offchip_bytes_per_frame": self.offchip_bytes_per_frame,
            "compute_bound": self.compute_bound,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ArchitecturePerformance":
        return cls(
            architecture_label=data["architecture_label"],
            clock_hz=data["clock_hz"],
            tiles_per_frame=data["tiles_per_frame"],
            compute_cycles_per_tile=data["compute_cycles_per_tile"],
            transfer_cycles_per_tile=data["transfer_cycles_per_tile"],
            cycles_per_tile=data["cycles_per_tile"],
            seconds_per_frame=data["seconds_per_frame"],
            frames_per_second=data["frames_per_second"],
            offchip_bytes_per_frame=data["offchip_bytes_per_frame"],
            compute_bound=data["compute_bound"],
        )


class ThroughputModel:
    """Estimates seconds-per-frame for a cone architecture on a device."""

    def __init__(self, device: FpgaDevice = VIRTEX6_XC6VLX760,
                 data_format: DataFormat = DataFormat.FIXED32,
                 readonly_components: int = 0,
                 onchip_port_elements_per_cycle: int = 16,
                 tile_overhead_cycles: float = 24.0) -> None:
        self.device = device
        self.data_format = data_format
        self.readonly_components = readonly_components
        #: Elements per cycle each cone instance can pull from its on-chip
        #: input buffer (block-RAM port width assigned to the instance).
        self.onchip_port_elements_per_cycle = onchip_port_elements_per_cycle
        #: Fixed per-tile control overhead (address generation, handshaking).
        self.tile_overhead_cycles = tile_overhead_cycles

    # ------------------------------------------------------------------ #

    @property
    def bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed per datapath clock cycle."""
        return self.device.offchip_bandwidth_bytes_per_s / self.device.typical_clock_hz

    def execution_interval_cycles(self, architecture: ConeArchitecture,
                                  depth: int,
                                  performance: ConePerformance) -> float:
        """Cycles between successive executions of one cone instance.

        Bounded below by the datapath initiation interval and by the time
        needed to feed the execution's input window through the instance's
        on-chip buffer port.
        """
        geometry = architecture.geometry(depth)
        feed = math.ceil(geometry.input_elements
                         / self.onchip_port_elements_per_cycle)
        return float(max(performance.initiation_interval, feed))

    def compute_cycles_per_tile(self, architecture: ConeArchitecture,
                                cone_performance: Mapping[int, ConePerformance]) -> float:
        """Cycles the cone cascade spends computing one output tile.

        Executions of the same depth are served by the available physical
        instances; consecutive levels are dependent, so each level contributes
        its pipeline fill latency once plus one execution interval per
        serialised execution batch.  (Thin scalar wrapper over the batch
        accumulation — one formula.)
        """
        primary = max(architecture.level_depths)
        counts = np.asarray([architecture.cone_counts.get(primary, 1)],
                            dtype=np.int64)
        return float(self._compute_cycles_batch(architecture, cone_performance,
                                                counts)[0])

    def _compute_cycles_batch(self, architecture: ConeArchitecture,
                              cone_performance: Mapping[int, ConePerformance],
                              primary_counts: "np.ndarray") -> "np.ndarray":
        """Per-tile compute cycles over the primary-cone instance-count axis.

        Every architecture of one (window, level-split) group differs only in
        the instance count of the primary (deepest) cone, so the per-level
        accumulation runs once with the primary level's serialisation factor
        vectorized over ``primary_counts``.  Level contributions are added in
        level order, mirroring the scalar accumulation addition for addition
        (bit-identical results).
        """
        primary = max(architecture.level_depths)
        executions_per_level = architecture.executions_per_level()
        cycles = np.zeros(primary_counts.size, dtype=np.float64)
        for level_index, depth in enumerate(architecture.level_depths):
            perf = cone_performance.get(depth)
            if perf is None:
                raise KeyError(f"no cone performance data for depth {depth}")
            executions = executions_per_level[level_index]
            interval = self.execution_interval_cycles(architecture, depth, perf)
            if depth == primary:
                serialised = np.ceil(executions
                                     / np.maximum(primary_counts, 1))
            else:
                instances = architecture.cone_counts.get(depth, 1)
                serialised = math.ceil(executions / max(1, instances))
            cycles += perf.latency_cycles + serialised * interval
        return cycles

    def transfer_cycles_per_tile(self, architecture: ConeArchitecture) -> Tuple[float, float]:
        """(cycles, bytes) of off-chip traffic for one output tile."""
        read_elements, written_elements = architecture.offchip_elements_per_tile(
            readonly_components=self.readonly_components)
        bytes_moved = (read_elements + written_elements) * self.data_format.bytes
        return bytes_moved / self.bytes_per_cycle, bytes_moved

    def tiles_per_frame(self, architecture: ConeArchitecture,
                        frame_width: int, frame_height: int) -> int:
        side = architecture.window_side
        return math.ceil(frame_width / side) * math.ceil(frame_height / side)

    # ------------------------------------------------------------------ #

    def estimate_batch(self, architecture: ConeArchitecture,
                       cone_performance: Mapping[int, ConePerformance],
                       frame_width: int, frame_height: int,
                       primary_counts: "np.ndarray") -> Dict[str, Any]:
        """Vectorized :meth:`evaluate` over the primary-cone count axis.

        ``architecture`` is any member of a (window, level-split) group —
        its primary (deepest) cone count is overridden element-wise by
        ``primary_counts`` while every other depth keeps the architecture's
        own instance count.  Returns a dict of parallel columns: per-count
        arrays for the count-dependent figures (``compute_cycles_per_tile``,
        ``cycles_per_tile``, ``seconds_per_frame``, ``frames_per_second``,
        ``compute_bound``) and plain scalars for the group-constant ones
        (``architecture_label``, ``clock_hz``, ``tiles_per_frame``,
        ``transfer_cycles_per_tile``, ``offchip_bytes_per_frame``).

        This is the single implementation of the frame-level model: the
        scalar :meth:`evaluate` delegates here with a one-element count
        axis, so batch and scalar figures are bit-identical by construction.
        """
        primary_counts = np.asarray(primary_counts, dtype=np.int64)
        if primary_counts.ndim != 1:
            raise ValueError("primary_counts must be a 1-D integer array")
        compute = self._compute_cycles_batch(architecture, cone_performance,
                                             primary_counts)
        return self._assemble_columns(architecture, compute,
                                      frame_width, frame_height)

    def _assemble_columns(self, architecture: ConeArchitecture,
                          compute: "np.ndarray", frame_width: int,
                          frame_height: int) -> Dict[str, Any]:
        """Frame-level assembly shared by the scalar and batch paths: turn
        per-tile compute cycles (any count axis) into the full column dict."""
        transfer, bytes_per_tile = self.transfer_cycles_per_tile(architecture)
        per_tile = np.maximum(compute, transfer) + self.tile_overhead_cycles
        tiles = self.tiles_per_frame(architecture, frame_width, frame_height)
        clock = self.device.typical_clock_hz
        seconds_per_frame = per_tile * tiles / clock
        positive = seconds_per_frame > 0
        frames_per_second = np.divide(
            1.0, seconds_per_frame,
            out=np.zeros_like(seconds_per_frame), where=positive)
        return {
            "architecture_label": architecture.label(),
            "clock_hz": clock,
            "tiles_per_frame": tiles,
            "compute_cycles_per_tile": compute,
            "transfer_cycles_per_tile": transfer,
            "cycles_per_tile": per_tile,
            "seconds_per_frame": seconds_per_frame,
            "frames_per_second": frames_per_second,
            "offchip_bytes_per_frame": bytes_per_tile * tiles,
            "compute_bound": compute >= transfer,
        }

    def evaluate(self, architecture: ConeArchitecture,
                 cone_performance: Mapping[int, ConePerformance],
                 frame_width: int, frame_height: int) -> ArchitecturePerformance:
        """Estimate the frame rate of ``architecture`` on the given frame size.

        Calls the public :meth:`compute_cycles_per_tile` hook (so a subclass
        override of it is honored, exactly as before the columnar refactor)
        and shares the frame-level assembly with :meth:`estimate_batch` —
        one formula either way.
        """
        compute = np.asarray([self.compute_cycles_per_tile(architecture,
                                                           cone_performance)],
                             dtype=np.float64)
        columns = self._assemble_columns(architecture, compute,
                                         frame_width, frame_height)
        return performance_from_columns(columns, 0)


def performance_from_columns(columns: Mapping[str, Any],
                             index: int) -> ArchitecturePerformance:
    """Materialize one :class:`ArchitecturePerformance` from a column dict
    produced by :meth:`ThroughputModel.estimate_batch` (NumPy scalars are
    converted to plain Python values, preserving their bits)."""
    return ArchitecturePerformance(
        architecture_label=columns["architecture_label"],
        clock_hz=columns["clock_hz"],
        tiles_per_frame=columns["tiles_per_frame"],
        compute_cycles_per_tile=float(columns["compute_cycles_per_tile"][index]),
        transfer_cycles_per_tile=columns["transfer_cycles_per_tile"],
        cycles_per_tile=float(columns["cycles_per_tile"][index]),
        seconds_per_frame=float(columns["seconds_per_frame"][index]),
        frames_per_second=float(columns["frames_per_second"][index]),
        offchip_bytes_per_frame=columns["offchip_bytes_per_frame"],
        compute_bound=bool(columns["compute_bound"][index]),
    )
