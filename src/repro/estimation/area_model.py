"""The register-based incremental area model (Equation 1 of the paper).

    A_est(i) = A_est(i-1) + (Reg_i - Reg_{i-1}) * Size_reg * alpha

``Reg_i`` is the number of registers of the cone with output window size
``i`` — known as soon as the VHDL is generated with data reuse enforced, no
synthesis needed.  ``Size_reg`` is the average area of one register on the
target fabric, and ``alpha`` captures the degree of logic reuse the synthesis
backend achieves; it is calibrated by interpolating two (or more) reference
syntheses, and the accuracy of the model grows with the number of reference
points the designer is willing to pay for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ir.operators import OperatorLibrary, default_library


@dataclass(frozen=True)
class CalibrationPoint:
    """One reference synthesis: the register count and the synthesised area."""

    key: int                 # ordering key, e.g. the output window area
    register_count: int
    actual_area_luts: float


@dataclass(frozen=True)
class AreaEstimate:
    """Model output for one cone."""

    key: int
    register_count: int
    estimated_area_luts: float


class RegisterAreaModel:
    """Equation-1 estimator for a family of cones of a given depth.

    The family is indexed by an integer ``key`` (the output window area in
    the paper's figures).  The model is anchored at the smallest calibration
    point and extended in both directions using the register deltas.
    """

    def __init__(self, library: Optional[OperatorLibrary] = None,
                 size_reg_luts: Optional[float] = None) -> None:
        lib = library or default_library()
        register = lib.register_resources
        #: Average area contribution of one register (the Size_reg constant).
        self.size_reg_luts = (size_reg_luts if size_reg_luts is not None
                              else register.luts + 0.5 * register.ffs / 2.0)
        self.alpha: Optional[float] = None
        self._calibration: List[CalibrationPoint] = []

    # ------------------------------------------------------------------ #
    # calibration

    def calibrate(self, points: Sequence[CalibrationPoint]) -> float:
        """Fit alpha from two or more reference syntheses.

        With exactly two points alpha is the interpolation of the paper; with
        more points it is the least-squares slope of area against
        ``register_count * Size_reg``, which is the natural generalisation
        (more syntheses, better accuracy).
        """
        if len(points) < 2:
            raise ValueError("alpha calibration needs at least two synthesis points")
        ordered = sorted(points, key=lambda p: p.key)
        if len({p.register_count for p in ordered}) < 2:
            raise ValueError("calibration points must have distinct register counts")

        if len(ordered) == 2:
            first, second = ordered
            delta_area = second.actual_area_luts - first.actual_area_luts
            delta_reg = second.register_count - first.register_count
            alpha = delta_area / (delta_reg * self.size_reg_luts)
        else:
            mean_reg = sum(p.register_count for p in ordered) / len(ordered)
            mean_area = sum(p.actual_area_luts for p in ordered) / len(ordered)
            numerator = sum((p.register_count - mean_reg)
                            * (p.actual_area_luts - mean_area) for p in ordered)
            denominator = sum((p.register_count - mean_reg) ** 2 for p in ordered)
            alpha = numerator / denominator / self.size_reg_luts

        if alpha <= 0:
            raise ValueError(
                f"calibration produced a non-positive alpha ({alpha:.4f}); the "
                "reference syntheses are inconsistent"
            )
        self.alpha = alpha
        self._calibration = list(ordered)
        return alpha

    @property
    def calibration_points(self) -> List[CalibrationPoint]:
        return list(self._calibration)

    @property
    def anchor(self) -> CalibrationPoint:
        if not self._calibration:
            raise RuntimeError("the model has not been calibrated")
        return self._calibration[0]

    # ------------------------------------------------------------------ #
    # estimation

    def estimate_batch(self, keys: "np.ndarray",
                       register_counts: "np.ndarray") -> "np.ndarray":
        """Vectorized Equation 1 over a whole cone family at once.

        ``keys``/``register_counts`` are parallel 1-D integer arrays (one
        entry per cone; keys must be unique).  Returns the estimated areas
        as a float64 array aligned with the inputs.

        This is the single implementation of the Equation-1 recursion: the
        scalar :meth:`estimate_series` delegates here.  The recursion
        ``A(i) = A(i-1) + (Reg_i - Reg_{i-1}) * Size_reg * alpha`` is a
        sequential accumulation, which ``np.cumsum`` over the per-step
        increments (with the anchor area prepended) reproduces addition for
        addition — batch and scalar results are bit-identical, not merely
        close.
        """
        if self.alpha is None:
            raise RuntimeError("calibrate() must be called before estimating")
        keys = np.asarray(keys, dtype=np.int64)
        registers = np.asarray(register_counts, dtype=np.int64)
        if keys.ndim != 1 or keys.shape != registers.shape:
            raise ValueError(
                "keys and register_counts must be 1-D arrays of equal length")
        if np.unique(keys).size != keys.size:
            raise ValueError("family keys must be unique")
        anchor = self.anchor
        estimates = np.empty(keys.size, dtype=np.float64)
        order = np.argsort(keys, kind="stable")

        # Anchor: the smallest calibrated design is taken at its synthesised
        # area (the model predicts increments, not absolutes).  Keys above
        # the anchor chain forward from it, keys below chain backward.
        estimates[order[keys[order] == anchor.key]] = anchor.actual_area_luts
        for positions in (order[keys[order] > anchor.key],
                          order[keys[order] < anchor.key][::-1]):
            if positions.size == 0:
                continue
            chain_registers = np.concatenate(
                ([anchor.register_count], registers[positions]))
            increments = (np.diff(chain_registers)
                          * self.size_reg_luts) * self.alpha
            chain = np.cumsum(np.concatenate(([anchor.actual_area_luts],
                                              increments)))
            estimates[positions] = chain[1:]
        return estimates

    def estimate_series(self, register_counts: Mapping[int, int]) -> List[AreaEstimate]:
        """Estimate the area of every cone in ``register_counts``.

        ``register_counts`` maps the family key (window area) to the register
        count of that cone.  The recursion of Equation 1 runs over the keys in
        increasing order, starting from the anchor calibration point; the
        arithmetic itself is the vectorized :meth:`estimate_batch`.
        """
        keys = sorted(register_counts)
        areas = self.estimate_batch(
            np.asarray(keys, dtype=np.int64),
            np.asarray([register_counts[k] for k in keys], dtype=np.int64))
        return [AreaEstimate(key=key, register_count=register_counts[key],
                             estimated_area_luts=float(area))
                for key, area in zip(keys, areas)]

    def estimate_single(self, key: int, register_count: int) -> AreaEstimate:
        """Estimate one cone directly from the anchor point."""
        if self.alpha is None:
            raise RuntimeError("calibrate() must be called before estimating")
        anchor = self.anchor
        area = (anchor.actual_area_luts
                + (register_count - anchor.register_count)
                * self.size_reg_luts * self.alpha)
        return AreaEstimate(key=key, register_count=register_count,
                            estimated_area_luts=area)


@dataclass
class AreaModelValidation:
    """Comparison of estimated against synthesised ("actual") areas."""

    depth: int
    entries: List[Tuple[int, float, float]] = field(default_factory=list)
    # each entry: (key, actual_luts, estimated_luts)

    def add(self, key: int, actual: float, estimated: float) -> None:
        self.entries.append((key, actual, estimated))

    @property
    def errors_percent(self) -> List[float]:
        return [abs(est - act) / act * 100.0
                for _, act, est in self.entries if act > 0]

    @property
    def max_error_percent(self) -> float:
        errors = self.errors_percent
        return max(errors) if errors else 0.0

    @property
    def mean_error_percent(self) -> float:
        errors = self.errors_percent
        return sum(errors) / len(errors) if errors else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {"depth": self.depth,
                "entries": [list(entry) for entry in self.entries]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AreaModelValidation":
        return cls(depth=data["depth"],
                   entries=[(key, actual, estimated)
                            for key, actual, estimated in data["entries"]])


def validate_against_synthesis(
        actual_by_key: Mapping[int, float],
        estimated_by_key: Mapping[int, float],
        depth: int = 0) -> AreaModelValidation:
    """Build a validation report from two key-indexed area series."""
    validation = AreaModelValidation(depth=depth)
    for key in sorted(actual_by_key):
        if key in estimated_by_key:
            validation.add(key, actual_by_key[key], estimated_by_key[key])
    return validation
