"""Performance and area estimation (Section 3.3 of the paper).

The area model implements Equation 1: the area of a cone architecture is
predicted incrementally from the register counts that are already known once
the VHDL is generated, with the α correction factor calibrated from as few as
two reference syntheses.  The throughput model sums operator delays within a
cone, counts how many cones run in parallel, and accounts for the off-chip
traffic of the tile cascade.
"""

from repro.estimation.area_model import (
    CalibrationPoint,
    RegisterAreaModel,
    AreaEstimate,
    AreaModelValidation,
    validate_against_synthesis,
)
from repro.estimation.throughput_model import (
    ConePerformance,
    ArchitecturePerformance,
    ThroughputModel,
    performance_from_columns,
)

__all__ = [
    "CalibrationPoint",
    "RegisterAreaModel",
    "AreaEstimate",
    "AreaModelValidation",
    "validate_against_synthesis",
    "ConePerformance",
    "ArchitecturePerformance",
    "ThroughputModel",
    "performance_from_columns",
]
