"""Technology mapping: from DFG operations to FPGA primitives.

This is the first half of the synthesis simulator: every operation node is
assigned the LUT/FF/DSP cost of its operator (distinguishing constant-operand
variants), every datapath register costs flip-flops plus packing LUTs, and
input/output windows are accounted as register banks.  The result is the
*pre-optimisation* resource usage; the logic-reuse pass then applies the
sharing a real synthesis tool performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ir.dfg import DataflowGraph, NodeKind
from repro.ir.operators import (
    DataFormat,
    OperatorLibrary,
    ResourceVector,
    default_library,
)
from repro.symbolic.expression import OpKind


@dataclass
class MappedDesign:
    """Outcome of technology mapping one datapath."""

    name: str
    data_format: DataFormat
    operation_resources: ResourceVector
    register_resources: ResourceVector
    io_resources: ResourceVector
    register_count: int
    operation_count: int
    dsp_count: float
    per_op_breakdown: Dict[OpKind, ResourceVector] = field(default_factory=dict)

    @property
    def total(self) -> ResourceVector:
        return self.operation_resources + self.register_resources + self.io_resources


class TechnologyMapper:
    """Maps a :class:`DataflowGraph` onto FPGA primitives."""

    def __init__(self, library: Optional[OperatorLibrary] = None) -> None:
        self.library = library or default_library()

    def map(self, graph: DataflowGraph,
            pipeline_register_count: int = 0) -> MappedDesign:
        """Return the pre-optimisation resource usage of ``graph``.

        ``pipeline_register_count`` adds the registers inserted by the
        pipeline schedule on top of the data-reuse registers implied by the
        graph structure.
        """
        op_total = ResourceVector()
        per_op: Dict[OpKind, ResourceVector] = {}
        dsp_count = 0.0

        for node in graph.operation_nodes:
            assert node.op_kind is not None
            constant = node.has_constant_operand(graph)
            spec = self.library.spec_for(node.op_kind, constant_operand=constant)
            op_total = op_total + spec.resources
            dsp_count += spec.resources.dsps
            per_op[node.op_kind] = per_op.get(node.op_kind, ResourceVector()) + spec.resources

        register_cost = self.library.register_resources
        # Data-reuse registers: one per operation result plus one per input
        # element latched from the previous level, plus pipeline registers.
        register_count = graph.register_count + pipeline_register_count
        register_total = register_cost.scale(register_count)

        # I/O: output elements are driven through output registers as well.
        io_total = register_cost.scale(len(graph.output_ids))

        return MappedDesign(
            name=graph.name,
            data_format=self.library.data_format,
            operation_resources=op_total,
            register_resources=register_total,
            io_resources=io_total,
            register_count=register_count,
            operation_count=graph.operation_count(),
            dsp_count=dsp_count,
            per_op_breakdown=per_op,
        )
