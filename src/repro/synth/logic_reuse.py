"""Logic-reuse model of the synthesis backend.

Section 3.3 of the paper observes that the area of a synthesised cone does
not grow linearly with its size "due to the optimization and the logic reuse
performed by the synthesis tool", and introduces the α correction factor to
absorb that effect.  For the reproduction to be meaningful the synthesis
simulator must therefore exhibit the same phenomenon: the *effective* area of
a mapped design is the mapped area scaled by a sharing factor that improves
(sub-linearly, with saturation) as the design grows, plus a small
deterministic design-dependent ripple that prevents the relationship from
being exactly affine — this ripple is what produces the few-percent
estimation errors reported in Figures 5 and 8.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.ir.operators import ResourceVector
from repro.synth.technology_map import MappedDesign


def _deterministic_ripple(key: str, amplitude: float) -> float:
    """A reproducible pseudo-random factor in ``[1 - amplitude, 1 + amplitude]``.

    Real synthesis results wobble by a few percent with seed, placement and
    optimisation ordering; we model that wobble as a hash of the design name
    so results are bit-reproducible run to run.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 1.0 + amplitude * (2.0 * fraction - 1.0)


@dataclass(frozen=True)
class LogicReuseModel:
    """Parameters of the backend's logic sharing behaviour.

    Attributes
    ----------
    max_logic_sharing:
        Asymptotic fraction of combinational logic the tool manages to share
        away in very large designs (duplicate shift-add networks, common
        coefficient terms across neighbouring output elements, carry-chain
        packing, ...).
    sharing_halflife_luts:
        Design size (pre-optimisation LUTs) at which half of the asymptotic
        sharing is achieved.
    register_packing:
        Fraction of datapath registers absorbed into the same slices as the
        logic (they cost no extra LUTs and fewer FFs than the naive count).
    ripple_amplitude:
        Amplitude of the deterministic per-design wobble.
    """

    max_logic_sharing: float = 0.18
    sharing_halflife_luts: float = 60_000.0
    register_packing: float = 0.30
    ripple_amplitude: float = 0.030

    def sharing_factor(self, raw_luts: float) -> float:
        """Fraction of combinational logic removed for a design of ``raw_luts``."""
        if raw_luts <= 0:
            return 0.0
        saturation = 1.0 - math.exp(-raw_luts / self.sharing_halflife_luts)
        return self.max_logic_sharing * saturation

    def optimize(self, design: MappedDesign) -> ResourceVector:
        """Return the post-optimisation ("actual") resource usage of a design."""
        ripple = _deterministic_ripple(design.name, self.ripple_amplitude)

        logic = design.operation_resources
        share = self.sharing_factor(logic.luts)
        optimized_logic = ResourceVector(
            luts=logic.luts * (1.0 - share) * ripple,
            ffs=logic.ffs * (1.0 - 0.5 * share),
            dsps=logic.dsps,
            brams=logic.brams,
        )

        registers = design.register_resources + design.io_resources
        optimized_registers = ResourceVector(
            luts=registers.luts * (1.0 - self.register_packing),
            ffs=registers.ffs,
            dsps=registers.dsps,
            brams=registers.brams,
        )
        return optimized_logic + optimized_registers
