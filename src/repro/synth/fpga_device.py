"""FPGA device models.

Capacities follow the public Xilinx datasheets for the devices the paper
uses: a Virtex-6 XC6VLX760 for the main experiments and a Virtex-II Pro for
the comparison against the literature design of Cope [16].  Only the
quantities the flow consumes are modelled: programmable-logic capacity,
on-chip memory, DSP count, a realistic system clock for synthesised stencil
datapaths, and the off-chip memory bandwidth of a typical board built around
the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.operators import ResourceVector


@dataclass(frozen=True)
class FpgaDevice:
    """Resource and bandwidth budget of one FPGA device (plus its board)."""

    name: str
    family: str
    slice_luts: int
    slice_ffs: int
    dsp_slices: int
    bram_kbits: int
    #: Clock the synthesised cone datapaths close timing at (Hz).  The paper's
    #: design-space tables use 97.16 MHz on the Virtex-6.
    typical_clock_hz: float
    #: Sustained off-chip memory bandwidth of the reference board (bytes/s).
    offchip_bandwidth_bytes_per_s: float
    #: Fraction of the device the tools can actually fill with the cone
    #: datapath (routing, I/O and control overhead are kept out of reach).
    usable_fraction: float = 0.85

    @property
    def capacity(self) -> ResourceVector:
        return ResourceVector(
            luts=self.slice_luts,
            ffs=self.slice_ffs,
            dsps=self.dsp_slices,
            brams=self.bram_kbits / 18.0,
        )

    @property
    def usable_capacity(self) -> ResourceVector:
        return self.capacity.scale(self.usable_fraction)

    @property
    def onchip_memory_bytes(self) -> int:
        return int(self.bram_kbits * 1024 // 8)

    def max_instances(self, unit: ResourceVector) -> int:
        """How many copies of ``unit`` fit in the usable device capacity."""
        budget = self.usable_capacity
        limits = []
        for used, avail in ((unit.luts, budget.luts), (unit.ffs, budget.ffs),
                            (unit.dsps, budget.dsps), (unit.brams, budget.brams)):
            if used > 0:
                limits.append(int(avail // used))
        return min(limits) if limits else 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (full model, so custom devices survive)."""
        return {
            "name": self.name,
            "family": self.family,
            "slice_luts": self.slice_luts,
            "slice_ffs": self.slice_ffs,
            "dsp_slices": self.dsp_slices,
            "bram_kbits": self.bram_kbits,
            "typical_clock_hz": self.typical_clock_hz,
            "offchip_bandwidth_bytes_per_s": self.offchip_bandwidth_bytes_per_s,
            "usable_fraction": self.usable_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FpgaDevice":
        return cls(
            name=data["name"],
            family=data["family"],
            slice_luts=data["slice_luts"],
            slice_ffs=data["slice_ffs"],
            dsp_slices=data["dsp_slices"],
            bram_kbits=data["bram_kbits"],
            typical_clock_hz=data["typical_clock_hz"],
            offchip_bandwidth_bytes_per_s=data["offchip_bandwidth_bytes_per_s"],
            usable_fraction=data.get("usable_fraction", 0.85),
        )


VIRTEX6_XC6VLX760 = FpgaDevice(
    name="XC6VLX760",
    family="Virtex-6",
    slice_luts=474_240,
    slice_ffs=948_480,
    dsp_slices=864,
    bram_kbits=25_920,
    typical_clock_hz=97_162_845.0,
    offchip_bandwidth_bytes_per_s=3.2e9,
)

VIRTEX6_XC6VLX240T = FpgaDevice(
    name="XC6VLX240T",
    family="Virtex-6",
    slice_luts=150_720,
    slice_ffs=301_440,
    dsp_slices=768,
    bram_kbits=14_976,
    typical_clock_hz=97_162_845.0,
    offchip_bandwidth_bytes_per_s=3.2e9,
)

VIRTEX2P_XC2VP30 = FpgaDevice(
    name="XC2VP30",
    family="Virtex-II Pro",
    slice_luts=27_392,
    slice_ffs=27_392,
    dsp_slices=136,
    bram_kbits=2_448,
    typical_clock_hz=66_000_000.0,
    offchip_bandwidth_bytes_per_s=1.0e9,
)

SPARTAN6_XC6SLX45 = FpgaDevice(
    name="XC6SLX45",
    family="Spartan-6",
    slice_luts=27_288,
    slice_ffs=54_576,
    dsp_slices=58,
    bram_kbits=2_088,
    typical_clock_hz=75_000_000.0,
    offchip_bandwidth_bytes_per_s=1.2e9,
)

DEVICE_CATALOG: Dict[str, FpgaDevice] = {
    device.name: device
    for device in (VIRTEX6_XC6VLX760, VIRTEX6_XC6VLX240T, VIRTEX2P_XC2VP30,
                   SPARTAN6_XC6SLX45)
}


def device_by_name(name: str) -> FpgaDevice:
    """Look up a device model by part name (case-insensitive)."""
    key = name.upper()
    if key not in DEVICE_CATALOG:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICE_CATALOG)}"
        )
    return DEVICE_CATALOG[key]
