"""Timing analysis of synthesised cones."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.dfg import DataflowGraph
from repro.ir.operators import OperatorLibrary, default_library
from repro.ir.scheduling import Schedule, critical_path_ns, pipeline_schedule
from repro.synth.fpga_device import FpgaDevice


@dataclass(frozen=True)
class TimingReport:
    """Timing outcome for a datapath on a given device."""

    critical_path_ns: float
    clock_period_ns: float
    achieved_frequency_hz: float
    pipeline_stages: int
    latency_cycles: int
    latency_seconds: float
    initiation_interval: int


class TimingModel:
    """Computes achievable clocking and latency of a cone on a device.

    The flow targets the device's typical system clock (the paper's tables use
    97.16 MHz on the Virtex-6) and pipelines the cone until every stage meets
    that period; the resulting pipeline depth is the core latency.
    """

    def __init__(self, device: FpgaDevice,
                 library: Optional[OperatorLibrary] = None) -> None:
        self.device = device
        self.library = library or default_library()

    @property
    def target_period_ns(self) -> float:
        return 1e9 / self.device.typical_clock_hz

    def analyze(self, graph: DataflowGraph) -> TimingReport:
        period = self.target_period_ns
        schedule = pipeline_schedule(graph, period, self.library)
        frequency = min(self.device.typical_clock_hz, schedule.max_frequency_hz)
        latency_s = schedule.latency_cycles / frequency if frequency > 0 else float("inf")
        return TimingReport(
            critical_path_ns=schedule.critical_path_ns,
            clock_period_ns=period,
            achieved_frequency_hz=frequency,
            pipeline_stages=schedule.pipeline_stages,
            latency_cycles=schedule.latency_cycles,
            latency_seconds=latency_s,
            initiation_interval=schedule.initiation_interval,
        )

    def schedule(self, graph: DataflowGraph) -> Schedule:
        return pipeline_schedule(graph, self.target_period_ns, self.library)

    def combinational_delay(self, graph: DataflowGraph) -> float:
        return critical_path_ns(graph, self.library)
