"""FPGA synthesis simulator.

The paper validates its area model against real Xilinx syntheses.  Synthesis
tools and physical devices are not available to this reproduction, so this
package provides a deterministic substitute: technology mapping of the cone
dataflow graph onto LUT/FF/DSP primitives followed by a logic-reuse
optimisation whose effect grows non-linearly with design size — which is
exactly the non-linearity the paper's α correction factor absorbs.  The flow
treats this simulator the way the paper treats ISE/Vivado: as the reference
("actual") area against which Equation 1 is calibrated and evaluated.
"""

from repro.synth.fpga_device import (
    FpgaDevice,
    VIRTEX6_XC6VLX760,
    VIRTEX6_XC6VLX240T,
    VIRTEX2P_XC2VP30,
    SPARTAN6_XC6SLX45,
    DEVICE_CATALOG,
    device_by_name,
)
from repro.synth.technology_map import TechnologyMapper, MappedDesign
from repro.synth.logic_reuse import LogicReuseModel
from repro.synth.timing import TimingModel, TimingReport
from repro.synth.synthesizer import Synthesizer, SynthesisReport

__all__ = [
    "FpgaDevice",
    "VIRTEX6_XC6VLX760",
    "VIRTEX6_XC6VLX240T",
    "VIRTEX2P_XC2VP30",
    "SPARTAN6_XC6SLX45",
    "DEVICE_CATALOG",
    "device_by_name",
    "TechnologyMapper",
    "MappedDesign",
    "LogicReuseModel",
    "TimingModel",
    "TimingReport",
    "Synthesizer",
    "SynthesisReport",
]
