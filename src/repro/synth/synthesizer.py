"""The synthesis simulator front door.

``Synthesizer.synthesize`` plays the role Xilinx ISE/Vivado plays in the
paper: given the datapath of one cone it returns the "actual" area and timing
after technology mapping and logic reuse.  It also models the *cost* of a
synthesis run in CPU time, because the whole point of the paper's area model
is to avoid paying that cost for every point of the design space: the flow
tracks how many (simulated) synthesis hours a full exploration would have
taken versus how many the calibrated model needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.dfg import DataflowGraph
from repro.ir.operators import DataFormat, OperatorLibrary, ResourceVector, default_library
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760
from repro.synth.logic_reuse import LogicReuseModel
from repro.synth.technology_map import MappedDesign, TechnologyMapper
from repro.synth.timing import TimingModel, TimingReport


@dataclass(frozen=True)
class SynthesisReport:
    """Everything a synthesis run reports back to the flow."""

    design_name: str
    device_name: str
    area: ResourceVector
    raw_area: ResourceVector
    register_count: int
    operation_count: int
    timing: TimingReport
    #: Simulated tool runtime (seconds of CPU time a real synthesis of this
    #: design would take); used to quantify the exploration-cost saving.
    estimated_tool_runtime_s: float

    @property
    def slice_luts(self) -> float:
        return self.area.luts

    @property
    def fits(self) -> bool:
        return self._fits

    # populated post-init via object.__setattr__ in Synthesizer
    _fits: bool = True


class Synthesizer:
    """Deterministic stand-in for the FPGA synthesis backend."""

    def __init__(self, device: FpgaDevice = VIRTEX6_XC6VLX760,
                 library: Optional[OperatorLibrary] = None,
                 reuse_model: Optional[LogicReuseModel] = None) -> None:
        self.device = device
        self.library = library or default_library()
        self.reuse_model = reuse_model or LogicReuseModel()
        self.mapper = TechnologyMapper(self.library)
        self.timing_model = TimingModel(device, self.library)
        #: Number of synthesize() calls performed — the "synthesis runs" the
        #: paper wants to minimise.
        self.runs = 0
        self.total_tool_runtime_s = 0.0

    # ------------------------------------------------------------------ #

    def synthesize(self, graph: DataflowGraph) -> SynthesisReport:
        """Synthesise one datapath and report post-optimisation area/timing."""
        schedule = self.timing_model.schedule(graph)
        mapped = self.mapper.map(graph,
                                 pipeline_register_count=schedule.pipeline_register_count)
        area = self.reuse_model.optimize(mapped)
        timing = self.timing_model.analyze(graph)
        runtime = self._tool_runtime(mapped)

        self.runs += 1
        self.total_tool_runtime_s += runtime

        report = SynthesisReport(
            design_name=graph.name,
            device_name=self.device.name,
            area=area,
            raw_area=mapped.total,
            register_count=mapped.register_count,
            operation_count=mapped.operation_count,
            timing=timing,
            estimated_tool_runtime_s=runtime,
        )
        object.__setattr__(report, "_fits",
                           area.fits_in(self.device.usable_capacity))
        return report

    # ------------------------------------------------------------------ #

    def _tool_runtime(self, mapped: MappedDesign) -> float:
        """Model of the real tool's CPU time for a design of this size.

        Synthesis + place&route time grows super-linearly with logic volume;
        for the cone sizes of the paper this lands in the minutes-to-hours
        range, and a full design-space sweep in the "dozens of hours" the
        paper mentions.
        """
        luts = mapped.total.luts
        # ~40 s fixed start-up plus ~1.5 min per 10k LUTs, growing ^1.15.
        return 40.0 + 90.0 * (luts / 10_000.0) ** 1.15

    def max_parallel_instances(self, report: SynthesisReport) -> int:
        """How many copies of the synthesised cone fit on the device."""
        return self.device.max_instances(report.area)
