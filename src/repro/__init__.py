"""repro — reproduction of the DAC 2013 cone-based HLS flow for iterative
stencil loops (ISLs) on FPGAs (Nacci, Rana, Bruschi, Sciuto, Beretta, Atienza).

The package implements the full flow of the paper:

* a C-subset / Python-DSL frontend producing a stencil kernel IR
  (:mod:`repro.frontend`);
* dependency analysis through symbolic execution with register reuse
  (:mod:`repro.symbolic`);
* a dataflow IR, VHDL generation, and a deterministic FPGA synthesis
  simulator standing in for the vendor tools (:mod:`repro.ir`,
  :mod:`repro.codegen`, :mod:`repro.synth`);
* the Equation-1 area model, the throughput model, and the design-space
  exploration with Pareto extraction (:mod:`repro.estimation`,
  :mod:`repro.dse`);
* the cone-architecture template (:mod:`repro.architecture`), functional and
  cycle-level simulators plus the frame-buffer baseline
  (:mod:`repro.simulation`), the commercial-HLS and literature baselines
  (:mod:`repro.baselines`), and the case-study algorithms
  (:mod:`repro.algorithms`).

The user-facing surface is the composable API of :mod:`repro.api`: declare a
:class:`Workload`, run it in a :class:`Session` (which caches cone
characterizations across workloads), and every result round-trips through
JSON.  Synthesizers, estimators, and devices are pluggable backends resolved
by name through :mod:`repro.api.registry` (``register_backend`` /
``REPRO_BACKENDS``), and ``Session(store=...)`` persists characterizations
and results across processes through :mod:`repro.api.store`.

Quick start::

    from repro import FlowResult, Session, Workload

    session = Session()
    result = session.run(Workload.from_algorithm("blur"))
    for point in result.pareto:
        print(point.summary())

Batches share the expensive characterization/calibration work::

    results = session.run_many([
        Workload.from_algorithm("blur"),
        Workload.from_algorithm("blur", frame_width=640, frame_height=480),
        Workload.from_algorithm("jacobi"),
    ])
    print(session.stats.synthesis_runs)   # one run per unique cone shape

Everything serializes::

    import json
    payload = json.dumps(result.to_dict())
    restored = FlowResult.from_dict(json.loads(payload))

The same pipeline is scriptable from the shell: ``python -m repro list``,
``python -m repro explore blur --json``, ``python -m repro codegen blur
--out vhdl/``, ``python -m repro sweep --algorithms blur,jacobi
--frames 640x480,1024x768``.

The pre-1.1 entry point (``HlsFlow(kernel, FlowOptions(...)).run()``) keeps
working as a thin shim over the new API — see :mod:`repro.flow.hls_flow`.
"""

from repro.frontend import (
    StencilKernel,
    stencil_kernel,
    KernelBuilder,
    parse_c_source,
    extract_kernel_from_c,
    validate_kernel,
)
from repro.symbolic import ConeExpressionBuilder
from repro.architecture import ConeShape, ConeArchitecture
from repro.synth import (
    FpgaDevice,
    Synthesizer,
    VIRTEX6_XC6VLX760,
    VIRTEX2P_XC2VP30,
    device_by_name,
)
from repro.estimation import RegisterAreaModel, ThroughputModel
from repro.dse import DesignSpaceExplorer, DesignPoint, pareto_front, DseConstraints
from repro.simulation import (
    Frame,
    FrameSet,
    GoldenExecutor,
    FunctionalConeSimulator,
    FrameBufferArchitecture,
)
from repro.baselines import CommercialHlsTool, HlsConfiguration, literature_design
from repro.algorithms import ALGORITHMS, get_algorithm, list_algorithms
from repro.api import (
    ArtifactStore,
    FlowOptions,
    FlowResult,
    Pipeline,
    PipelineError,
    Session,
    SessionEvent,
    SessionStats,
    Workload,
    default_session,
    default_store_path,
    get_backend,
    list_backends,
    list_devices,
    register_backend,
    register_device,
    resolve_device,
)
from repro.flow import HlsFlow

__version__ = "1.2.0"

__all__ = [
    "StencilKernel",
    "stencil_kernel",
    "KernelBuilder",
    "parse_c_source",
    "extract_kernel_from_c",
    "validate_kernel",
    "ConeExpressionBuilder",
    "ConeShape",
    "ConeArchitecture",
    "FpgaDevice",
    "Synthesizer",
    "VIRTEX6_XC6VLX760",
    "VIRTEX2P_XC2VP30",
    "device_by_name",
    "RegisterAreaModel",
    "ThroughputModel",
    "DesignSpaceExplorer",
    "DesignPoint",
    "pareto_front",
    "DseConstraints",
    "Frame",
    "FrameSet",
    "GoldenExecutor",
    "FunctionalConeSimulator",
    "FrameBufferArchitecture",
    "CommercialHlsTool",
    "HlsConfiguration",
    "literature_design",
    "ALGORITHMS",
    "get_algorithm",
    "list_algorithms",
    "Workload",
    "Pipeline",
    "PipelineError",
    "Session",
    "SessionEvent",
    "SessionStats",
    "default_session",
    "HlsFlow",
    "FlowOptions",
    "FlowResult",
    "register_backend",
    "get_backend",
    "list_backends",
    "register_device",
    "resolve_device",
    "list_devices",
    "ArtifactStore",
    "default_store_path",
    "__version__",
]
