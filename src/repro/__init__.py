"""repro — reproduction of the DAC 2013 cone-based HLS flow for iterative
stencil loops (ISLs) on FPGAs (Nacci, Rana, Bruschi, Sciuto, Beretta, Atienza).

The package implements the full flow of the paper:

* a C-subset / Python-DSL frontend producing a stencil kernel IR
  (:mod:`repro.frontend`);
* dependency analysis through symbolic execution with register reuse
  (:mod:`repro.symbolic`);
* a dataflow IR, VHDL generation, and a deterministic FPGA synthesis
  simulator standing in for the vendor tools (:mod:`repro.ir`,
  :mod:`repro.codegen`, :mod:`repro.synth`);
* the Equation-1 area model, the throughput model, and the design-space
  exploration with Pareto extraction (:mod:`repro.estimation`,
  :mod:`repro.dse`);
* the cone-architecture template (:mod:`repro.architecture`), functional and
  cycle-level simulators plus the frame-buffer baseline
  (:mod:`repro.simulation`), the commercial-HLS and literature baselines
  (:mod:`repro.baselines`), the case-study algorithms
  (:mod:`repro.algorithms`), and the end-to-end driver (:mod:`repro.flow`).

Quick start::

    from repro import HlsFlow, FlowOptions, get_algorithm

    spec = get_algorithm("blur")                 # iterative Gaussian filter
    flow = HlsFlow(spec.kernel(),
                   FlowOptions(iterations=spec.default_iterations))
    result = flow.run()
    for point in result.pareto:
        print(point.summary())
"""

from repro.frontend import (
    StencilKernel,
    stencil_kernel,
    KernelBuilder,
    parse_c_source,
    extract_kernel_from_c,
    validate_kernel,
)
from repro.symbolic import ConeExpressionBuilder
from repro.architecture import ConeShape, ConeArchitecture
from repro.synth import (
    FpgaDevice,
    Synthesizer,
    VIRTEX6_XC6VLX760,
    VIRTEX2P_XC2VP30,
    device_by_name,
)
from repro.estimation import RegisterAreaModel, ThroughputModel
from repro.dse import DesignSpaceExplorer, DesignPoint, pareto_front, DseConstraints
from repro.simulation import (
    Frame,
    FrameSet,
    GoldenExecutor,
    FunctionalConeSimulator,
    FrameBufferArchitecture,
)
from repro.baselines import CommercialHlsTool, HlsConfiguration, literature_design
from repro.algorithms import ALGORITHMS, get_algorithm, list_algorithms
from repro.flow import HlsFlow, FlowOptions, FlowResult

__version__ = "1.0.0"

__all__ = [
    "StencilKernel",
    "stencil_kernel",
    "KernelBuilder",
    "parse_c_source",
    "extract_kernel_from_c",
    "validate_kernel",
    "ConeExpressionBuilder",
    "ConeShape",
    "ConeArchitecture",
    "FpgaDevice",
    "Synthesizer",
    "VIRTEX6_XC6VLX760",
    "VIRTEX2P_XC2VP30",
    "device_by_name",
    "RegisterAreaModel",
    "ThroughputModel",
    "DesignSpaceExplorer",
    "DesignPoint",
    "pareto_front",
    "DseConstraints",
    "Frame",
    "FrameSet",
    "GoldenExecutor",
    "FunctionalConeSimulator",
    "FrameBufferArchitecture",
    "CommercialHlsTool",
    "HlsConfiguration",
    "literature_design",
    "ALGORITHMS",
    "get_algorithm",
    "list_algorithms",
    "HlsFlow",
    "FlowOptions",
    "FlowResult",
    "__version__",
]
