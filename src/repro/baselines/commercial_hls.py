"""Model of a generic commercial HLS tool applied to ISL code (Section 4.3).

Vivado HLS and Synphony C Compiler optimise the *single-iteration* loop nest
with general-purpose transformations — unrolling, pipelining, loop merging /
flattening, array partitioning — but do not restructure the computation
across iterations.  The consequences the paper reports are reproduced here:

* the frame buffers do not fit in on-chip memory, so every iteration streams
  the full frame through off-chip memory and the inner loop is bound by the
  memory port (a handful of reads per produced element);
* *loop merging* across the iteration loop fails because of the
  inter-iteration data dependencies;
* *pipelining + full loop flattening* forces the tool to unroll/partition
  frame-sized arrays, whose internal representation exhausts the memory of
  the synthesis host (the paper observed an out-of-memory abort on a 16 GB
  machine);
* the best reachable configuration lands around 0.14 fps on a 1024x768
  frame — orders of magnitude below the cone architecture.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import validate_kernel
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760


class HlsToolError(RuntimeError):
    """Raised when the modelled tool aborts (infeasible directive combination)."""


class HlsStatus(enum.Enum):
    OK = "ok"
    LOOP_MERGE_FAILED = "loop_merge_failed"
    OUT_OF_MEMORY = "out_of_memory"


@dataclass(frozen=True)
class HlsConfiguration:
    """Directive set applied to the ISL C code."""

    unroll_factor: int = 1
    pipeline: bool = False
    loop_flatten: bool = False
    loop_merge: bool = False
    array_partition_factor: int = 1
    tool_name: str = "vivado_hls"

    def describe(self) -> str:
        parts = [f"unroll={self.unroll_factor}"]
        if self.pipeline:
            parts.append("pipeline")
        if self.loop_flatten:
            parts.append("flatten")
        if self.loop_merge:
            parts.append("merge")
        if self.array_partition_factor > 1:
            parts.append(f"partition={self.array_partition_factor}")
        return f"{self.tool_name}({', '.join(parts)})"


@dataclass(frozen=True)
class HlsResult:
    """Outcome of pushing the ISL code through the modelled tool."""

    configuration: HlsConfiguration
    status: HlsStatus
    frames_per_second: float
    seconds_per_frame: float
    area_luts: float
    bram_kbits: float
    detail: str = ""

    @property
    def succeeded(self) -> bool:
        return self.status is HlsStatus.OK


#: Host memory of the synthesis workstation the paper used (16 GB).
SYNTHESIS_HOST_MEMORY_BYTES = 16 * 1024 ** 3

#: Average cycles per individual off-chip window read issued by the generic
#: datapath (no line buffering, limited burst reuse).
OFFCHIP_ACCESS_CYCLES_PER_READ = 8.0


class CommercialHlsTool:
    """Analytic model of a generic (non-ISL-aware) HLS tool."""

    def __init__(self, kernel: StencilKernel,
                 device: FpgaDevice = VIRTEX6_XC6VLX760,
                 data_format: DataFormat = DataFormat.FLOAT32) -> None:
        self.kernel = kernel
        self.device = device
        self.data_format = data_format
        self.properties = validate_kernel(kernel, strict=False)

    # ------------------------------------------------------------------ #

    def run(self, configuration: HlsConfiguration,
            frame_width: int, frame_height: int, iterations: int) -> HlsResult:
        """Evaluate one directive configuration (never raises; see ``status``)."""
        pixels = frame_width * frame_height
        components = self.properties.total_state_components
        readonly = sum(self.properties.components_per_field[name]
                       for name in self.properties.readonly_fields)
        element_bytes = self.data_format.bytes

        if configuration.loop_merge:
            return HlsResult(
                configuration=configuration,
                status=HlsStatus.LOOP_MERGE_FAILED,
                frames_per_second=0.0,
                seconds_per_frame=float("inf"),
                area_luts=0.0,
                bram_kbits=0.0,
                detail=("loop merge across the iteration loop rejected: the "
                        "elements of iteration i+1 depend on neighbouring "
                        "elements of iteration i"),
            )

        if configuration.pipeline and configuration.loop_flatten:
            # Flattening the full frame loop nest and pipelining it forces the
            # tool to elaborate per-element multiplexing logic over the
            # partitioned frame arrays; its internal netlist grows with the
            # frame size, the kernel operation count and the partition factor.
            netlist_bytes = (pixels * (components + readonly)
                             * self.properties.operation_count
                             * max(1, configuration.array_partition_factor)
                             * 2500.0)  # bytes of internal IR per elaborated op
            if netlist_bytes > SYNTHESIS_HOST_MEMORY_BYTES:
                return HlsResult(
                    configuration=configuration,
                    status=HlsStatus.OUT_OF_MEMORY,
                    frames_per_second=0.0,
                    seconds_per_frame=float("inf"),
                    area_luts=0.0,
                    bram_kbits=0.0,
                    detail=(f"tool elaboration needs ~{netlist_bytes / 1e9:.1f} GB "
                            "on the synthesis host (16 GB available)"),
                )

        # Feasible configuration: iteration-by-iteration execution with the
        # frame in off-chip memory (it does not fit in BRAM for the paper's
        # frame sizes), inner loop II bound by the window reads through the
        # memory port, improved by unrolling/partitioning up to the port limit.
        frame_bytes = pixels * components * element_bytes
        fits_onchip = 2 * frame_bytes <= self.device.onchip_memory_bytes

        reads_per_element = self.properties.footprint_size + readonly
        parallel_reads = min(configuration.unroll_factor,
                             configuration.array_partition_factor) or 1
        body_latency = max(8, self.properties.operation_count)
        if fits_onchip:
            # window reads come from partitioned BRAM: unrolling/partitioning
            # raises the read parallelism.
            memory_interval = max(1.0, reads_per_element / parallel_reads)
        else:
            # the frame lives in external memory and the tool issues the
            # window reads element by element through a single memory port;
            # partitioning the (off-chip) array does not help.
            memory_interval = reads_per_element * OFFCHIP_ACCESS_CYCLES_PER_READ
        if configuration.pipeline:
            initiation_interval = memory_interval
        else:
            # un-pipelined loop body: the operation chain latency adds to the
            # memory access time of every element.
            initiation_interval = body_latency + memory_interval

        clock = self.device.typical_clock_hz
        compute_cycles = iterations * pixels * initiation_interval

        if fits_onchip:
            offchip_bytes = 2.0 * frame_bytes
        else:
            offchip_bytes = iterations * 2.0 * frame_bytes * (
                1.0 + readonly / max(components, 1))
        transfer_cycles = offchip_bytes / (
            self.device.offchip_bandwidth_bytes_per_s / clock)

        total_cycles = compute_cycles + transfer_cycles
        seconds = total_cycles / clock

        datapath_luts = 900.0 * self.properties.operation_count ** 0.85 \
            * configuration.unroll_factor ** 0.9
        bram_kbits = min(2 * frame_bytes * 8 / 1024.0, self.device.bram_kbits) \
            if fits_onchip else 64.0 * configuration.array_partition_factor

        return HlsResult(
            configuration=configuration,
            status=HlsStatus.OK,
            frames_per_second=1.0 / seconds if seconds > 0 else 0.0,
            seconds_per_frame=seconds,
            area_luts=datapath_luts,
            bram_kbits=bram_kbits,
            detail="frame buffers in off-chip memory" if not fits_onchip
                   else "frame buffers in on-chip memory",
        )

    # ------------------------------------------------------------------ #

    def best_configuration(self, frame_width: int, frame_height: int,
                           iterations: int) -> HlsResult:
        """Sweep the directive space and return the fastest feasible result."""
        best: Optional[HlsResult] = None
        for unroll in (1, 2, 4, 8, 16):
            for pipeline in (False, True):
                for flatten in (False, True):
                    for partition in (1, 2, 4, 8, 16):
                        result = self.run(
                            HlsConfiguration(unroll_factor=unroll,
                                             pipeline=pipeline,
                                             loop_flatten=flatten,
                                             array_partition_factor=partition),
                            frame_width, frame_height, iterations)
                        if not result.succeeded:
                            continue
                        if best is None or result.frames_per_second > best.frames_per_second:
                            best = result
        if best is None:
            raise HlsToolError("no feasible configuration found")
        return best
