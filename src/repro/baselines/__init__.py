"""Baselines the paper compares against.

* :mod:`repro.baselines.commercial_hls` — a model of a generic loop-optimising
  HLS tool (Vivado HLS / Synphony C style), reproducing Section 4.3.
* :mod:`repro.baselines.manual_designs` — published figures of the
  hand-optimised literature designs used in Sections 4.1 and 4.2.
* The frame-buffer architecture baseline lives in
  :mod:`repro.simulation.framebuffer_baseline` because it doubles as a
  simulation substrate.
"""

from repro.baselines.commercial_hls import (
    CommercialHlsTool,
    HlsConfiguration,
    HlsResult,
    HlsToolError,
    HlsStatus,
)
from repro.baselines.manual_designs import (
    LiteratureDesign,
    LITERATURE_DESIGNS,
    literature_design,
)

__all__ = [
    "CommercialHlsTool",
    "HlsConfiguration",
    "HlsResult",
    "HlsToolError",
    "HlsStatus",
    "LiteratureDesign",
    "LITERATURE_DESIGNS",
    "literature_design",
]
