"""Published figures of the literature designs the paper compares against.

These are comparison *data points* (the paper quotes them from the cited
publications), not systems we re-implement: they anchor the "who wins, by
roughly what factor" checks of the Section 4.1 / 4.2 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

FrameSize = Tuple[int, int]


@dataclass(frozen=True)
class LiteratureDesign:
    """One published implementation with its reported frame rates."""

    name: str
    reference: str
    algorithm: str
    device: str
    design_effort: str
    fps_by_frame: Dict[FrameSize, float] = field(default_factory=dict)
    notes: str = ""

    def fps(self, frame: FrameSize) -> float:
        if frame not in self.fps_by_frame:
            raise KeyError(
                f"{self.name} has no published figure for frame {frame}; "
                f"available: {sorted(self.fps_by_frame)}"
            )
        return self.fps_by_frame[frame]


LITERATURE_DESIGNS: Dict[str, LiteratureDesign] = {
    "cope_convolution": LiteratureDesign(
        name="cope_convolution",
        reference="[16] B. Cope, 'Implementation of 2D Convolution on FPGA, GPU and CPU', 2006",
        algorithm="20-iteration 3x3 convolution",
        device="XC2VP30",
        design_effort="manual",
        fps_by_frame={(1024, 768): 13.5, (1920, 1080): 4.9},
        notes="Paper text: 13.5 fps at 1024x768 and below 5 fps at Full-HD "
              "on a Virtex-II Pro.",
    ),
    "akin_chambolle": LiteratureDesign(
        name="akin_chambolle",
        reference="[19] A. Akin et al., 'A high-performance parallel implementation "
                  "of the Chambolle algorithm', DATE 2011",
        algorithm="Chambolle total-variation minimisation",
        device="Virtex-6",
        design_effort="manual (several months of work)",
        fps_by_frame={(1024, 768): 38.0, (512, 512): 99.0},
        notes="The hand-optimised design the cone architecture is measured against.",
    ),
    "pock_tvl1": LiteratureDesign(
        name="pock_tvl1",
        reference="[3] T. Pock et al., 'A duality based algorithm for TV-L1 "
                  "optical-flow image registration', MICCAI 2007",
        algorithm="TV-L1 optical flow (Chambolle-style inner loop)",
        device="GPU/CPU reference implementations",
        design_effort="software",
        fps_by_frame={(512, 512): 25.0, (1024, 768): 9.0},
        notes="Representative of the non-real-time implementations the paper "
              "cites as unable to reach 30 fps even on small images.",
    ),
    "paper_cone_igf": LiteratureDesign(
        name="paper_cone_igf",
        reference="Nacci et al., DAC 2013 (this paper), Section 4.1",
        algorithm="Iterative Gaussian filter",
        device="XC6VLX760 / XC2VP30",
        design_effort="automatic (this flow)",
        fps_by_frame={(1024, 768): 110.0, (1920, 1080): 35.0},
        notes="110 fps at 1024x768 on a Virtex-6; 35 fps at Full-HD on the "
              "same Virtex-II Pro used by [16].",
    ),
    "paper_cone_chambolle": LiteratureDesign(
        name="paper_cone_chambolle",
        reference="Nacci et al., DAC 2013 (this paper), Section 4.2",
        algorithm="Chambolle total-variation minimisation",
        device="XC6VLX760",
        design_effort="automatic (this flow)",
        fps_by_frame={(1024, 768): 24.0, (512, 512): 72.0},
        notes="Automatically generated architectures: 24 fps at 1024x768 and "
              "72 fps at 512x512.",
    ),
}


def literature_design(name: str) -> LiteratureDesign:
    """Look up a published design by name."""
    if name not in LITERATURE_DESIGNS:
        raise KeyError(
            f"unknown literature design {name!r}; available: "
            f"{sorted(LITERATURE_DESIGNS)}"
        )
    return LITERATURE_DESIGNS[name]
