"""Small argument-validation helpers.

Raising early with a precise message beats silently mis-configuring a design
space exploration that then runs for minutes.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(name: str, value: Union[int, float]) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: Union[int, float]) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: Union[int, float],
                   low: Union[int, float], high: Union[int, float]) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_type(name: str, value: Any,
               expected: Union[Type, Tuple[Type, ...]]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(
            f"{name} must be of type {names}, got {type(value).__name__}"
        )
