"""Geometry primitives used across the flow.

The whole stencil machinery reasons about *relative offsets* (the displacement
between the element being produced and the elements it reads) and about
*windows* (axis-aligned rectangles of elements, used both for the cone output
tile and for the halo regions that grow level by level inside a cone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Offset:
    """A relative 2D displacement ``(dx, dy)`` measured in grid elements.

    ``dx`` moves along the row (column index), ``dy`` along the column
    (row index).  Offsets are immutable and hashable so they can be used as
    dictionary keys in dependency footprints and symbol tables.
    """

    dx: int
    dy: int

    def __add__(self, other: "Offset") -> "Offset":
        return Offset(self.dx + other.dx, self.dy + other.dy)

    def __sub__(self, other: "Offset") -> "Offset":
        return Offset(self.dx - other.dx, self.dy - other.dy)

    def __neg__(self) -> "Offset":
        return Offset(-self.dx, -self.dy)

    def manhattan(self) -> int:
        """Return the L1 norm of the offset."""
        return abs(self.dx) + abs(self.dy)

    def chebyshev(self) -> int:
        """Return the L-infinity norm (stencil *radius* contribution)."""
        return max(abs(self.dx), abs(self.dy))

    def as_tuple(self) -> Tuple[int, int]:
        return (self.dx, self.dy)

    def to_list(self) -> list:
        """JSON-ready representation ``[dx, dy]``."""
        return [self.dx, self.dy]

    @staticmethod
    def from_list(data: "Iterable[int]") -> "Offset":
        dx, dy = data
        return Offset(int(dx), int(dy))

    @staticmethod
    def origin() -> "Offset":
        return Offset(0, 0)


@dataclass(frozen=True)
class Window:
    """An axis-aligned, inclusive rectangle of grid elements.

    ``x0 <= x <= x1`` and ``y0 <= y <= y1``.  A window is the unit the cone
    architecture reasons about: the output tile of a cone is a window, and the
    set of elements a cone must read from the previous level is the output
    window *inflated* by the stencil radius times the cone depth.
    """

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(
                f"degenerate window: ({self.x0},{self.y0})..({self.x1},{self.y1})"
            )

    @property
    def width(self) -> int:
        return self.x1 - self.x0 + 1

    @property
    def height(self) -> int:
        return self.y1 - self.y0 + 1

    @property
    def area(self) -> int:
        """Number of elements covered by the window."""
        return self.width * self.height

    def is_square(self) -> bool:
        return self.width == self.height

    def inflate(self, radius: int) -> "Window":
        """Return the window grown by ``radius`` elements on every side.

        This models one application of a stencil of Chebyshev radius
        ``radius``: to produce this window at iteration ``i+1`` one needs the
        inflated window at iteration ``i``.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return Window(self.x0 - radius, self.y0 - radius,
                      self.x1 + radius, self.y1 + radius)

    def translate(self, offset: Offset) -> "Window":
        return Window(self.x0 + offset.dx, self.y0 + offset.dy,
                      self.x1 + offset.dx, self.y1 + offset.dy)

    def contains(self, offset: Offset) -> bool:
        return self.x0 <= offset.dx <= self.x1 and self.y0 <= offset.dy <= self.y1

    def contains_window(self, other: "Window") -> bool:
        return (self.x0 <= other.x0 and self.y0 <= other.y0
                and self.x1 >= other.x1 and self.y1 >= other.y1)

    def intersects(self, other: "Window") -> bool:
        return not (other.x0 > self.x1 or other.x1 < self.x0
                    or other.y0 > self.y1 or other.y1 < self.y0)

    def elements(self) -> Iterator[Offset]:
        """Iterate over every element of the window in row-major order."""
        for y in range(self.y0, self.y1 + 1):
            for x in range(self.x0, self.x1 + 1):
                yield Offset(x, y)

    def to_list(self) -> list:
        """JSON-ready representation ``[x0, y0, x1, y1]``."""
        return [self.x0, self.y0, self.x1, self.y1]

    @staticmethod
    def from_list(data: Iterable[int]) -> "Window":
        x0, y0, x1, y1 = data
        return Window(int(x0), int(y0), int(x1), int(y1))

    @staticmethod
    def square(side: int, origin: Offset = Offset(0, 0)) -> "Window":
        """Build a ``side x side`` window whose lower corner is ``origin``."""
        if side <= 0:
            raise ValueError("side must be positive")
        return Window(origin.dx, origin.dy,
                      origin.dx + side - 1, origin.dy + side - 1)


def bounding_window(offsets: Iterable[Offset]) -> Window:
    """Return the smallest window containing every offset in ``offsets``."""
    items = list(offsets)
    if not items:
        raise ValueError("cannot bound an empty set of offsets")
    xs = [o.dx for o in items]
    ys = [o.dy for o in items]
    return Window(min(xs), min(ys), max(xs), max(ys))


def window_union(a: Window, b: Window) -> Window:
    """Return the bounding window of two windows."""
    return Window(min(a.x0, b.x0), min(a.y0, b.y0),
                  max(a.x1, b.x1), max(a.y1, b.y1))
