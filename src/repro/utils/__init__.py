"""Shared utilities: geometry primitives, validation helpers, table formatting.

These are deliberately dependency-free (stdlib only) so every other subpackage
can import them without cycles.
"""

from repro.utils.geometry import Offset, Window, bounding_window, window_union
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)
from repro.utils.tables import Table, format_float, format_si

__all__ = [
    "Offset",
    "Window",
    "bounding_window",
    "window_union",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "Table",
    "format_float",
    "format_si",
]
