"""Plain-text table rendering used by the reporting layer and the benchmarks.

The benchmark harness prints, for every figure of the paper, the series the
figure plots.  A tiny table formatter keeps that output readable without
pulling in any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly, switching to scientific notation when tiny."""
    if value == 0:
        return "0"
    if abs(value) >= 10 ** (-digits) and abs(value) < 10 ** 7:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}e}"


def format_si(value: float, unit: str = "") -> str:
    """Format a value with an SI prefix (k, M, G) for readability."""
    for threshold, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.3g}{prefix}{unit}"
    return f"{value:.3g}{unit}"


class Table:
    """A minimal column-aligned text table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns: List[str] = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._render(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _render(value: object) -> str:
        if isinstance(value, float):
            return format_float(value)
        return str(value)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
