"""Role-based admission control: priority classes as capabilities.

The worker tier treats a submission's priority class as a *request*; at
fleet scale that is an honor system — any client could mark everything
``interactive`` and starve the batch tier.  Following the RBAC model of
Ferraiolo & Kuhn (roles grant operations; subjects act through roles,
never through ad-hoc per-subject grants), the router makes each priority
class an **operation granted to roles**: a submission names a role, the
:class:`AdmissionPolicy` checks that the role holds the requested class,
and a denied submission is refused with :class:`~repro.service.jobs
.AdmissionDeniedError` (HTTP ``403``) before any worker sees it.

The built-in role lattice (override per deployment)::

    operator   -> interactive, batch, background
    user       ->              batch, background
    guest      ->                     background

``default_role`` names the role of submissions that do not identify one.
It defaults to ``operator`` so a single-tenant fleet behaves exactly like
the worker tier (no dormant denials); a multi-tenant deployment passes
``default_role="guest"`` and hands out stronger roles explicitly.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Optional, Set, Union

from repro.service.jobs import (
    AdmissionDeniedError,
    parse_priority,
    priority_name,
)

#: The built-in role -> granted-priority-class lattice (each class is a
#: capability; higher roles are supersets, per the RBAC hierarchy idea).
DEFAULT_ROLES: Dict[str, tuple] = {
    "operator": ("interactive", "batch", "background"),
    "user": ("batch", "background"),
    "guest": ("background",),
}


class AdmissionPolicy:
    """Maps requester roles to the priority classes they may submit.

    ``roles`` maps role name -> iterable of class names (default:
    :data:`DEFAULT_ROLES`); ``default_role`` is assumed when a
    submission carries no role.  Unknown roles are denied outright
    (an unknown principal holds no capabilities).
    """

    def __init__(self,
                 roles: Optional[Mapping[str, Iterable[str]]] = None,
                 default_role: str = "operator") -> None:
        source = DEFAULT_ROLES if roles is None else roles
        self._grants: Dict[str, Set[int]] = {
            role.strip().lower(): {parse_priority(name) for name in classes}
            for role, classes in source.items()}
        default_role = default_role.strip().lower()
        if default_role not in self._grants:
            raise ValueError(
                f"default_role {default_role!r} is not a defined role; "
                f"roles are {', '.join(sorted(self._grants))}")
        self._default_role = default_role
        self._lock = threading.Lock()
        self._admitted = 0
        self._denied = 0

    @property
    def default_role(self) -> str:
        return self._default_role

    def roles(self) -> Dict[str, list]:
        """JSON-ready view of the grant table (for ``stats()``)."""
        return {role: sorted(priority_name(p) for p in granted)
                for role, granted in sorted(self._grants.items())}

    def admit(self, role: Optional[str],
              priority: Union[str, int, None]) -> int:
        """Check ``role`` may submit at ``priority``; returns the parsed
        priority number, or raises :class:`AdmissionDeniedError`."""
        parsed = parse_priority(priority)
        role = (self._default_role if role is None
                else str(role).strip().lower())
        granted = self._grants.get(role)
        if granted is None:
            with self._lock:
                self._denied += 1
            raise AdmissionDeniedError(
                f"unknown role {role!r} holds no priority-class "
                f"capabilities; roles are "
                f"{', '.join(sorted(self._grants))}")
        if parsed not in granted:
            with self._lock:
                self._denied += 1
            raise AdmissionDeniedError(
                f"role {role!r} is not granted the "
                f"{priority_name(parsed)!r} priority class (granted: "
                f"{', '.join(sorted(priority_name(p) for p in granted))})")
        with self._lock:
            self._admitted += 1
        return parsed

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {"admitted": self._admitted, "denied": self._denied}
