"""The fleet router: consistent-hash job routing over N workers.

:class:`FleetRouter` fronts a fleet of :class:`~repro.service.server
.ReproServer` workers (in-process objects or remote URLs) behind the
*same job API* the workers speak — ``submit`` / ``status`` / ``result``
/ ``cancel`` / ``stats`` / ``healthz`` / ``metrics_text`` — so
:class:`~repro.service.client.ReproClient` (and therefore the CLI and
the HTTP transport, reused verbatim from :mod:`repro.service.server`)
drives a whole fleet exactly like one worker.

Routing (:mod:`repro.fleet.ring`): each submission goes to the worker
owning the consistent hash of its workload's characterization key.
Placement is a pure function of (key, ring membership) — independent of
submission order, timing, and fleet size beyond membership — and
same-key submissions always meet on one worker, so worker-local request
coalescing keeps deduplicating fleet-wide.

Failover: a healthcheck loop probes ``/healthz``; a dead worker leaves
the ring (only *its* segments move, each to its ring successor) and its
in-flight jobs are **replayed** to the successors.  Replay is safe
because results are content-addressed and digest-identical — with a
shared :class:`~repro.api.store.ArtifactStore` the replay is typically a
disk hit, not a recomputation (the registration handshake records every
worker's store root so ``stats()`` can attest the sharing).

Traffic hygiene: per-priority-class admission control at the router
(:class:`~repro.fleet.admission.AdmissionPolicy` — roles grant classes),
an optional router-level in-flight bound, and end-to-end load-shedding —
a worker's bounded queue refusing work surfaces to the client as ``503 +
Retry-After`` (rerouting a shed would both break same-key coalescing and
overload the neighbors; backpressure is the correct answer).
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple, Union

from repro.api.registry import register_backend
from repro.api.results import FlowResult
from repro.api.workload import Workload
from repro.fleet.admission import AdmissionPolicy
from repro.fleet.membership import (
    FleetMember,
    FleetMembership,
    build_member,
)
from repro.fleet.ring import DEFAULT_REPLICAS, routing_token
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.jobs import (
    FleetOverloadedError,
    JobCancelledError,
    JobFailedError,
    JobTimeoutError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
    parse_job_kind,
    priority_name,
)
from repro.service.metrics import render_prometheus
from repro.service.server import start_http_endpoint

#: Upper bound of one worker-side wait chunk while the router waits for a
#: result: short enough that a mid-wait worker death is noticed quickly,
#: long enough not to busy-poll.
RESULT_CHUNK_S = 2.0

#: How many times one job may be replayed before the router gives up
#: (beyond membership-count replays something is systematically wrong).
MAX_REPLAYS_SLACK = 2

#: Default seconds between healthcheck sweeps (0 disables the loop;
#: :meth:`FleetRouter.check_workers` probes on demand either way).
DEFAULT_HEALTHCHECK_INTERVAL_S = 1.0

#: Folds an arbitrary requester role into a legal metric-name suffix for
#: the per-role submit counters.
_ROLE_SANITIZER = re.compile(r"[^a-z0-9_]")


class _RoutedJob:
    """One fleet-level job: a workload pinned to a (current) worker."""

    __slots__ = ("id", "workload", "token", "priority", "timeout_s",
                 "kind", "worker_name", "worker_job_id", "state",
                 "coalesced", "replays", "submitted_at", "cancelled",
                 "trace_id")

    def __init__(self, job_id: str, workload: Workload, token: str,
                 priority: int, timeout_s: Optional[float],
                 worker_name: str, worker_job_id: str,
                 coalesced: bool, kind: str = "explore",
                 trace_id: Optional[str] = None) -> None:
        self.id = job_id
        self.workload = workload
        self.token = token
        self.priority = priority
        self.timeout_s = timeout_s
        self.kind = kind
        self.worker_name = worker_name
        self.worker_job_id = worker_job_id
        self.state = "routed"
        self.coalesced = coalesced
        self.replays = 0
        self.submitted_at = time.time()
        self.cancelled = False
        self.trace_id = trace_id

    def snapshot(self) -> Dict[str, Any]:
        return {
            "job_id": self.id,
            "state": self.state,
            "kind": self.kind,
            "priority": priority_name(self.priority),
            "workload": self.workload.name,
            "worker": self.worker_name,
            "worker_job_id": self.worker_job_id,
            "coalesced": self.coalesced,
            "replays": self.replays,
            "submitted_at": self.submitted_at,
            "timeout_s": self.timeout_s,
            "trace_id": self.trace_id,
        }


class FleetRouter:
    """Route exploration jobs across a worker fleet (see module doc).

    ``workers`` is a sequence of worker specs — ``http://`` URLs,
    in-process :class:`ReproServer` objects, :class:`ReproClient`\\ s, or
    ``(name, spec)`` pairs.  The router handshakes with every worker at
    construction (``POST /register``), healthchecks them on
    ``healthcheck_interval_s``, and **owns** them by default: closing the
    router drains and closes the whole fleet (``close_workers=False`` to
    front workers with an independent lifecycle).
    """

    def __init__(self, workers: Any = (),
                 policy: Optional[AdmissionPolicy] = None,
                 replicas: int = DEFAULT_REPLICAS,
                 max_inflight: Optional[int] = None,
                 healthcheck_interval_s: float =
                 DEFAULT_HEALTHCHECK_INTERVAL_S,
                 failure_threshold: int = 1,
                 history_limit: int = 1024,
                 close_workers: bool = True) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1 or None (got {max_inflight})")
        # routers trace by default, exactly like workers (REPRO_OBS=0
        # opts out); with in-process workers the one global TraceStore
        # then holds the full route -> worker -> pipeline trace
        obs_trace.auto_enable()
        self._policy = policy if policy is not None else AdmissionPolicy()
        self._membership = FleetMembership(replicas=replicas)
        self._max_inflight = max_inflight
        self._failure_threshold = failure_threshold
        self._close_workers = close_workers
        self._lock = threading.RLock()
        self._jobs: Dict[str, _RoutedJob] = {}
        self._terminal_order: Deque[str] = deque()
        self._history_limit = history_limit
        self._sequence = 0
        self._closed = False
        self._started_at = time.time()
        # lifetime counters
        self._routed = 0
        self._failovers = 0
        self._replays = 0
        self._shed = 0
        self._done = 0
        self._failed = 0
        self._cancelled_count = 0
        # transports / loops
        self._httpd = None
        self._http_thread: Optional[threading.Thread] = None
        self._http_address: Optional[Tuple[str, int]] = None
        self._shutdown_requested = threading.Event()
        self._drain_on_shutdown = True
        self._close_lock = threading.Lock()
        self._stopped = False
        self._healthcheck_stop = threading.Event()
        self._healthcheck_thread: Optional[threading.Thread] = None
        for index, spec in enumerate(workers):
            member = build_member(spec, index)
            self._membership.add(member)
            self._handshake(member)
        if healthcheck_interval_s and healthcheck_interval_s > 0:
            self._healthcheck_thread = threading.Thread(
                target=self._healthcheck_loop,
                args=(healthcheck_interval_s,),
                name="repro-fleet-healthcheck", daemon=True)
            self._healthcheck_thread.start()

    # ------------------------------------------------------------------ #
    # construction helpers

    @classmethod
    def local(cls, count: int,
              store: Union[str, Any, None] = None,
              policy: Optional[AdmissionPolicy] = None,
              max_pending: Optional[int] = None,
              replicas: int = DEFAULT_REPLICAS,
              max_inflight: Optional[int] = None,
              healthcheck_interval_s: float =
              DEFAULT_HEALTHCHECK_INTERVAL_S,
              **server_kwargs: Any) -> "FleetRouter":
        """Spawn ``count`` in-process workers and a router over them.

        Each worker gets its own :class:`~repro.api.session.Session`; a
        ``store`` path makes that one directory the fleet's shared cache
        tier (a characterization synthesized on ``worker-0`` is a disk
        hit on ``worker-3``).  ``server_kwargs`` pass through to every
        :class:`ReproServer` (``executor=``, ``max_batch=``, ...).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1 (got {count})")
        from repro.service.server import ReproServer

        workers = []
        for index in range(count):
            name = f"worker-{index}"
            server = ReproServer(store=store, max_pending=max_pending,
                                 worker_id=name, **server_kwargs)
            workers.append((name, server))
        return cls(workers, policy=policy, replicas=replicas,
                   max_inflight=max_inflight,
                   healthcheck_interval_s=healthcheck_interval_s)

    def _handshake(self, member: FleetMember) -> None:
        """Register with a worker; record its identity and store root."""
        try:
            member.registration = member.client.register({
                "router": self._identity(),
                "member_name": member.name,
            })
        except Exception:
            member.registration = None  # probed again by the healthcheck

    def _identity(self) -> str:
        if self._http_address is not None:
            return "http://{}:{}".format(*self._http_address)
        return "in-process-router"

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def membership(self) -> FleetMembership:
        return self._membership

    @property
    def policy(self) -> AdmissionPolicy:
        return self._policy

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown was requested (the CLI foreground loop)."""
        return self._shutdown_requested.wait(timeout)

    def initiate_shutdown(self, drain: bool = True) -> None:
        """Request an asynchronous shutdown (returns immediately)."""
        self._drain_on_shutdown = drain
        if not self._shutdown_requested.is_set():
            self._shutdown_requested.set()
            threading.Thread(target=self.close, kwargs={"drain": drain},
                             name="repro-fleet-shutdown",
                             daemon=True).start()

    def close(self, drain: Optional[bool] = None,
              close_workers: Optional[bool] = None) -> None:
        """Stop routing; drain (default) and close the fleet's workers."""
        if drain is None:
            drain = self._drain_on_shutdown
        if close_workers is None:
            close_workers = self._close_workers
        with self._close_lock:
            if self._stopped:
                return
            self._shutdown_requested.set()
            with self._lock:
                self._closed = True
            self._healthcheck_stop.set()
            if self._healthcheck_thread is not None:
                self._healthcheck_thread.join(timeout=5.0)
            if close_workers:
                for member in self._membership.all():
                    try:
                        if member.server is not None:
                            member.server.close(drain=drain)
                        else:
                            member.client.shutdown(drain=drain)
                    except Exception:
                        pass  # a dead worker cannot be shut down twice
            if self._httpd is not None:
                self._httpd.shutdown()
                self._httpd.server_close()
                if self._http_thread is not None:
                    self._http_thread.join(timeout=5.0)
                self._httpd = None
                self._http_thread = None
            self._stopped = True

    def _state(self) -> str:
        if self._stopped:
            return "stopped"
        if self._closed or self._shutdown_requested.is_set():
            return "draining"
        return "serving"

    # ------------------------------------------------------------------ #
    # healthcheck / failover

    def _healthcheck_loop(self, interval_s: float) -> None:
        while not self._healthcheck_stop.wait(interval_s):
            try:
                self.check_workers()
            except Exception:
                pass  # the loop must survive any single sweep

    def check_workers(self) -> Dict[str, List[str]]:
        """One synchronous healthcheck sweep; replays the in-flight jobs
        of every newly-dead worker onto its ring successors."""
        newly_dead, newly_alive = self._membership.healthcheck(
            failure_threshold=self._failure_threshold)
        for name in newly_alive:
            # a worker that came back re-handshakes (it may have restarted
            # and lost the registration)
            self._handshake(self._membership.get(name))
        for name in newly_dead:
            self._on_worker_death(name)
        return {"newly_dead": newly_dead, "newly_alive": newly_alive}

    def _on_worker_death(self, name: str) -> None:
        with self._lock:
            self._failovers += 1
            stranded = [job for job in self._jobs.values()
                        if job.state == "routed"
                        and job.worker_name == name]
        for job in stranded:
            try:
                self._replay(job)
            except Exception:
                pass  # the result() waiter retries and surfaces the error

    def _replay(self, job: _RoutedJob) -> None:
        """Resubmit a stranded job to the ring successor (idempotent:
        results are content-addressed, so a double-run is digest-identical
        and usually a shared-store disk hit)."""
        with self._lock:
            if job.state != "routed":
                return
            if job.replays >= len(self._membership.all()) + MAX_REPLAYS_SLACK:
                raise ServiceError(
                    f"job {job.id} exhausted its replay budget "
                    f"({job.replays} replays)")
        preference = self._membership.preference(job.token)
        if not preference:
            raise QueueFullError(
                "no alive workers to replay onto; retry when the fleet "
                "recovers", retry_after_s=5.0)
        # a dead worker is already off the ring, so `preference` never
        # names it; a *restarted* worker (alive, job lost) is preference[0]
        # again and correctly receives the fresh resubmission
        last_error: Optional[Exception] = None
        for member in preference:
            try:
                keywords: Dict[str, Any] = {"priority": job.priority,
                                            "timeout_s": job.timeout_s}
                if job.kind != "explore":
                    keywords["job"] = job.kind
                handle = member.client.submit(job.workload, **keywords)
            except (QueueFullError, ServiceError) as error:
                last_error = error
                continue
            with self._lock:
                job.worker_name = member.name
                job.worker_job_id = handle.id
                job.replays += 1
                self._replays += 1
                member.jobs_routed += 1
            return
        raise last_error if last_error is not None else ServiceError(
            f"no worker accepted the replay of job {job.id}")

    # ------------------------------------------------------------------ #
    # the job API (same verbs as ReproServer; the HTTP handler is shared)

    def submit(self, workload: Union[Workload, Mapping[str, Any]],
               priority: Union[str, int, None] = None,
               timeout_s: Optional[float] = None,
               role: Optional[str] = None,
               job: Optional[str] = None) -> Dict[str, Any]:
        """Admit, place, and file a workload; returns the fleet receipt.

        Admission first (the role must hold the priority class), then
        consistent-hash placement, then the home worker's own bounded
        queue — whose shed (``QueueFullError``) propagates to the caller
        untouched: backpressure is end-to-end, never rerouted.  ``job``
        selects the job class (``explore``/``validate``) and is forwarded
        to the home worker; placement ignores it, so a validation lands
        on the worker whose caches the matching exploration warmed.
        """
        if not isinstance(workload, Workload):
            workload = Workload.from_dict(workload)
        obs_metrics.registry().counter(
            "repro_fleet_submits_role_"
            + _ROLE_SANITIZER.sub("_", (role or "default").lower())).inc()
        with obs_trace.span("fleet.route", workload=workload.name,
                            role=role or "default") as route_span:
            return self._route(workload, priority, timeout_s, role, job,
                               route_span)

    def _route(self, workload: Workload,
               priority: Union[str, int, None],
               timeout_s: Optional[float],
               role: Optional[str],
               job: Optional[str],
               route_span: Any) -> Dict[str, Any]:
        parsed = self._policy.admit(role, priority)
        kind = parse_job_kind(job)
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "the fleet router is draining and accepts no new jobs")
            if self._max_inflight is not None:
                inflight = sum(1 for job in self._jobs.values()
                               if job.state == "routed")
                if inflight >= self._max_inflight:
                    self._shed += 1
                    retry_after = min(30.0, 1.0 + 0.1 * inflight)
                    raise QueueFullError(
                        f"router in-flight bound reached ({inflight} jobs "
                        f">= {self._max_inflight})",
                        retry_after_s=retry_after)
        token = routing_token(workload)
        preference = self._membership.preference(token)
        if not preference:
            with self._lock:
                self._shed += 1
            raise QueueFullError(
                "no alive workers in the fleet; retry when one recovers",
                retry_after_s=5.0)
        last_error: Optional[Exception] = None
        for member in preference:
            try:
                keywords: Dict[str, Any] = {"priority": parsed,
                                            "timeout_s": timeout_s}
                if kind != "explore":
                    # forwarded only when non-default, so caller-supplied
                    # member clients predating job classes keep working
                    keywords["job"] = kind
                handle = member.client.submit(workload, **keywords)
            except (QueueFullError, FleetOverloadedError) as shed:
                # FleetOverloadedError can only come from a caller-supplied
                # member client with its own retry budget; either way the
                # shed propagates — end-to-end backpressure (see docstring)
                with self._lock:
                    self._shed += 1
                raise shed
            except ServiceError as error:
                # unreachable/draining worker: confirm, fail over to the
                # ring successor (the next preference entry)
                last_error = error
                if self._membership.mark_dead(member.name):
                    self._on_worker_death(member.name)
                continue
            # the worker's receipt names the trace its job span joined
            # (this router's own trace when the header propagated); fall
            # back to the route span's trace for untraced workers
            trace_id = (getattr(handle, "trace_id", None)
                        or (route_span.context_payload() or {}).get(
                            "trace_id"))
            route_span.set_attributes(worker=member.name, token=token)
            with self._lock:
                self._sequence += 1
                job = _RoutedJob(f"fleet-{self._sequence}", workload,
                                 token, parsed, timeout_s,
                                 member.name, handle.id, handle.coalesced,
                                 kind=kind, trace_id=trace_id)
                self._jobs[job.id] = job
                self._routed += 1
                member.jobs_routed += 1
            return job.snapshot()
        raise last_error if last_error is not None else ServiceError(
            "no worker accepted the submission")

    def _job(self, job_id: str) -> _RoutedJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(
                f"unknown fleet job {job_id!r} (terminal jobs are "
                f"remembered for the last {self._history_limit})")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """The fleet-level snapshot, merged with the worker's view."""
        job = self._job(job_id)
        snapshot = job.snapshot()
        member = self._membership.get(job.worker_name)
        try:
            worker_view = member.client.status(job.worker_job_id)
        except Exception:
            worker_view = None  # worker gone; the fleet view stands
        if worker_view is not None:
            if job.state == "routed":
                snapshot["state"] = worker_view["state"]
            snapshot["worker_status"] = worker_view
        return snapshot

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> Any:
        """Wait for a fleet job, following it across failovers; a
        :class:`FlowResult` for ``explore`` jobs, a
        :class:`~repro.api.results.ValidationResult` for ``validate``.

        The wait is chunked (:data:`RESULT_CHUNK_S`) so a worker dying
        mid-wait is noticed within a chunk: the router probes the worker,
        replays the job onto the ring successor, and keeps waiting there.
        Zero jobs are lost to a worker death — replays are idempotent by
        content-addressing.
        """
        job = self._job(job_id)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            if job.cancelled:
                raise JobCancelledError(
                    f"fleet job {job.id} was cancelled")
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                error = JobTimeoutError(
                    f"fleet job {job.id} not finished within the "
                    f"{timeout}s wait (state: {job.state})")
                error.terminal = False
                raise error
            chunk = (RESULT_CHUNK_S if remaining is None
                     else max(0.05, min(RESULT_CHUNK_S, remaining)))
            with self._lock:
                member = self._membership.get(job.worker_name)
                worker_job_id = job.worker_job_id
            try:
                result = member.client.result(worker_job_id,
                                              timeout=chunk)
            except JobTimeoutError as error:
                if getattr(error, "terminal", True):
                    with self._lock:
                        job.state = "failed"
                        self._failed += 1
                        self._remember_terminal(job)
                    raise
                continue  # just this chunk expired; wait again
            except JobFailedError:
                with self._lock:
                    job.state = "failed"
                    self._failed += 1
                    self._remember_terminal(job)
                raise
            except (JobCancelledError, UnknownJobError,
                    ServiceClosedError, ServiceError) as error:
                # Either the job failed *with* its worker (replayable) or
                # the error is job-level on a healthy worker (final).
                self._failover_or_raise(job, member, error)
                continue
            with self._lock:
                job.state = "done"
                self._done += 1
                self._remember_terminal(job)
            return result

    def _failover_or_raise(self, job: _RoutedJob, member: FleetMember,
                           error: Exception) -> None:
        if isinstance(error, JobCancelledError) and job.cancelled:
            with self._lock:
                job.state = "cancelled"
                self._cancelled_count += 1
                self._remember_terminal(job)
            raise error
        if isinstance(error, UnknownJobError):
            # the worker restarted (or evicted the job from history) while
            # the fleet entry is still in flight: replay, don't surface —
            # content-addressing makes the rerun digest-identical
            self._replay(job)
            return
        if member.alive and member.probe():
            # the worker is healthy, so the error is about the job itself
            with self._lock:
                job.state = "failed"
                self._failed += 1
                self._remember_terminal(job)
            raise error
        if self._membership.mark_dead(member.name):
            with self._lock:
                self._failovers += 1
        self._replay(job)

    def _remember_terminal(self, job: _RoutedJob) -> None:
        """Bound the terminal-job history (caller holds the lock)."""
        self._terminal_order.append(job.id)
        while len(self._terminal_order) > self._history_limit:
            forgotten = self._terminal_order.popleft()
            old = self._jobs.get(forgotten)
            if old is not None and old.state != "routed":
                del self._jobs[forgotten]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Withdraw this requester fleet-wide (forwarded to the worker)."""
        job = self._job(job_id)
        with self._lock:
            job.cancelled = True
            member = self._membership.get(job.worker_name)
        try:
            worker_view = member.client.cancel(job.worker_job_id)
        except Exception:
            worker_view = None
        snapshot = job.snapshot()
        if worker_view is not None:
            snapshot["worker_status"] = worker_view
            snapshot["still_running"] = worker_view.get("still_running")
        return snapshot

    # ------------------------------------------------------------------ #
    # introspection

    def stats(self) -> Dict[str, Any]:
        """Fleet-wide aggregation: router counters, per-worker stats,
        and the cross-fleet totals (queue depths, coalesce rates, store
        counters) the north star asks a fleet operator to watch."""
        members = self._membership.all()
        workers: Dict[str, Any] = {}
        aggregate = {
            "submitted": 0, "coalesced": 0, "completed": 0, "failed": 0,
            "pending": 0, "running": 0, "shed": 0,
            "store_disk_hits": 0, "store_writes": 0, "synthesis_runs": 0,
        }
        store_roots = set()
        for member in members:
            entry = member.snapshot()
            try:
                worker_stats = member.client.stats()
            except Exception:
                worker_stats = None
            entry["stats"] = worker_stats
            workers[member.name] = entry
            if worker_stats is not None:
                queue = worker_stats.get("queue", {})
                session = worker_stats.get("session", {})
                for key in ("submitted", "coalesced", "completed",
                            "failed", "pending", "running", "shed"):
                    aggregate[key] += queue.get(key) or 0
                aggregate["store_disk_hits"] += (
                    session.get("store_disk_hits") or 0)
                aggregate["store_writes"] += session.get("store_writes") or 0
                aggregate["synthesis_runs"] += (
                    session.get("synthesis_runs") or 0)
            if entry["store_root"] is not None:
                store_roots.add(entry["store_root"])
        submitted = aggregate["submitted"]
        aggregate["coalesce_hit_rate"] = (
            aggregate["coalesced"] / submitted if submitted else 0.0)
        with self._lock:
            router = {
                "routed": self._routed,
                "failovers": self._failovers,
                "replays": self._replays,
                "shed": self._shed,
                "done": self._done,
                "failed": self._failed,
                "cancelled": self._cancelled_count,
                "inflight": sum(1 for job in self._jobs.values()
                                if job.state == "routed"),
                "max_inflight": self._max_inflight,
            }
        return {
            "state": self._state(),
            "uptime_s": time.time() - self._started_at,
            "http_address": (None if self._http_address is None
                             else "http://{}:{}".format(*self._http_address)),
            "router": router,
            "admission": {**self._policy.counters(),
                          "default_role": self._policy.default_role,
                          "roles": self._policy.roles()},
            "membership": self._membership.counters(),
            "ring": {"members": list(self._membership.ring.members),
                     "replicas": self._membership.ring.replicas},
            "store_shared": len(store_roots) <= 1,
            "store_roots": sorted(store_roots),
            "workers": workers,
            "aggregate": aggregate,
        }

    def healthz(self) -> Dict[str, Any]:
        state = self._state()
        counters = self._membership.counters()
        ok = state == "serving" and counters["workers_alive"] > 0
        return {
            "ok": ok,
            "state": state,
            "uptime_s": time.time() - self._started_at,
            "workers_alive": counters["workers_alive"],
            "workers_total": counters["workers_total"],
        }

    def metrics_text(self) -> str:
        """Prometheus text over the fleet aggregation (``GET /metrics``):
        typed walked leaves plus the registry families (per-role submit
        counters, latency histograms)."""
        return render_prometheus(self.stats(), prefix="repro_fleet",
                                 registry=obs_metrics.registry())

    def trace(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """Recorded traces (``GET /trace``, ``GET /trace/<id>``); with
        in-process workers the router's global store holds the complete
        route -> worker -> pipeline span tree."""
        store = obs_trace.global_store()
        if trace_id is None:
            return {"traces": store.summaries(),
                    "store": store.stats_snapshot()}
        spans = store.get(trace_id)
        if spans is None:
            raise UnknownJobError(
                f"unknown trace {trace_id!r} (the trace store is a ring "
                f"buffer; old traces are evicted)")
        return {"trace_id": trace_id, "spans": spans}

    def register(self, info: Mapping[str, Any]) -> Dict[str, Any]:
        """A worker announcing itself (``POST /register`` on the router).

        ``python -m repro serve --announce <router-url>`` posts here
        after binding; the router adds (or revives) the member and
        handshakes back, completing the two-way registration.
        """
        url = info.get("url")
        if not url:
            raise ValueError(
                "worker registration needs a 'url' field to route to")
        name = info.get("name") or str(url).rstrip("/")
        try:
            member = self._membership.get(name)
            self._membership.mark_alive(name)
        except KeyError:
            member = self._membership.add(build_member((name, str(url)), 0))
        self._handshake(member)
        counters = self._membership.counters()
        return {
            "ok": True,
            "member_name": name,
            "workers_alive": counters["workers_alive"],
            "workers_total": counters["workers_total"],
        }

    # ------------------------------------------------------------------ #
    # HTTP transport (the worker's handler, reused verbatim)

    def serve_http(self, host: str = "127.0.0.1",
                   port: int = 0) -> Tuple[str, int]:
        """Serve the fleet job API on ``host:port`` (0 = ephemeral)."""
        if self._httpd is not None:
            return self._http_address
        self._httpd, self._http_thread, self._http_address = (
            start_http_endpoint(self, host, port,
                                thread_name="repro-fleet-http"))
        return self._http_address


register_backend("service", "fleet", FleetRouter)
