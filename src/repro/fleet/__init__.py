"""The worker-fleet tier: consistent-hash routing over N exploration servers.

``repro.fleet`` scales the single-server service tier (:mod:`repro.service`)
horizontally: a :class:`FleetRouter` fronts N :class:`~repro.service.server
.ReproServer` workers behind the *same job API* (``submit`` / ``status`` /
``result`` / ``cancel`` / ``stats`` / ``healthz`` / ``metrics``), so
:class:`~repro.service.ReproClient`, the CLI, and the HTTP transport all
drive a fleet exactly like one worker.  Four properties define the tier:

* **deterministic placement** — every submission routes by the consistent
  hash of its workload's characterization key (:mod:`repro.fleet.ring`):
  placement is a pure function of ``(key, ring membership)``, independent of
  submission order and timing, and same-key submissions always meet on one
  worker — so worker-local request coalescing keeps deduplicating
  fleet-wide, and a replayed trace is digest-identical at any fleet size;
* **shared-store cache warming** — workers share one content-addressed
  :class:`~repro.api.store.ArtifactStore`: a characterization synthesized on
  worker A is a disk hit on worker B (zero synthesizer invocations), which
  is what makes failover replays cheap and idempotent;
* **failover** — a healthcheck loop takes dead workers off the ring (only
  *their* segments move, each to its ring successor) and replays their
  in-flight jobs; killing a worker mid-burst loses zero jobs;
* **load shedding + admission control** — bounded worker queues shed with
  ``503 + Retry-After`` end-to-end (clients retry with capped, seeded
  backoff), and a role-based :class:`AdmissionPolicy` gates priority
  classes at the router (:mod:`repro.fleet.admission`).

Quick start::

    from repro.fleet import FleetRouter
    from repro.service import ReproClient
    from repro.api import Workload

    with FleetRouter.local(4, store="~/.cache/repro") as fleet:
        client = ReproClient(fleet)
        result = client.run(Workload.from_algorithm("blur"))

Shell equivalent: ``python -m repro fleet --workers 4 --store
~/.cache/repro`` then ``python -m repro submit blur --fleet http://...``.
"""

from repro.fleet.admission import AdmissionPolicy, DEFAULT_ROLES
from repro.fleet.membership import FleetMember, FleetMembership
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing, routing_token
from repro.fleet.router import FleetRouter

__all__ = [
    "AdmissionPolicy",
    "DEFAULT_REPLICAS",
    "DEFAULT_ROLES",
    "FleetMember",
    "FleetMembership",
    "FleetRouter",
    "HashRing",
    "routing_token",
]
