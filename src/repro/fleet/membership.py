"""Fleet membership: worker records, liveness, and the live ring.

A :class:`FleetMember` pairs a stable member name (what the ring hashes)
with a :class:`~repro.service.client.ReproClient` to an in-process
:class:`~repro.service.server.ReproServer` or a remote ``http://`` URL.
:class:`FleetMembership` owns the set of members and the
:class:`~repro.fleet.ring.HashRing` built over the *alive* subset:
marking a member dead removes it from the ring (its segments fall to the
successors), marking it alive again restores it.

Liveness is probed through the worker's own ``/healthz`` — a worker that
answers but reports itself draining/stopped counts as dead for placement
(it refuses new jobs).  Registration handshakes (``POST /register``)
record each worker's identity and store root so the router can verify
the fleet shares one :class:`~repro.api.store.ArtifactStore` — the
shared cache tier that makes failover replays disk hits instead of
recomputations.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.service.client import ReproClient
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing


class FleetMember:
    """One worker as the router sees it (mutated under membership lock)."""

    def __init__(self, name: str, client: ReproClient,
                 url: Optional[str] = None,
                 server: Optional[Any] = None) -> None:
        self.name = name
        self.client = client
        #: The HTTP endpoint (None for in-process members).
        self.url = url
        #: The in-process server, when the router owns/wraps one.
        self.server = server
        self.alive = True
        self.consecutive_failures = 0
        #: The worker's answer to the registration handshake.
        self.registration: Optional[Dict[str, Any]] = None
        self.last_checked_at: Optional[float] = None
        #: Jobs this router routed here (placement census).
        self.jobs_routed = 0

    def probe(self) -> bool:
        """One liveness probe (no state mutation; membership decides)."""
        try:
            health = self.client.healthz()
        except Exception:
            return False
        return bool(health.get("ok"))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "url": self.url,
            "in_process": self.server is not None,
            "alive": self.alive,
            "consecutive_failures": self.consecutive_failures,
            "jobs_routed": self.jobs_routed,
            "worker_id": (None if self.registration is None
                          else self.registration.get("worker_id")),
            "store_root": (None if self.registration is None
                           else self.registration.get("store_root")),
        }


class FleetMembership:
    """The member set plus the ring over its alive subset (thread-safe)."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS) -> None:
        self._lock = threading.RLock()
        self._members: Dict[str, FleetMember] = {}
        self._ring = HashRing(replicas=replicas)
        self._deaths = 0
        self._revivals = 0

    # ------------------------------------------------------------------ #
    # membership edits

    def add(self, member: FleetMember) -> FleetMember:
        with self._lock:
            if member.name in self._members:
                raise ValueError(
                    f"fleet member {member.name!r} already exists")
            self._members[member.name] = member
            self._ring.add(member.name)
            return member

    def get(self, name: str) -> FleetMember:
        with self._lock:
            member = self._members.get(name)
        if member is None:
            raise KeyError(f"unknown fleet member {name!r}")
        return member

    def mark_dead(self, name: str) -> bool:
        """Remove ``name`` from placement; True if it was alive before."""
        with self._lock:
            member = self._members.get(name)
            if member is None or not member.alive:
                return False
            member.alive = False
            self._ring.remove(name)
            self._deaths += 1
            return True

    def mark_alive(self, name: str) -> bool:
        """Restore ``name`` to placement; True if it was dead before."""
        with self._lock:
            member = self._members.get(name)
            if member is None or member.alive:
                return False
            member.alive = True
            member.consecutive_failures = 0
            self._ring.add(name)
            self._revivals += 1
            return True

    # ------------------------------------------------------------------ #
    # placement

    def preference(self, token: str) -> List[FleetMember]:
        """Alive members in failover order for ``token`` (owner first)."""
        with self._lock:
            return [self._members[name]
                    for name in self._ring.preference(token)]

    def alive(self) -> List[FleetMember]:
        with self._lock:
            return [member for member in self._members.values()
                    if member.alive]

    def all(self) -> List[FleetMember]:
        with self._lock:
            return list(self._members.values())

    @property
    def ring(self) -> HashRing:
        return self._ring

    # ------------------------------------------------------------------ #
    # liveness sweep

    def healthcheck(self, failure_threshold: int = 1
                    ) -> Tuple[List[str], List[str]]:
        """Probe every member; returns ``(newly_dead, newly_alive)``.

        A member is marked dead after ``failure_threshold`` consecutive
        failed probes (1 = immediately), and alive again on the first
        successful probe.
        """
        newly_dead: List[str] = []
        newly_alive: List[str] = []
        for member in self.all():
            ok = member.probe()
            with self._lock:
                member.last_checked_at = time.time()
                if ok:
                    member.consecutive_failures = 0
                    if not member.alive and self.mark_alive(member.name):
                        newly_alive.append(member.name)
                else:
                    member.consecutive_failures += 1
                    if (member.alive and member.consecutive_failures
                            >= failure_threshold
                            and self.mark_dead(member.name)):
                        newly_dead.append(member.name)
        return newly_dead, newly_alive

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "workers_total": len(self._members),
                "workers_alive": sum(1 for m in self._members.values()
                                     if m.alive),
                "deaths": self._deaths,
                "revivals": self._revivals,
            }


def build_member(spec: Union[str, Tuple[str, Any], Any],
                 index: int) -> FleetMember:
    """Normalize a worker spec into a :class:`FleetMember`.

    ``spec`` may be an ``http://`` URL string, an in-process server-like
    object (``ReproServer``), a ready :class:`ReproClient`, or a
    ``(name, any-of-the-above)`` pair.  Default names: ``worker-<index>``
    for in-process members, the URL for remote ones.
    """
    name: Optional[str] = None
    if (isinstance(spec, tuple) and len(spec) == 2
            and isinstance(spec[0], str)):
        name, spec = spec
    # router-internal clients run with retries=0: a worker's shed must
    # propagate to the router (and on to the end client) immediately,
    # never be absorbed by an intermediate retry loop
    if isinstance(spec, str):
        client = ReproClient(spec, retries=0)
        return FleetMember(name or spec.rstrip("/"), client,
                           url=spec.rstrip("/"))
    if isinstance(spec, ReproClient):
        url = spec._base_urls[0] if spec._base_urls else None
        return FleetMember(name or url or f"worker-{index}", spec, url=url)
    if hasattr(spec, "submit") and hasattr(spec, "result"):
        return FleetMember(name or f"worker-{index}",
                           ReproClient(spec, retries=0), server=spec)
    raise ValueError(
        f"worker spec must be a URL, a server object, a ReproClient, or "
        f"a (name, spec) pair (got {spec!r})")
