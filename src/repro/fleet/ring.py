"""Consistent-hash placement: which worker owns a characterization key.

The router places every submission by the **consistent hash of its
workload's characterization key** — the same key PR 3's deterministic
key-multiset sharding groups by (:func:`repro.api.executor
.shard_workloads`), lifted from "which shard of this batch" to "which
worker of this fleet".  Placement is a pure function of ``(key token,
ring membership)``:

* independent of submission order, timing, and fleet history — replaying
  a trace in any order lands every job on the same worker;
* same-key jobs always land on the same worker, so the worker-local
  request coalescing of :mod:`repro.service` keeps working fleet-wide
  (two users asking for the same exploration meet in one queue);
* **minimal disruption**: removing a member moves *only that member's*
  segments to their ring successors, and adding one steals segments only
  for itself — every other key keeps its owner (asserted in
  ``tests/fleet/test_ring.py``).

Hashing is :func:`hashlib.sha256` over deterministic strings (member
names and key tokens), never built-in ``hash()`` — placement must agree
across processes and ``PYTHONHASHSEED`` values.  Each member is placed at
``replicas`` points on the ring (virtual nodes) so segment sizes stay
balanced at small fleet sizes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.workload import Workload

#: Virtual nodes per member: enough to keep max/mean segment skew low for
#: single-digit fleets while keeping ring edits cheap.
DEFAULT_REPLICAS = 64


def _hash_point(text: str) -> int:
    """A point on the ring (first 8 bytes of sha256, big-endian)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


def routing_token(workload: Workload) -> str:
    """The deterministic string the ring hashes for a workload.

    Derived from :meth:`Workload.characterization_key` — the identity
    used for sharding (PR 3) and characterization caching, so everything
    that would share synthesis/calibration work routes to one worker.
    ``repr`` of the key tuple is deterministic (frozen dataclasses,
    enums, strings, numbers — no set/dict iteration order, no id()s).
    """
    return hashlib.sha256(
        repr(workload.characterization_key()).encode("utf-8")).hexdigest()


class HashRing:
    """A consistent-hash ring over named members (virtual-node variant)."""

    def __init__(self, members: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1 (got {replicas})")
        self._replicas = replicas
        #: Sorted virtual-node points and their parallel owner list.
        self._points: List[int] = []
        self._owners: List[str] = []
        self._members: Dict[str, Tuple[int, ...]] = {}
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------ #
    # membership

    def add(self, member: str) -> None:
        """Place ``member`` on the ring (idempotent)."""
        if not member:
            raise ValueError("member name must be non-empty")
        if member in self._members:
            return
        points = tuple(_hash_point(f"{member}#{replica}")
                       for replica in range(self._replicas))
        self._members[member] = points
        for point in points:
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, member)

    def remove(self, member: str) -> None:
        """Take ``member`` off the ring (idempotent); its segments fall
        to their ring successors, every other segment stays put."""
        if member not in self._members:
            return
        del self._members[member]
        keep = [(point, owner) for point, owner
                in zip(self._points, self._owners) if owner != member]
        self._points = [point for point, _owner in keep]
        self._owners = [owner for _point, owner in keep]

    @property
    def members(self) -> Tuple[str, ...]:
        """Current membership, sorted (identity of the ring)."""
        return tuple(sorted(self._members))

    @property
    def replicas(self) -> int:
        return self._replicas

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # ------------------------------------------------------------------ #
    # placement

    def owner(self, token: str) -> str:
        """The member owning ``token`` (the first point at or after its
        hash, wrapping at the top of the ring)."""
        preference = self.preference(token, count=1)
        if not preference:
            raise LookupError("the ring has no members")
        return preference[0]

    def preference(self, token: str,
                   count: Optional[int] = None) -> List[str]:
        """The failover order for ``token``: its owner, then each next
        *distinct* member walking clockwise.

        ``count`` caps the list (default: every member).  The first entry
        is :meth:`owner`; entry ``i+1`` is where ``token``'s jobs replay
        if the first ``i+1`` owners die — successor failover, the same
        walk :class:`~repro.fleet.router.FleetRouter` performs.
        """
        if not self._members:
            return []
        if count is None:
            count = len(self._members)
        start = bisect.bisect(self._points, _hash_point(token))
        ordered: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                ordered.append(owner)
                if len(ordered) >= count:
                    break
        return ordered

    def segment_counts(self, tokens: Iterable[str]) -> Dict[str, int]:
        """How many of ``tokens`` each member owns (placement census for
        stats/bench; members owning nothing still appear with 0)."""
        counts = {member: 0 for member in self._members}
        for token in tokens:
            counts[self.owner(token)] += 1
        return counts
