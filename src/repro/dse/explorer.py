"""The design-space explorer.

This is the second phase of the flow (Figure 2 of the paper): starting from
the dependency analysis of the kernel it characterises every cone shape the
architecture space may use, calibrates the Equation-1 area model from a small
number of reference syntheses, estimates area and throughput for every
candidate architecture, and extracts the Pareto set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.architecture.cone import ConeShape
from repro.architecture.enumeration import ArchitectureSpace
from repro.architecture.template import ConeArchitecture
from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import pareto_front
from repro.estimation.area_model import (
    AreaModelValidation,
    CalibrationPoint,
    RegisterAreaModel,
    validate_against_synthesis,
)
from repro.estimation.throughput_model import (
    ArchitecturePerformance,
    ConePerformance,
    ThroughputModel,
)
from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import KernelProperties, validate_kernel
from repro.ir.dfg import build_dfg_from_cone
from repro.ir.operators import DataFormat, OperatorLibrary, default_library
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760
from repro.synth.synthesizer import Synthesizer


@dataclass
class ConeCharacterization:
    """Area/latency characterisation of one cone shape."""

    shape: ConeShape
    register_count: int
    operation_count: int
    critical_path_depth: int
    estimated_area_luts: float = 0.0
    actual_area_luts: Optional[float] = None
    latency_cycles: int = 1
    synthesized: bool = False

    @property
    def area_luts(self) -> float:
        """Best available area figure (synthesis when present, else estimate)."""
        if self.actual_area_luts is not None:
            return self.actual_area_luts
        return self.estimated_area_luts

    @property
    def window_area(self) -> int:
        return self.shape.window_area


@dataclass
class ExplorationResult:
    """Everything the exploration produces."""

    kernel_name: str
    device_name: str
    frame_width: int
    frame_height: int
    total_iterations: int
    properties: KernelProperties
    characterizations: Dict[Tuple[int, int], ConeCharacterization]
    design_points: List[DesignPoint]
    pareto: List[DesignPoint]
    area_validations: Dict[int, AreaModelValidation]
    synthesis_runs: int
    synthesis_runs_avoided: int
    tool_runtime_spent_s: float
    tool_runtime_avoided_s: float

    def characterization(self, window_side: int, depth: int) -> ConeCharacterization:
        return self.characterizations[(window_side, depth)]

    def best_fitting_point(self) -> Optional[DesignPoint]:
        """Fastest design point that fits the target device."""
        fitting = [p for p in self.design_points if p.fits_device]
        if not fitting:
            return None
        return min(fitting, key=lambda p: p.seconds_per_frame)

    def points_for(self, window_side: Optional[int] = None,
                   primary_depth: Optional[int] = None) -> List[DesignPoint]:
        points = self.design_points
        if window_side is not None:
            points = [p for p in points
                      if p.architecture.window_side == window_side]
        if primary_depth is not None:
            points = [p for p in points if p.primary_depth == primary_depth]
        return points


class DesignSpaceExplorer:
    """Runs the estimation + exploration phase of the flow for one kernel."""

    def __init__(self, kernel: StencilKernel,
                 device: FpgaDevice = VIRTEX6_XC6VLX760,
                 data_format: DataFormat = DataFormat.FIXED16,
                 window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
                 max_depth: int = 5,
                 max_cones_per_depth: int = 16,
                 calibration_windows_per_depth: int = 2,
                 synthesize_all: bool = False,
                 onchip_port_elements_per_cycle: int = 16,
                 params: Optional[Mapping[str, float]] = None) -> None:
        self.kernel = kernel
        self.device = device
        self.data_format = data_format
        self.library: OperatorLibrary = default_library(data_format)
        self.window_sides = tuple(sorted(set(window_sides)))
        self.max_depth = max_depth
        self.max_cones_per_depth = max_cones_per_depth
        self.calibration_windows_per_depth = max(2, calibration_windows_per_depth)
        self.synthesize_all = synthesize_all
        self.properties = validate_kernel(kernel)
        self.cone_builder = ConeExpressionBuilder(kernel, params)
        self.synthesizer = Synthesizer(device, self.library)
        readonly = sum(self.properties.components_per_field[name]
                       for name in self.properties.readonly_fields)
        self.throughput_model = ThroughputModel(
            device=device,
            data_format=data_format,
            readonly_components=readonly,
            onchip_port_elements_per_cycle=onchip_port_elements_per_cycle,
        )
        #: Average combinational delay used to estimate the latency of cones
        #: that are not synthesised (their pipeline depth is derived from the
        #: expression-DAG depth).
        self.mean_operator_delay_ns = 2.1
        # characterisations only depend on the iteration count (through the
        # set of depths in the space), so repeated explorations — e.g. the
        # same kernel evaluated on several frame sizes — reuse them.
        self._characterization_cache: Dict[int, Tuple[
            Dict[Tuple[int, int], ConeCharacterization],
            Dict[int, AreaModelValidation]]] = {}

    # ------------------------------------------------------------------ #
    # phase 1: cone characterisation and area-model calibration

    def characterize_cones(self, total_iterations: int
                           ) -> Tuple[Dict[Tuple[int, int], ConeCharacterization],
                                      Dict[int, AreaModelValidation]]:
        """Characterise every cone shape of the space; calibrate Equation 1."""
        cached = self._characterization_cache.get(total_iterations)
        if cached is not None:
            return cached
        space = self._space(total_iterations)
        shapes = space.distinct_shapes()
        characterizations: Dict[Tuple[int, int], ConeCharacterization] = {}

        # group shapes by depth: Equation 1 runs along the window-size axis
        by_depth: Dict[int, List[int]] = {}
        for window, depth in shapes:
            by_depth.setdefault(depth, []).append(window)

        validations: Dict[int, AreaModelValidation] = {}
        period_ns = 1e9 / self.device.typical_clock_hz

        for depth, windows in sorted(by_depth.items()):
            windows = sorted(windows)
            registers: Dict[int, int] = {}
            per_window: Dict[int, ConeCharacterization] = {}

            for window in windows:
                cone = self.cone_builder.build(window, depth)
                characterization = ConeCharacterization(
                    shape=ConeShape(window, depth),
                    register_count=cone.register_count,
                    operation_count=cone.operation_count,
                    critical_path_depth=cone.critical_path_depth,
                )
                registers[window * window] = cone.register_count
                per_window[window] = characterization

                calibration_slot = windows.index(window) < self.calibration_windows_per_depth
                if calibration_slot or self.synthesize_all:
                    dfg = build_dfg_from_cone(cone)
                    report = self.synthesizer.synthesize(dfg)
                    characterization.actual_area_luts = report.area.luts
                    characterization.latency_cycles = report.timing.latency_cycles
                    characterization.synthesized = True
                else:
                    characterization.latency_cycles = max(1, math.ceil(
                        characterization.critical_path_depth
                        * self.mean_operator_delay_ns / period_ns))

            # calibrate the Equation-1 model on the first syntheses of this depth
            calibration = [
                CalibrationPoint(key=w * w,
                                 register_count=per_window[w].register_count,
                                 actual_area_luts=per_window[w].actual_area_luts or 0.0)
                for w in windows[:self.calibration_windows_per_depth]
            ]
            if len(calibration) >= 2:
                model = RegisterAreaModel(self.library)
                model.calibrate(calibration)
                estimates = {e.key: e.estimated_area_luts
                             for e in model.estimate_series(registers)}
            else:
                # a single window in the family: its synthesis result is used
                # directly, no incremental model is needed.
                estimates = {windows[0] ** 2:
                             per_window[windows[0]].actual_area_luts or 0.0}
            for window in windows:
                per_window[window].estimated_area_luts = estimates[window * window]

            actual = {w * w: per_window[w].actual_area_luts
                      for w in windows if per_window[w].actual_area_luts is not None}
            validations[depth] = validate_against_synthesis(actual, estimates, depth=depth)

            for window in windows:
                characterizations[(window, depth)] = per_window[window]

        self._characterization_cache[total_iterations] = (characterizations,
                                                          validations)
        return characterizations, validations

    # ------------------------------------------------------------------ #
    # phase 2: architecture space evaluation

    def explore(self, total_iterations: int, frame_width: int, frame_height: int,
                constraints: Optional[DseConstraints] = None) -> ExplorationResult:
        """Run the full exploration and return design points plus the Pareto set."""
        characterizations, validations = self.characterize_cones(total_iterations)
        space = self._space(total_iterations)
        constraints = constraints or DseConstraints()

        usable_luts = self.device.usable_capacity.luts
        design_points: List[DesignPoint] = []

        for architecture in space.architectures():
            area_by_depth: Dict[int, float] = {}
            estimated = False
            valid = True
            for depth in architecture.distinct_depths:
                characterization = characterizations.get(
                    (architecture.window_side, depth))
                if characterization is None:
                    valid = False
                    break
                area_by_depth[depth] = characterization.area_luts
                estimated = estimated or not characterization.synthesized
            if not valid:
                continue

            total_area = sum(architecture.cone_counts[d] * area_by_depth[d]
                             for d in architecture.distinct_depths)
            performance = self._performance(architecture, characterizations,
                                            frame_width, frame_height)
            point = DesignPoint(
                architecture=architecture,
                area_luts=total_area,
                area_estimated=estimated,
                performance=performance,
                fits_device=total_area <= usable_luts,
                cone_area_by_depth=dict(area_by_depth),
            )
            if constraints.admits(point):
                design_points.append(point)

        pareto = pareto_front(design_points)
        full_space_runs = len(characterizations)
        runs_spent = self.synthesizer.runs
        runs_avoided = max(0, full_space_runs - runs_spent)
        avoided_runtime = self._avoided_runtime(characterizations)

        return ExplorationResult(
            kernel_name=self.kernel.name,
            device_name=self.device.name,
            frame_width=frame_width,
            frame_height=frame_height,
            total_iterations=total_iterations,
            properties=self.properties,
            characterizations=characterizations,
            design_points=design_points,
            pareto=pareto,
            area_validations=validations,
            synthesis_runs=runs_spent,
            synthesis_runs_avoided=runs_avoided,
            tool_runtime_spent_s=self.synthesizer.total_tool_runtime_s,
            tool_runtime_avoided_s=avoided_runtime,
        )

    # ------------------------------------------------------------------ #
    # helpers

    def _space(self, total_iterations: int) -> ArchitectureSpace:
        return ArchitectureSpace(
            kernel_name=self.kernel.name,
            total_iterations=total_iterations,
            radius=self.properties.radius,
            components=self.properties.total_state_components,
            window_sides=self.window_sides,
            max_depth=self.max_depth,
            max_cones_per_depth=self.max_cones_per_depth,
        )

    def _performance(self, architecture: ConeArchitecture,
                     characterizations: Mapping[Tuple[int, int], ConeCharacterization],
                     frame_width: int, frame_height: int) -> ArchitecturePerformance:
        cone_performance: Dict[int, ConePerformance] = {}
        for depth in architecture.distinct_depths:
            characterization = characterizations[(architecture.window_side, depth)]
            cone_performance[depth] = ConePerformance(
                depth=depth,
                window_side=architecture.window_side,
                latency_cycles=characterization.latency_cycles,
                initiation_interval=1,
            )
        return self.throughput_model.evaluate(architecture, cone_performance,
                                              frame_width, frame_height)

    def _avoided_runtime(self, characterizations: Mapping[Tuple[int, int],
                                                          ConeCharacterization]) -> float:
        """Tool runtime a full-synthesis exploration would have cost extra."""
        avoided = 0.0
        for characterization in characterizations.values():
            if not characterization.synthesized:
                # approximate with the same runtime model the synthesiser uses,
                # fed with the estimated area.
                luts = characterization.estimated_area_luts
                avoided += 40.0 + 90.0 * (max(luts, 0.0) / 10_000.0) ** 1.15
        return avoided
