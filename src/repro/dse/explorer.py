"""The design-space explorer.

This is the second phase of the flow (Figure 2 of the paper): starting from
the dependency analysis of the kernel it characterises every cone shape the
architecture space may use, calibrates the Equation-1 area model from a small
number of reference syntheses, estimates area and throughput for every
candidate architecture, and extracts the Pareto set.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.architecture.cone import ConeShape
from repro.architecture.enumeration import ArchitectureSpace
from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.engine import explore_columnar, supports_columnar
from repro.dse.pareto import pareto_front
from repro.dse.stream import (DEFAULT_CHUNK_ROWS, STREAM_AUTO_THRESHOLD,
                              explore_stream)
from repro.estimation.area_model import (
    AreaModelValidation,
    CalibrationPoint,
    RegisterAreaModel,
    validate_against_synthesis,
)
from repro.estimation.throughput_model import (
    ArchitecturePerformance,
    ConePerformance,
    ThroughputModel,
)
from repro.frontend.kernel_ir import StencilKernel
from repro.frontend.semantic import KernelProperties, validate_kernel
from repro.ir.dfg import build_dfg_from_cone
from repro.ir.operators import DataFormat, OperatorLibrary, default_library
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.synth.fpga_device import FpgaDevice, VIRTEX6_XC6VLX760
from repro.synth.synthesizer import Synthesizer


@dataclass
class ConeCharacterization:
    """Area/latency characterisation of one cone shape."""

    shape: ConeShape
    register_count: int
    operation_count: int
    critical_path_depth: int
    estimated_area_luts: float = 0.0
    actual_area_luts: Optional[float] = None
    latency_cycles: int = 1
    synthesized: bool = False
    #: Simulated tool runtime of this shape's synthesis run (0 when the
    #: shape was only estimated).
    tool_runtime_s: float = 0.0

    @property
    def area_luts(self) -> float:
        """Best available area figure (synthesis when present, else estimate)."""
        if self.actual_area_luts is not None:
            return self.actual_area_luts
        return self.estimated_area_luts

    @property
    def window_area(self) -> int:
        return self.shape.window_area

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "shape": self.shape.to_dict(),
            "register_count": self.register_count,
            "operation_count": self.operation_count,
            "critical_path_depth": self.critical_path_depth,
            "estimated_area_luts": self.estimated_area_luts,
            "actual_area_luts": self.actual_area_luts,
            "latency_cycles": self.latency_cycles,
            "synthesized": self.synthesized,
            "tool_runtime_s": self.tool_runtime_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConeCharacterization":
        return cls(
            shape=ConeShape.from_dict(data["shape"]),
            register_count=data["register_count"],
            operation_count=data["operation_count"],
            critical_path_depth=data["critical_path_depth"],
            estimated_area_luts=data["estimated_area_luts"],
            actual_area_luts=data["actual_area_luts"],
            latency_cycles=data["latency_cycles"],
            synthesized=data["synthesized"],
            tool_runtime_s=data.get("tool_runtime_s", 0.0),
        )


@dataclass
class ExplorationResult:
    """Everything the exploration produces."""

    kernel_name: str
    device_name: str
    frame_width: int
    frame_height: int
    total_iterations: int
    properties: KernelProperties
    characterizations: Dict[Tuple[int, int], ConeCharacterization]
    design_points: List[DesignPoint]
    pareto: List[DesignPoint]
    area_validations: Dict[int, AreaModelValidation]
    synthesis_runs: int
    synthesis_runs_avoided: int
    tool_runtime_spent_s: float
    tool_runtime_avoided_s: float
    #: Streaming-evaluation metadata (chunking, pushdown, mask-cache
    #: counters) when the exploration ran out-of-core; ``None`` on the
    #: in-memory paths.  When set, ``design_points`` holds only the
    #: frontier members (the streamed space was never materialized).
    streaming: Optional[Dict[str, object]] = None

    def characterization(self, window_side: int, depth: int) -> ConeCharacterization:
        return self.characterizations[(window_side, depth)]

    def best_fitting_point(self) -> Optional[DesignPoint]:
        """Fastest design point that fits the target device."""
        fitting = [p for p in self.design_points if p.fits_device]
        if not fitting:
            return None
        return min(fitting, key=lambda p: p.seconds_per_frame)

    def points_for(self, window_side: Optional[int] = None,
                   primary_depth: Optional[int] = None) -> List[DesignPoint]:
        points = self.design_points
        if window_side is not None:
            points = [p for p in points
                      if p.architecture.window_side == window_side]
        if primary_depth is not None:
            points = [p for p in points if p.primary_depth == primary_depth]
        return points

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of the full exploration outcome.

        Pareto points are stored as indices into ``design_points`` so the
        deserialized Pareto set is the *same* subset (object identity within
        the result) rather than a parallel copy.
        """
        index_by_id = {id(p): i for i, p in enumerate(self.design_points)}
        pareto: List[object] = []
        for point in self.pareto:
            position = index_by_id.get(id(point))
            pareto.append(point.to_dict() if position is None else position)
        return {
            "kernel_name": self.kernel_name,
            "device_name": self.device_name,
            "frame_width": self.frame_width,
            "frame_height": self.frame_height,
            "total_iterations": self.total_iterations,
            "properties": self.properties.to_dict(),
            "characterizations": [c.to_dict()
                                  for c in self.characterizations.values()],
            "design_points": [p.to_dict() for p in self.design_points],
            "pareto": pareto,
            "area_validations": {str(d): v.to_dict()
                                 for d, v in self.area_validations.items()},
            "synthesis_runs": self.synthesis_runs,
            "synthesis_runs_avoided": self.synthesis_runs_avoided,
            "tool_runtime_spent_s": self.tool_runtime_spent_s,
            "tool_runtime_avoided_s": self.tool_runtime_avoided_s,
            # emitted only for streamed explorations, so in-memory results
            # keep their historical serialization byte for byte
            **({} if self.streaming is None
               else {"streaming": dict(self.streaming)}),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExplorationResult":
        characterizations = {}
        for entry in data["characterizations"]:
            characterization = ConeCharacterization.from_dict(entry)
            shape = characterization.shape
            characterizations[(shape.window_side, shape.depth)] = characterization
        design_points = [DesignPoint.from_dict(p)
                         for p in data["design_points"]]
        pareto = [design_points[entry] if isinstance(entry, int)
                  else DesignPoint.from_dict(entry)
                  for entry in data["pareto"]]
        return cls(
            kernel_name=data["kernel_name"],
            device_name=data["device_name"],
            frame_width=data["frame_width"],
            frame_height=data["frame_height"],
            total_iterations=data["total_iterations"],
            properties=KernelProperties.from_dict(data["properties"]),
            characterizations=characterizations,
            design_points=design_points,
            pareto=pareto,
            area_validations={int(d): AreaModelValidation.from_dict(v)
                              for d, v in data["area_validations"].items()},
            synthesis_runs=data["synthesis_runs"],
            synthesis_runs_avoided=data["synthesis_runs_avoided"],
            tool_runtime_spent_s=data["tool_runtime_spent_s"],
            tool_runtime_avoided_s=data["tool_runtime_avoided_s"],
            streaming=data.get("streaming"),
        )


#: One cached depth family: per-window characterizations + Eq.-1 validation.
FamilyEntry = Tuple[Dict[int, ConeCharacterization], AreaModelValidation]


class DesignSpaceExplorer:
    """Runs the estimation + exploration phase of the flow for one kernel.

    The three analytical components are injected as keyword-only factories
    (defaulting to the built-in analytic models), so alternative backends —
    registered through :mod:`repro.api.registry` and resolved by
    :func:`repro.api.pipeline.build_explorer` — slot in without subclassing:

    * ``synthesizer_factory(device=..., library=...)`` builds the synthesis
      backend (must expose ``synthesize()``, ``runs``,
      ``total_tool_runtime_s``);
    * ``area_model_factory(library=...)`` builds one Equation-1-style
      estimator per depth family (``calibrate()``/``estimate_series()``);
    * ``throughput_model_factory(device=..., data_format=...,
      readonly_components=..., onchip_port_elements_per_cycle=...)`` builds
      the frame-level performance model (``evaluate()``).

    ``family_store`` (duck-typed ``load(depth, windows)`` /
    ``save(depth, windows, family)``, see
    :class:`repro.api.store.CharacterizationStoreAdapter`) persists the
    per-depth-family characterizations across processes; the in-memory
    family cache remains the first-level cache in front of it.
    """

    def __init__(self, kernel: StencilKernel,
                 device: FpgaDevice = VIRTEX6_XC6VLX760,
                 data_format: DataFormat = DataFormat.FIXED16,
                 window_sides: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
                 max_depth: int = 5,
                 max_cones_per_depth: int = 16,
                 calibration_windows_per_depth: int = 2,
                 synthesize_all: bool = False,
                 onchip_port_elements_per_cycle: int = 16,
                 params: Optional[Mapping[str, float]] = None,
                 *,
                 synthesizer_factory: Optional[Callable[..., Any]] = None,
                 area_model_factory: Optional[Callable[..., Any]] = None,
                 throughput_model_factory: Optional[Callable[..., Any]] = None,
                 family_store: Optional[Any] = None) -> None:
        self.kernel = kernel
        self.device = device
        self.data_format = data_format
        self.library: OperatorLibrary = default_library(data_format)
        self.window_sides = tuple(sorted(set(window_sides)))
        self.max_depth = max_depth
        self.max_cones_per_depth = max_cones_per_depth
        # Equation 1 interpolates alpha between at least two reference
        # syntheses per depth; fewer calibration windows cannot anchor the
        # model, so reject the setting instead of silently raising it.
        if calibration_windows_per_depth < 2:
            raise ValueError(
                f"calibration_windows_per_depth must be >= 2 (got "
                f"{calibration_windows_per_depth}): the Equation-1 area model "
                "needs at least two reference syntheses per cone depth to "
                "calibrate alpha")
        self.calibration_windows_per_depth = calibration_windows_per_depth
        self.synthesize_all = synthesize_all
        self.properties = validate_kernel(kernel)
        self.cone_builder = ConeExpressionBuilder(kernel, params)
        self._synthesizer_factory = synthesizer_factory or Synthesizer
        self._area_model_factory = area_model_factory or RegisterAreaModel
        self._throughput_model_factory = (throughput_model_factory
                                          or ThroughputModel)
        self.family_store = family_store
        self.synthesizer = self._synthesizer_factory(device=device,
                                                     library=self.library)
        readonly = sum(self.properties.components_per_field[name]
                       for name in self.properties.readonly_fields)
        self._readonly_components = readonly
        self.onchip_port_elements_per_cycle = onchip_port_elements_per_cycle
        self.throughput_model = self._throughput_model_factory(
            device=device,
            data_format=data_format,
            readonly_components=readonly,
            onchip_port_elements_per_cycle=onchip_port_elements_per_cycle,
        )
        #: Average combinational delay used to estimate the latency of cones
        #: that are not synthesised (their pipeline depth is derived from the
        #: expression-DAG depth).
        self.mean_operator_delay_ns = 2.1
        # Characterisations depend only on the cone shape, not on the frame
        # size or the iteration count: the family cache shares the actual
        # characterisation (and its synthesis runs) of each (depth, window
        # family) across iteration counts; per-iteration shape tables are
        # reassembled from it on demand (cheap).
        self._family_cache: Dict[Tuple[int, Tuple[int, ...]],
                                 FamilyEntry] = {}
        # guards _family_cache against concurrent insert-vs-snapshot races
        # (accounting reads may come from other threads mid-exploration)
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # phase 1: cone characterisation and area-model calibration

    def characterize_cones(self, total_iterations: int
                           ) -> Tuple[Dict[Tuple[int, int], ConeCharacterization],
                                      Dict[int, AreaModelValidation]]:
        """Characterise every cone shape of the space; calibrate Equation 1.

        Characterisation (including the reference syntheses) is cached per
        ``(depth, window family)``, so exploring the same kernel with a
        different total iteration count only pays for depth families it has
        not met before.
        """
        space = self._space(total_iterations)
        shapes = space.distinct_shapes()
        characterizations: Dict[Tuple[int, int], ConeCharacterization] = {}

        # group shapes by depth: Equation 1 runs along the window-size axis
        by_depth: Dict[int, List[int]] = {}
        for window, depth in shapes:
            by_depth.setdefault(depth, []).append(window)

        validations: Dict[int, AreaModelValidation] = {}

        for depth, windows in sorted(by_depth.items()):
            windows = tuple(sorted(windows))
            with self._cache_lock:
                family = self._family_cache.get((depth, windows))
            if family is None and self.family_store is not None:
                # second-level cache: a previous process may have paid for
                # this family already (corrupt/mismatched artifacts load as
                # None and fall through to recomputation)
                family = self.family_store.load(depth, windows)
                if family is not None:
                    with self._cache_lock:
                        family = self._family_cache.setdefault(
                            (depth, windows), family)
            if family is None:
                family = self._characterize_family(depth, windows)
                with self._cache_lock:
                    # another thread may have won the race; keep its entry
                    # so every caller shares one characterisation
                    family = self._family_cache.setdefault((depth, windows),
                                                           family)
                if self.family_store is not None:
                    # a racing duplicate save rewrites identical content
                    # atomically, so last-writer-wins is harmless
                    self.family_store.save(depth, windows, family)
            per_window, validation = family
            validations[depth] = validation
            for window in windows:
                characterizations[(window, depth)] = per_window[window]

        return characterizations, validations

    def has_characterized(self, total_iterations: int) -> bool:
        """Whether every depth family ``total_iterations`` needs is already
        in the in-memory family cache — i.e. :meth:`characterize_cones`
        for that iteration count would perform zero synthesis runs.

        Used by :meth:`repro.api.session.Session` batch scheduling to tell
        genuinely warm reruns (answer in-process) from workloads whose
        iteration count introduces depth families this explorer has not
        paid for yet (worth forking for).
        """
        space = self._space(total_iterations)
        by_depth: Dict[int, List[int]] = {}
        for window, depth in space.distinct_shapes():
            by_depth.setdefault(depth, []).append(window)
        with self._cache_lock:
            return all((depth, tuple(sorted(windows))) in self._family_cache
                       for depth, windows in by_depth.items())

    def _characterize_family(self, depth: int, windows: Sequence[int]
                             ) -> Tuple[Dict[int, ConeCharacterization],
                                        AreaModelValidation]:
        """Characterise one depth family and calibrate its Equation-1 model."""
        period_ns = 1e9 / self.device.typical_clock_hz
        registers: Dict[int, int] = {}
        per_window: Dict[int, ConeCharacterization] = {}

        for window in windows:
            cone = self.cone_builder.build(window, depth)
            characterization = ConeCharacterization(
                shape=ConeShape(window, depth),
                register_count=cone.register_count,
                operation_count=cone.operation_count,
                critical_path_depth=cone.critical_path_depth,
            )
            registers[window * window] = cone.register_count
            per_window[window] = characterization

            calibration_slot = windows.index(window) < self.calibration_windows_per_depth
            if calibration_slot or self.synthesize_all:
                dfg = build_dfg_from_cone(cone)
                report = self.synthesizer.synthesize(dfg)
                characterization.actual_area_luts = report.area.luts
                characterization.latency_cycles = report.timing.latency_cycles
                characterization.synthesized = True
                characterization.tool_runtime_s = report.estimated_tool_runtime_s
            else:
                characterization.latency_cycles = max(1, math.ceil(
                    characterization.critical_path_depth
                    * self.mean_operator_delay_ns / period_ns))

        # calibrate the Equation-1 model on the first syntheses of this depth
        calibration = [
            CalibrationPoint(key=w * w,
                             register_count=per_window[w].register_count,
                             actual_area_luts=per_window[w].actual_area_luts or 0.0)
            for w in windows[:self.calibration_windows_per_depth]
        ]
        if len(calibration) >= 2:
            model = self._area_model_factory(library=self.library)
            model.calibrate(calibration)
            estimates = {e.key: e.estimated_area_luts
                         for e in model.estimate_series(registers)}
        else:
            # a single window in the family: its synthesis result is used
            # directly, no incremental model is needed.
            estimates = {windows[0] ** 2:
                         per_window[windows[0]].actual_area_luts or 0.0}
        for window in windows:
            per_window[window].estimated_area_luts = estimates[window * window]

        actual = {w * w: per_window[w].actual_area_luts
                  for w in windows if per_window[w].actual_area_luts is not None}
        validation = validate_against_synthesis(actual, estimates, depth=depth)
        return per_window, validation

    # ------------------------------------------------------------------ #
    # phase 2: architecture space evaluation

    def explore(self, total_iterations: int, frame_width: int, frame_height: int,
                constraints: Optional[DseConstraints] = None,
                onchip_port_elements_per_cycle: Optional[int] = None,
                *, columnar: Optional[bool] = None,
                stream: Optional[bool] = None,
                chunk_rows: Optional[int] = None,
                stream_jobs: Optional[int] = None,
                stream_executor: object = None) -> ExplorationResult:
        """Run the full exploration and return design points plus the Pareto set.

        ``onchip_port_elements_per_cycle`` overrides the constructor default
        for this exploration only — like the frame geometry, it affects the
        throughput estimate, not the cone characterizations, so sweeps over
        it reuse all synthesis/calibration work.

        The evaluation itself runs on the columnar engine
        (:mod:`repro.dse.engine`) whenever the throughput backend is
        columnar-capable — the default for every built-in configuration —
        and falls back to the per-point scalar loop otherwise (e.g. a
        registry backend that overrides ``evaluate``).  ``columnar``
        forces the choice; both paths produce byte-identical results.

        ``stream`` selects the out-of-core chunked evaluation
        (:mod:`repro.dse.stream`): ``None`` (the default) auto-streams
        columnar-capable spaces of at least ``STREAM_AUTO_THRESHOLD``
        candidates, ``True``/``False`` force it on or off.  A streamed
        result carries the identical Pareto frontier, but materializes
        *only* the frontier as design points (``result.design_points is
        result.pareto`` members) and records chunking/pushdown metadata
        under ``result.streaming``.  ``chunk_rows`` bounds the rows
        materialized per chunk; ``stream_jobs`` fans the chunk schedule
        across workers through ``stream_executor`` (anything
        :func:`repro.api.executor.resolve_strategy` accepts; ``None`` →
        threads) with bit-identical results at any worker count.
        """
        characterizations, validations = self.characterize_cones(total_iterations)
        space = self._space(total_iterations)
        constraints = constraints or DseConstraints()
        throughput_model = self.throughput_model
        if (onchip_port_elements_per_cycle is not None
                and onchip_port_elements_per_cycle
                != self.onchip_port_elements_per_cycle):
            throughput_model = self._throughput_model_factory(
                device=self.device,
                data_format=self.data_format,
                readonly_components=self._readonly_components,
                onchip_port_elements_per_cycle=onchip_port_elements_per_cycle,
            )

        usable_luts = self.device.usable_capacity.luts
        streamable = supports_columnar(throughput_model)
        if stream is None:
            # auto: stream huge spaces (size() is O(1)) unless the caller
            # forced the scalar loop (columnar=False), which has no
            # streaming twin
            stream = (streamable and columnar is not False
                      and space.size() >= STREAM_AUTO_THRESHOLD)
        streaming_meta: Optional[Dict[str, object]] = None
        if stream:
            if not streamable:
                raise ValueError(
                    "streaming exploration requires a columnar-capable "
                    "throughput backend (this one overrides the stock "
                    "batch/evaluate hooks); run with stream=False")
            evaluation = explore_stream(
                space, characterizations, throughput_model,
                frame_width, frame_height, constraints, usable_luts,
                chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS,
                jobs=stream_jobs, executor=stream_executor)
            design_points = list(evaluation.pareto)
            pareto = evaluation.pareto
            streaming_meta = {
                "chunk_rows": evaluation.chunk_rows,
                "space_rows": evaluation.space_rows,
                "admitted_rows": evaluation.admitted_rows,
                "pruned_rows": evaluation.pruned_rows,
                "throughput_pruned_rows": evaluation.throughput_pruned_rows,
                "pruned_fraction": evaluation.pruned_fraction,
                "chunks_total": evaluation.chunks_total,
                "chunks_skipped": evaluation.chunks_skipped,
                "peak_chunk_rows": evaluation.peak_chunk_rows,
                "frontier_peak": evaluation.frontier_peak,
                "mask_cache_hit": evaluation.mask_cache_hit,
                "stream_jobs": evaluation.jobs,
            }
        elif streamable if columnar is None else columnar:
            evaluation = explore_columnar(
                space, characterizations, throughput_model,
                frame_width, frame_height, constraints, usable_luts)
            design_points = evaluation.design_points
            pareto = evaluation.pareto
        else:
            design_points = self._evaluate_scalar(
                space, characterizations, throughput_model,
                frame_width, frame_height, constraints, usable_luts)
            pareto = pareto_front(design_points)

        full_space_runs = len(characterizations)
        # Runs and tool runtime backing *this* exploration's shapes
        # (characterisations may be shared with other iteration counts; the
        # synthesizer's own counters are cumulative across them).
        runs_spent = sum(1 for c in characterizations.values() if c.synthesized)
        runs_avoided = full_space_runs - runs_spent
        runtime_spent = sum(c.tool_runtime_s
                            for c in characterizations.values())
        avoided_runtime = self._avoided_runtime(characterizations)

        return ExplorationResult(
            kernel_name=self.kernel.name,
            device_name=self.device.name,
            frame_width=frame_width,
            frame_height=frame_height,
            total_iterations=total_iterations,
            properties=self.properties,
            characterizations=characterizations,
            design_points=design_points,
            pareto=pareto,
            area_validations=validations,
            synthesis_runs=runs_spent,
            synthesis_runs_avoided=runs_avoided,
            tool_runtime_spent_s=runtime_spent,
            tool_runtime_avoided_s=avoided_runtime,
            streaming=streaming_meta,
        )

    def explore_scalar(self, total_iterations: int, frame_width: int,
                       frame_height: int,
                       constraints: Optional[DseConstraints] = None,
                       onchip_port_elements_per_cycle: Optional[int] = None
                       ) -> ExplorationResult:
        """:meth:`explore` forced onto the per-point scalar evaluation loop.

        The legacy path, kept as the differential-testing baseline for the
        columnar engine (and as the route for throughput backends that
        override ``evaluate``); its output is byte-identical to the
        engine's.
        """
        return self.explore(
            total_iterations, frame_width, frame_height, constraints,
            onchip_port_elements_per_cycle, columnar=False)

    def _evaluate_scalar(self, space: ArchitectureSpace,
                         characterizations: Mapping[Tuple[int, int],
                                                    ConeCharacterization],
                         throughput_model: Any, frame_width: int,
                         frame_height: int, constraints: DseConstraints,
                         usable_luts: float) -> List[DesignPoint]:
        """Per-point evaluation of the space (the engine's scalar twin).

        The architectures of one (window, split) group differ only in the
        primary cone's instance count, so the per-depth area table and the
        cone-performance table are built once per group instead of once
        per point (max_cones_per_depth times as often).
        """
        design_points: List[DesignPoint] = []
        for window, split, group in space.architecture_groups():
            depths = sorted(set(split))
            area_by_depth: Dict[int, float] = {}
            estimated = False
            valid = True
            for depth in depths:
                characterization = characterizations.get((window, depth))
                if characterization is None:
                    valid = False
                    break
                area_by_depth[depth] = characterization.area_luts
                estimated = estimated or not characterization.synthesized
            if not valid:
                continue
            cone_performance = {
                depth: ConePerformance(
                    depth=depth,
                    window_side=window,
                    latency_cycles=characterizations[(window,
                                                      depth)].latency_cycles,
                    initiation_interval=1,
                )
                for depth in depths
            }

            for architecture in group:
                total_area = sum(architecture.cone_counts[d]
                                 * area_by_depth[d] for d in depths)
                performance = throughput_model.evaluate(
                    architecture, cone_performance, frame_width,
                    frame_height)
                point = DesignPoint(
                    architecture=architecture,
                    area_luts=total_area,
                    area_estimated=estimated,
                    performance=performance,
                    fits_device=total_area <= usable_luts,
                    cone_area_by_depth=dict(area_by_depth),
                )
                if constraints.admits(point):
                    design_points.append(point)
        return design_points

    # ------------------------------------------------------------------ #
    # helpers

    def tool_runtime_avoided_total_s(self) -> float:
        """Synthesis tool runtime avoided across every cached
        characterization.

        Computed over the distinct characterized shapes (the family cache),
        so a shape shared by several iteration counts is counted once.
        """
        with self._cache_lock:
            families = list(self._family_cache.items())
        merged: Dict[Tuple[int, int], ConeCharacterization] = {}
        for (depth, _windows), (per_window, _) in families:
            for window, characterization in per_window.items():
                merged[(window, depth)] = characterization
        return self._avoided_runtime(merged)

    def _space(self, total_iterations: int) -> ArchitectureSpace:
        return ArchitectureSpace(
            kernel_name=self.kernel.name,
            total_iterations=total_iterations,
            radius=self.properties.radius,
            components=self.properties.total_state_components,
            window_sides=self.window_sides,
            max_depth=self.max_depth,
            max_cones_per_depth=self.max_cones_per_depth,
        )

    def _avoided_runtime(self, characterizations: Mapping[Tuple[int, int],
                                                          ConeCharacterization]) -> float:
        """Tool runtime a full-synthesis exploration would have cost extra."""
        avoided = 0.0
        for characterization in characterizations.values():
            if not characterization.synthesized:
                # approximate with the same runtime model the synthesiser uses,
                # fed with the estimated area.
                luts = characterization.estimated_area_luts
                avoided += 40.0 + 90.0 * (max(luts, 0.0) / 10_000.0) ** 1.15
        return avoided
