"""User constraints applied during the exploration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dse.design_point import DesignPoint


@dataclass(frozen=True)
class DseConstraints:
    """Optional bounds on the solutions the flow reports.

    ``min_frames_per_second`` expresses the throughput lower bound (frame
    rate) the paper mentions as the typical user constraint; ``max_area_luts``
    caps the cost, and ``device_only`` restricts the result to architectures
    that fit the selected device.
    """

    min_frames_per_second: Optional[float] = None
    max_area_luts: Optional[float] = None
    device_only: bool = False

    def admits(self, point: DesignPoint) -> bool:
        if self.device_only and not point.fits_device:
            return False
        if (self.min_frames_per_second is not None
                and point.frames_per_second < self.min_frames_per_second):
            return False
        if (self.max_area_luts is not None
                and point.area_luts > self.max_area_luts):
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"min_frames_per_second": self.min_frames_per_second,
                "max_area_luts": self.max_area_luts,
                "device_only": self.device_only}

    @classmethod
    def from_dict(cls, data: dict) -> "DseConstraints":
        return cls(min_frames_per_second=data.get("min_frames_per_second"),
                   max_area_luts=data.get("max_area_luts"),
                   device_only=data.get("device_only", False))
