"""The columnar design-space engine.

The scalar explorer evaluates the candidate space one Python object at a
time: build a :class:`ConeArchitecture`, sum its cone areas, run the
throughput model, wrap a :class:`DesignPoint`, test the constraints — a few
tens of microseconds of interpreter work per candidate, multiplied by every
(window, split, instance count) combination of every workload of a sweep.

This module evaluates the same space as columns instead:

1. the full enumerated candidate set is materialized once as parallel NumPy
   arrays (:class:`repro.architecture.enumeration.ArchitectureTable` — window,
   split, instance count, primary depth), cached and *shared* across every
   device/format/frame scenario that explores the same shape knobs;
2. the calibrated Equation-1 areas and the frame-level throughput model are
   evaluated vectorized over whole (window, split) groups through the
   models' ``estimate_batch`` APIs — the same code the scalar paths
   delegate to, so columnar and scalar figures are bit-identical;
3. :class:`~repro.dse.constraints.DseConstraints` are applied as array
   masks, with the area-only constraints (``device_only``,
   ``max_area_luts``) pushed down *before* throughput estimation so
   infeasible candidates are never costed;
4. the Pareto frontier is extracted directly from the admitted objective
   columns (:func:`repro.dse.pareto.pareto_indices`);
5. :class:`DesignPoint` objects are materialized only for the rows that
   survive — all admitted rows when a full :class:`ExplorationResult` is
   wanted (the explorer default, byte-identical to the scalar path), or
   just the frontier when only the Pareto set matters
   (``materialize="frontier"``).

:meth:`repro.dse.explorer.DesignSpaceExplorer.explore` routes through this
engine whenever the workload's throughput backend is columnar-capable (see
:func:`supports_columnar`), which covers every built-in configuration; the
scalar loop remains available as ``explore_scalar`` and serves as the
differential-testing baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.architecture.enumeration import (ArchitectureSpace,
                                            ArchitectureTable, space_table)
from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import pareto_indices
# one accumulation formula shared with the streaming engine, so its
# binary-search pushdown probes are bit-identical to these columns by
# construction (stream imports nothing from this module at import time)
from repro.dse.stream import _group_area
from repro.estimation.throughput_model import (
    ConePerformance,
    ThroughputModel,
    performance_from_columns,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dse.explorer import ConeCharacterization


def shared_table_stats() -> Dict[str, Optional[int]]:
    """Counters of the process-wide :class:`ArchitectureTable` cache.

    The enumerated candidate table is keyed by shape knobs only and shared
    by every device/format/frame scenario over the same space (see
    :func:`repro.architecture.enumeration.space_table`); these counters
    make that reuse observable — the service tier reports them under
    ``stats()["shared_table"]``, where ``hits`` growing while ``entries``
    stays flat is the signature of a burst re-costing one cached table
    instead of re-enumerating per job.  The cache is a small bounded LRU
    (tables over huge spaces are tens of MB), so ``evictions`` counts how
    often a distinct shape-knob set pushed an old table out of RAM.
    """
    from repro.architecture.enumeration import _space_table_cached

    info = _space_table_cached.cache_info()
    return {"hits": info.hits, "misses": info.misses,
            "entries": info.currsize, "capacity": info.maxsize,
            "evictions": _space_table_cached.evictions}


def supports_columnar(throughput_model: object) -> bool:
    """Whether the engine may drive ``throughput_model`` through its batch API.

    True iff the model's frame-level ``evaluate``, its per-tile
    ``compute_cycles_per_tile`` hook, and ``estimate_batch`` itself are the
    stock :class:`ThroughputModel` implementations, so the batch path
    cannot diverge from what per-point evaluation would produce.  A
    backend that overrides any of the three — or duck-types the protocol
    without subclassing — is evaluated point-wise by the scalar explorer
    loop instead (its overrides are honored, just not vectorized).  The
    finer-grained public hooks (``transfer_cycles_per_tile``,
    ``tiles_per_frame``, ``execution_interval_cycles``) are invoked on the
    instance by both paths, so overriding those keeps the engine usable
    *and* consistent — they are the supported extension points for
    columnar-capable customization.
    """
    model_type = type(throughput_model)
    return (getattr(model_type, "estimate_batch", None)
            is ThroughputModel.estimate_batch
            and getattr(model_type, "evaluate", None)
            is ThroughputModel.evaluate
            and getattr(model_type, "compute_cycles_per_tile", None)
            is ThroughputModel.compute_cycles_per_tile)


@dataclass(frozen=True)
class _GroupEvaluation:
    """One (window, split) group's evaluated columns (admitted rows only)."""

    window: int
    split: Tuple[int, ...]
    base_row: int
    count_index: np.ndarray        # admitted positions along the count axis
    area_luts: np.ndarray          # admitted areas (aligned with count_index)
    fits_device: np.ndarray
    performance_columns: Mapping[str, object]
    performance_index: np.ndarray  # admitted positions into the perf columns
    area_by_depth: Dict[int, float]
    area_estimated: bool


@dataclass
class ColumnarExploration:
    """The engine's product: admitted objective columns plus design points.

    ``row_index``/``area_luts``/``seconds_per_frame``/``fits_device`` are
    parallel arrays over the admitted candidates, in enumeration (row)
    order.  ``design_points`` holds one :class:`DesignPoint` per admitted
    row in the same order — unless the evaluation ran with
    ``materialize="frontier"``, in which case only the Pareto members were
    materialized and ``design_points`` is ``None``.  ``pareto`` is the
    frontier in increasing-area order (see :mod:`repro.dse.pareto` for the
    tie-breaking contract).
    """

    table: ArchitectureTable
    row_index: np.ndarray
    area_luts: np.ndarray
    seconds_per_frame: np.ndarray
    fits_device: np.ndarray
    pareto_index: np.ndarray
    design_points: Optional[List[DesignPoint]]
    pareto: List[DesignPoint]
    #: Rows never costed thanks to constraint pushdown (area-infeasible
    #: only — a min-fps floor is filtered *after* costing here and is not
    #: counted; the streaming engine pushes it down too, so its
    #: ``pruned_rows`` additionally covers ``throughput_pruned_rows``).
    pruned_rows: int = 0

    @property
    def admitted_rows(self) -> int:
        return int(self.row_index.size)


def explore_columnar(space: ArchitectureSpace,
                     characterizations: Mapping[Tuple[int, int],
                                                "ConeCharacterization"],
                     throughput_model: ThroughputModel,
                     frame_width: int, frame_height: int,
                     constraints: Optional[DseConstraints] = None,
                     usable_luts: float = math.inf,
                     materialize: str = "admitted") -> ColumnarExploration:
    """Evaluate a whole architecture space with column arithmetic.

    Visits the same candidates in the same order as the scalar
    ``architecture_groups`` loop and produces the same admitted design
    points and the same Pareto frontier (bit-identical serializations) —
    just without paying Python-object overhead per candidate.

    ``materialize`` selects which rows become :class:`DesignPoint` objects:
    ``"admitted"`` (default) materializes every constraint-admitted row,
    ``"frontier"`` only the Pareto members.
    """
    if materialize not in ("admitted", "frontier"):
        raise ValueError(f"materialize must be 'admitted' or 'frontier' "
                         f"(got {materialize!r})")
    constraints = constraints or DseConstraints()
    table = space_table(space)
    n_counts = len(table.counts)

    groups: List[_GroupEvaluation] = []
    pruned = 0
    for window_index, window in enumerate(table.window_sides):
        for split_index, split in enumerate(table.splits):
            depths = sorted(set(split))
            area_by_depth: Dict[int, float] = {}
            estimated = False
            valid = True
            for depth in depths:
                characterization = characterizations.get((window, depth))
                if characterization is None:
                    valid = False
                    break
                area_by_depth[depth] = characterization.area_luts
                estimated = estimated or not characterization.synthesized
            if not valid:
                continue
            rows = table.group_rows(window_index, split_index)
            # the group's slice of the table columns IS the count axis
            counts = table.primary_count[rows.start:rows.stop]
            primary = int(table.primary_depth[rows.start])

            # Per-row area: Σ_depth instances × cone area, accumulated in
            # sorted-depth order exactly like the scalar sum (bit-identical;
            # only the primary depth's instance count varies along the row
            # axis of the group).
            area = _group_area(counts, depths, primary, area_by_depth)
            fits = area <= usable_luts

            # Constraint pushdown: candidates that already fail the
            # area-side constraints are masked out *before* the throughput
            # model runs, so they are never costed.
            feasible = np.ones(n_counts, dtype=bool)
            if constraints.device_only:
                feasible &= fits
            if constraints.max_area_luts is not None:
                feasible &= area <= constraints.max_area_luts
            pruned += int(n_counts - np.count_nonzero(feasible))
            if not feasible.any():
                continue

            representative = space.materialize_row_parts(window, split, 1)
            cone_performance = {
                depth: ConePerformance(
                    depth=depth,
                    window_side=window,
                    latency_cycles=characterizations[(window,
                                                      depth)].latency_cycles,
                    initiation_interval=1,
                )
                for depth in depths
            }
            selected = np.flatnonzero(feasible)
            columns = throughput_model.estimate_batch(
                representative, cone_performance, frame_width, frame_height,
                counts[selected])
            performance_index = np.arange(selected.size)
            if constraints.min_frames_per_second is not None:
                admitted = (columns["frames_per_second"]
                            >= constraints.min_frames_per_second)
                selected = selected[admitted]
                performance_index = performance_index[admitted]
                if selected.size == 0:
                    continue
            groups.append(_GroupEvaluation(
                window=window,
                split=split,
                base_row=rows.start,
                count_index=selected,
                area_luts=area[selected],
                fits_device=fits[selected],
                performance_columns=columns,
                performance_index=performance_index,
                area_by_depth=area_by_depth,
                area_estimated=estimated,
            ))

    if groups:
        row_index = np.concatenate([g.base_row + g.count_index
                                    for g in groups])
        area_column = np.concatenate([g.area_luts for g in groups])
        time_column = np.concatenate(
            [np.asarray(g.performance_columns["seconds_per_frame"])
             [g.performance_index] for g in groups])
        fits_column = np.concatenate([g.fits_device for g in groups])
    else:
        row_index = np.empty(0, dtype=np.intp)
        area_column = np.empty(0, dtype=np.float64)
        time_column = np.empty(0, dtype=np.float64)
        fits_column = np.empty(0, dtype=bool)
    pareto_order = pareto_indices(area_column, time_column)

    def build_point(group: _GroupEvaluation, offset: int) -> DesignPoint:
        count_index = int(group.count_index[offset])
        architecture = space.materialize_row_parts(
            group.window, group.split, table.counts[count_index])
        return DesignPoint(
            architecture=architecture,
            area_luts=float(group.area_luts[offset]),
            area_estimated=group.area_estimated,
            performance=performance_from_columns(
                group.performance_columns,
                int(group.performance_index[offset])),
            fits_device=bool(group.fits_device[offset]),
            cone_area_by_depth=dict(group.area_by_depth),
        )

    #: admitted row -> (owning group, offset within the group's columns)
    locator: List[Tuple[_GroupEvaluation, int]] = []
    for group in groups:
        locator.extend((group, offset)
                       for offset in range(group.count_index.size))

    if materialize == "admitted":
        design_points: Optional[List[DesignPoint]] = [
            build_point(group, offset) for group, offset in locator]
        pareto = [design_points[index] for index in pareto_order]
    else:
        design_points = None
        pareto = [build_point(*locator[index]) for index in pareto_order]

    return ColumnarExploration(
        table=table,
        row_index=row_index,
        area_luts=area_column,
        seconds_per_frame=time_column,
        fits_device=fits_column,
        pareto_index=pareto_order,
        design_points=design_points,
        pareto=pareto,
        pruned_rows=pruned,
    )
