"""Design-space exploration: estimate every candidate architecture, extract Pareto set.

The evaluation itself is columnar by default: :mod:`repro.dse.engine`
materializes the enumerated space as a shared NumPy
:class:`~repro.architecture.enumeration.ArchitectureTable`, evaluates areas
and throughput vectorized per (window, split) group, applies constraints as
array masks, and extracts the Pareto frontier from the objective columns.
The per-point scalar loop (``DesignSpaceExplorer.explore_scalar``) remains
as the differential baseline and the route for custom throughput backends.
"""

from repro.dse.design_point import DesignPoint
from repro.dse.pareto import pareto_front, pareto_indices, is_dominated
from repro.dse.constraints import DseConstraints
from repro.dse.engine import (ColumnarExploration, explore_columnar,
                              supports_columnar)
from repro.dse.stream import (DEFAULT_CHUNK_ROWS, STREAM_AUTO_THRESHOLD,
                              SpaceChunk, StreamingExploration,
                              StreamingFrontier, StreamingTopK,
                              explore_stream, plan_chunks,
                              reset_stream_stats, stream_stats)
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult, ConeCharacterization

__all__ = [
    "DesignPoint",
    "pareto_front",
    "pareto_indices",
    "is_dominated",
    "DseConstraints",
    "ColumnarExploration",
    "explore_columnar",
    "supports_columnar",
    "DEFAULT_CHUNK_ROWS",
    "STREAM_AUTO_THRESHOLD",
    "SpaceChunk",
    "StreamingExploration",
    "StreamingFrontier",
    "StreamingTopK",
    "explore_stream",
    "plan_chunks",
    "reset_stream_stats",
    "stream_stats",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "ConeCharacterization",
]
