"""Design-space exploration: estimate every candidate architecture, extract Pareto set."""

from repro.dse.design_point import DesignPoint
from repro.dse.pareto import pareto_front, is_dominated
from repro.dse.constraints import DseConstraints
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult, ConeCharacterization

__all__ = [
    "DesignPoint",
    "pareto_front",
    "is_dominated",
    "DseConstraints",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "ConeCharacterization",
]
