"""Design points produced by the exploration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.architecture.template import ConeArchitecture
from repro.estimation.throughput_model import ArchitecturePerformance


@dataclass(frozen=True)
class DesignPoint:
    """One fully characterised architecture candidate.

    The two objectives of the exploration are ``area_luts`` (cost) and
    ``seconds_per_frame`` (performance, lower is better), matching the axes
    of the Pareto curves in Figures 6 and 9 of the paper.
    """

    architecture: ConeArchitecture
    area_luts: float
    area_estimated: bool
    performance: ArchitecturePerformance
    fits_device: bool
    cone_area_by_depth: Optional[Dict[int, float]] = None

    @property
    def label(self) -> str:
        return self.architecture.label()

    @property
    def seconds_per_frame(self) -> float:
        return self.performance.seconds_per_frame

    @property
    def frames_per_second(self) -> float:
        return self.performance.frames_per_second

    @property
    def kilo_luts(self) -> float:
        return self.area_luts / 1000.0

    @property
    def window_area(self) -> int:
        return self.architecture.window_side ** 2

    @property
    def primary_depth(self) -> int:
        return max(self.architecture.level_depths)

    @property
    def cone_count(self) -> int:
        return self.architecture.total_cone_instances

    def summary(self) -> str:
        return (f"{self.label}: {self.kilo_luts:8.1f} kLUT, "
                f"{self.seconds_per_frame * 1e3:8.3f} ms/frame "
                f"({self.frames_per_second:6.2f} fps)"
                f"{'' if self.fits_device else '  [exceeds device]'}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "architecture": self.architecture.to_dict(),
            "area_luts": self.area_luts,
            "area_estimated": self.area_estimated,
            "performance": self.performance.to_dict(),
            "fits_device": self.fits_device,
            "cone_area_by_depth": (
                None if self.cone_area_by_depth is None
                else {str(d): a for d, a in self.cone_area_by_depth.items()}),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DesignPoint":
        cone_area = data.get("cone_area_by_depth")
        return cls(
            architecture=ConeArchitecture.from_dict(data["architecture"]),
            area_luts=data["area_luts"],
            area_estimated=data["area_estimated"],
            performance=ArchitecturePerformance.from_dict(data["performance"]),
            fits_device=data["fits_device"],
            cone_area_by_depth=(
                None if cone_area is None
                else {int(d): a for d, a in cone_area.items()}),
        )
