"""Out-of-core chunked exploration for million-candidate design spaces.

The columnar engine (:mod:`repro.dse.engine`) materializes the whole
enumerated candidate set — and the full objective columns — in RAM before
extracting the frontier.  That is the right trade for the paper-scale space
(~720 points) but not for the ROADMAP's target spaces three to four orders
larger.  This module evaluates the *same* space as a sequence of bounded-row
chunks instead, in the divide-and-conquer spirit of SCC-chunked automaton
determinization: split the space into independently evaluable pieces, solve
each piece, and merge the partial solutions into a state whose size is
bounded by the answer, not by the space.

Pieces:

1. :func:`plan_chunks` slices the (window, split) groups of a space along
   the instance-count axis into chunks of at most ``chunk_rows`` rows.  A
   chunk is a *description* (group indices + a count range); its NumPy
   columns are materialized lazily, with tightened dtypes (``int32`` counts),
   and only if the chunk survives pushdown.
2. Constraint pushdown prunes rows *before* chunk materialization: the
   area-side constraints (``device_only``, ``max_area_luts``) depend only on
   shape knobs and the cone areas, and per-row area is nondecreasing in the
   primary instance count, so each group's admitted rows form a prefix of
   the count axis found by binary search — O(log rows) scalar probes using
   the engine's exact accumulation formula.  A ``min_frames_per_second``
   floor is monotone along the same axis in the other direction (compute
   cycles per tile are nonincreasing in the primary count, so the frame
   rate is nondecreasing): a second binary search on the throughput formula
   finds the admitted *suffix*, and the intersected [suffix, prefix)
   interval is what gets costed.  Rows outside the interval are counted in
   ``pruned_rows`` and never costed; chunks entirely outside it are never
   materialized at all.
3. :class:`StreamingFrontier` folds each chunk's admitted objective columns
   into a bounded Pareto state that is byte-identical to
   :func:`repro.dse.pareto.pareto_indices` on the concatenated full arrays
   regardless of chunk size or arrival order; :class:`StreamingTopK` keeps
   the k fastest admitted candidates the same way.  Both carry only
   ``(area, time, global row)`` triples — design points are rebuilt for the
   survivors at finalization by re-running ``estimate_batch`` on just their
   rows (elementwise over the count axis, hence bit-identical).
4. The admitted-row prefixes are persisted in a small process-wide LRU
   keyed by shape knobs + the cone-area inputs + the area constraints, so a
   re-explore that changes only per-run knobs (frame geometry, minimum
   fps) skips the pushdown analysis and re-costs only throughput columns.
   The throughput-side suffix depends on those per-run knobs, so it is
   recomputed per call (O(groups·log rows) probes) and deliberately kept
   out of the cache key.  Counters are exposed through :func:`stream_stats`
   (the service tier serves them under ``stats()["stream"]``).
5. Chunks are independent by construction, so ``explore_stream(jobs=N)``
   fans deterministic contiguous shards of the chunk schedule across an
   executor strategy (:func:`repro.api.executor.resolve_strategy` — the
   same ``serial``/``threads``/``processes`` names ``run_many`` accepts).
   Each worker folds its shard into a private frontier/top-k and ships the
   bounded state back; the parent reduces with
   :meth:`StreamingFrontier.merge`/:meth:`StreamingTopK.merge`, which are
   associative and order-insensitive (the (area, time, global-row) total
   order makes the merged state a pure function of the union), so the
   result is bit-identical to the serial fold whatever the worker count,
   shard assignment, or completion order.  Workers receive chunk
   *descriptors* (pure index arithmetic), never materialized columns, so a
   process pool neither pickles tables nor re-warms the shared table cache.

:func:`explore_stream` is the engine-level entry point;
:meth:`repro.dse.explorer.DesignSpaceExplorer.explore` auto-selects it above
:data:`STREAM_AUTO_THRESHOLD` rows (or on ``stream=True``), keeping
``explore_columnar`` as the differential oracle.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.architecture.enumeration import ArchitectureSpace
from repro.dse.constraints import DseConstraints
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import FINITE_OBJECTIVES_ERROR as _FINITE_ERROR
from repro.estimation.throughput_model import (
    ConePerformance,
    ThroughputModel,
    performance_from_columns,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dse.explorer import ConeCharacterization

#: Default bound on rows materialized per chunk (~a few hundred KB of
#: float64 working set — comfortably cache-resident).
DEFAULT_CHUNK_ROWS = 4096

#: Spaces at or above this many candidates stream by default (explorer
#: ``stream=None``): the full-table columnar path would hold several
#: multi-MB objective columns alive at once.
STREAM_AUTO_THRESHOLD = 200_000

#: Entries the admitted-row mask cache may hold (one entry per distinct
#: (shape knobs, cone areas, area constraints) combination).
MASK_CACHE_CAPACITY = 16

#: Design points the running top-k keeps by default.
DEFAULT_TOP_K = 8


# ---------------------------------------------------------------------- #
# streaming accumulators


class StreamingFrontier:
    """Streaming Pareto accumulator over (area, time) with bounded state.

    Each call to :meth:`update` folds one chunk of objective values into
    the running frontier.  The state holds one ``(area, time, order)``
    triple per current frontier member, where ``order`` is the candidate's
    global enumeration row — merging sorts by ``(area, time, order)`` and
    keeps the strict running-minimum times, which reproduces
    :func:`repro.dse.pareto.pareto_indices`'s stable first-seen tie-break
    exactly (among equal ``(area, time)`` pairs the smallest global row
    survives, and a smaller row can never arrive later *in enumeration
    order*, whatever chunk it arrives in).  The result is therefore
    independent of chunk sizes and chunk arrival order, and identical to
    running ``pareto_indices`` once over the concatenated arrays.

    Orders must be unique across all updates (they are global rows);
    non-finite objectives raise :exc:`ValueError`, matching the batch
    contract in :mod:`repro.dse.pareto`.
    """

    def __init__(self) -> None:
        self._area = np.empty(0, dtype=np.float64)
        self._time = np.empty(0, dtype=np.float64)
        self._order = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._area.size)

    def update(self, area_luts: "np.ndarray", seconds_per_frame: "np.ndarray",
               order: "np.ndarray") -> None:
        areas, times, orders = _validated_triples(area_luts,
                                                  seconds_per_frame, order)
        if areas.size == 0:
            return
        areas = np.concatenate([self._area, areas])
        times = np.concatenate([self._time, times])
        orders = np.concatenate([self._order, orders])
        rank = np.lexsort((orders, times, areas))
        areas, times, orders = areas[rank], times[rank], orders[rank]
        keep = np.empty(areas.size, dtype=bool)
        keep[0] = True
        keep[1:] = times[1:] < np.minimum.accumulate(times)[:-1]
        self._area = areas[keep]
        self._time = times[keep]
        self._order = orders[keep]

    def merge(self, other: "StreamingFrontier") -> "StreamingFrontier":
        """Fold another frontier's state into this one (in place).

        Associative and commutative: the frontier of a set is the frontier
        of the union of its parts' frontiers, and the (area, time, order)
        total order picks the same tie-break representative whichever side
        it arrives on — so parallel workers can fold disjoint chunk shards
        independently and reduce in *any* order, with a result bit-identical
        to one serial fold over everything.  Orders must stay globally
        unique across the merged parts (disjoint chunk shards guarantee
        it).  Returns ``self`` for reduction chaining.
        """
        self.update(other._area, other._time, other._order)
        return self

    def result(self) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """``(area, time, order)`` of the frontier, in increasing-area order
        (the exact order ``pareto_indices`` would return the same rows in)."""
        return self._area.copy(), self._time.copy(), self._order.copy()


class StreamingTopK:
    """Running top-k: the ``k`` fastest candidates seen so far.

    Selection is by ``(time, area, order)`` — a total order (orders are
    unique global rows), so like the frontier the result is independent of
    chunking and arrival order.  ``result()`` returns the triples fastest
    first.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0 (got {k})")
        self.k = k
        self._area = np.empty(0, dtype=np.float64)
        self._time = np.empty(0, dtype=np.float64)
        self._order = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._area.size)

    def update(self, area_luts: "np.ndarray", seconds_per_frame: "np.ndarray",
               order: "np.ndarray") -> None:
        areas, times, orders = _validated_triples(area_luts,
                                                  seconds_per_frame, order)
        if areas.size == 0 or self.k == 0:
            return
        areas = np.concatenate([self._area, areas])
        times = np.concatenate([self._time, times])
        orders = np.concatenate([self._order, orders])
        rank = np.lexsort((orders, areas, times))[:self.k]
        self._area = areas[rank]
        self._time = times[rank]
        self._order = orders[rank]

    def merge(self, other: "StreamingTopK") -> "StreamingTopK":
        """Fold another top-k state into this one (in place).

        Associative and commutative like :meth:`StreamingFrontier.merge`:
        the k smallest of a union are the k smallest of the parts' k
        smallest, under the same (time, area, order) total order.  Both
        sides must keep the same ``k`` — merging differently-sized top-k
        states has no well-defined answer and raises :exc:`ValueError`.
        """
        if other.k != self.k:
            raise ValueError(
                f"cannot merge top-k states of different k "
                f"({self.k} != {other.k})")
        self.update(other._area, other._time, other._order)
        return self

    def result(self) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        return self._area.copy(), self._time.copy(), self._order.copy()


def _validated_triples(area_luts, seconds_per_frame, order):
    areas = np.asarray(area_luts, dtype=np.float64)
    times = np.asarray(seconds_per_frame, dtype=np.float64)
    orders = np.asarray(order, dtype=np.int64)
    if not (areas.shape == times.shape == orders.shape) or areas.ndim != 1:
        raise ValueError("area, time, and order must be 1-D arrays of "
                         "equal length")
    if not (np.isfinite(areas).all() and np.isfinite(times).all()):
        raise ValueError(_FINITE_ERROR)
    return areas, times, orders


# ---------------------------------------------------------------------- #
# chunk planning


@dataclass(frozen=True)
class SpaceChunk:
    """One bounded-row slice of a (window, split) group's count axis.

    Purely descriptive — holds group indices and a count range, never
    arrays; :meth:`counts` materializes the (dtype-tightened) count column
    on demand, and pushdown may decide it never has to.
    """

    window: int
    window_index: int
    split: Tuple[int, ...]
    split_index: int
    #: Global enumeration row of the group's first candidate (count 1).
    base_row: int
    #: Zero-based [start, stop) slice of the group's count axis.
    count_start: int
    count_stop: int

    @property
    def rows(self) -> int:
        return self.count_stop - self.count_start

    def counts(self, stop: Optional[int] = None,
               start: Optional[int] = None) -> "np.ndarray":
        """The chunk's primary-count column (``int32``: the enumeration
        bounds counts far below 2**31, and ``estimate_batch`` widens
        exactly, so the tightening is free).  ``start``/``stop`` narrow the
        range to the pushdown-admitted [suffix, prefix) interval."""
        start = self.count_start if start is None else start
        stop = self.count_stop if stop is None else stop
        return np.arange(start + 1, stop + 1, dtype=np.int32)


def plan_chunks(space: ArchitectureSpace,
                chunk_rows: int = DEFAULT_CHUNK_ROWS) -> List[SpaceChunk]:
    """Slice a space into chunks of at most ``chunk_rows`` candidates.

    Chunks never span (window, split) groups, so every chunk shares one
    representative architecture, one per-depth area table, and one cone
    performance table; within a group the count axis is sliced in
    enumeration order.  Concatenating all chunks in plan order visits
    exactly the rows of :func:`repro.architecture.enumeration.space_table`
    in row order — but nothing here builds that table.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1 (got {chunk_rows})")
    splits = tuple(tuple(split) for split in space.level_splits())
    n_splits, n_counts = len(splits), space.max_cones_per_depth
    chunks: List[SpaceChunk] = []
    for window_index, window in enumerate(space.window_sides):
        for split_index, split in enumerate(splits):
            base = ((window_index * n_splits) + split_index) * n_counts
            for start in range(0, n_counts, chunk_rows):
                chunks.append(SpaceChunk(
                    window=window, window_index=window_index,
                    split=split, split_index=split_index, base_row=base,
                    count_start=start,
                    count_stop=min(start + chunk_rows, n_counts)))
    return chunks


# ---------------------------------------------------------------------- #
# constraint pushdown + the admitted-row mask cache


@dataclass(frozen=True)
class _GroupAdmission:
    """Pushdown outcome for one (window, split) group.

    ``admit_len`` is the length of the admitted prefix of the count axis
    (per-row area is nondecreasing in the primary count, so the area-side
    constraints admit a prefix); ``evaluable`` is False when the group's
    depths lack characterizations (the engine skips such groups without
    counting them as pruned).
    """

    evaluable: bool
    admit_len: int
    pruned: int


def _group_area(counts: "np.ndarray", depths: Sequence[int], primary: int,
                area_by_depth: Mapping[int, float]) -> "np.ndarray":
    """Per-row area over a counts vector — the columnar engine's exact
    accumulation (sorted-depth order, primary count varies), so any slice
    of the count axis reproduces the full-table values bit for bit."""
    area = np.zeros(counts.size, dtype=np.float64)
    for depth in depths:
        if depth == primary:
            area += counts * area_by_depth[depth]
        else:
            area += 1 * area_by_depth[depth]
    return area


def _admitted_prefix(n_counts: int, area_limit: float,
                     depths: Sequence[int], primary: int,
                     area_by_depth: Mapping[int, float]) -> int:
    """Largest ``k`` such that counts ``1..k`` satisfy ``area <= limit``.

    Probes the exact per-row area at O(log n) single counts instead of
    materializing the group's area column; valid because area is
    nondecreasing in the primary count (cone areas are nonnegative and
    IEEE add/multiply are monotonic).  Falls back to a full scan if a
    characterization ever reported a negative area.
    """
    def area_at(count: int) -> float:
        return float(_group_area(np.asarray([count], dtype=np.int64),
                                 depths, primary, area_by_depth)[0])

    if area_by_depth[primary] < 0:  # pathological; prefix property gone
        counts = np.arange(1, n_counts + 1, dtype=np.int64)
        mask = _group_area(counts, depths, primary, area_by_depth) <= area_limit
        return int(np.count_nonzero(mask))
    if area_at(n_counts) <= area_limit:
        return n_counts
    if area_at(1) > area_limit:
        return 0
    low, high = 1, n_counts  # area(low) <= limit < area(high)
    while high - low > 1:
        mid = (low + high) // 2
        if area_at(mid) <= area_limit:
            low = mid
        else:
            high = mid
    return low


class _CountingLru:
    """Tiny thread-safe LRU with hit/miss/eviction counters."""

    def __init__(self, maxsize: int) -> None:
        self._maxsize = maxsize
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "evictions": self._evictions,
                    "entries": len(self._entries),
                    "capacity": self._maxsize}

    def reset_stats(self) -> None:
        """Zero the counters but keep the cached entries."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0


class _StreamCounters:
    """Process-wide streamed-run counters behind a dedicated lock.

    The same dedicated-stats-lock pattern as ``SessionStats``: concurrent
    explorations (service bursts, thread-pool chunk workers reporting
    through one parent) would otherwise lose increments to read-modify-write
    races on plain module globals.
    """

    _FIELDS = ("runs", "parallel_runs", "chunks_materialized",
               "duplicate_chunk_materializations", "throughput_pruned_rows")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self._FIELDS, 0)

    def add(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                self._counts[name] += delta

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = dict.fromkeys(self._FIELDS, 0)


_mask_cache = _CountingLru(MASK_CACHE_CAPACITY)
_counters = _StreamCounters()


def stream_stats() -> Dict[str, int]:
    """Process-wide counters of the streaming engine.

    Served by the service tier under ``stats()["stream"]``.  The mask-cache
    half (``hits``/``misses``/``evictions``/``entries``/``capacity``):
    ``hits`` growing across jobs is the signature of incremental
    re-explores (only per-run knobs changed, pushdown analysis reused);
    ``evictions`` counts distinct (shape, area, constraint) combinations
    beyond the bound.  The run half: ``runs``/``parallel_runs`` count
    streamed explorations (parallel = dispatched to >1 worker),
    ``chunks_materialized`` the chunks actually costed across them,
    ``duplicate_chunk_materializations`` how many of those were redundant
    (always 0 unless the shard partition is broken — asserted in tests),
    and ``throughput_pruned_rows`` the rows the min-fps suffix pushdown
    skipped before costing.
    """
    stats = _mask_cache.stats()
    stats.update(_counters.snapshot())
    return stats


def reset_stream_stats() -> None:
    """Zero every streaming counter (tests) without dropping cached masks.

    Use :func:`clear_stream_caches` to also forget the admitted-row masks.
    """
    _mask_cache.reset_stats()
    _counters.reset()


def clear_stream_caches() -> None:
    """Reset the mask cache and all counters (tests and benchmarks)."""
    _mask_cache.clear()
    _counters.reset()


def _mask_cache_key(space: ArchitectureSpace,
                    characterizations: Mapping[Tuple[int, int],
                                               "ConeCharacterization"],
                    constraints: DseConstraints,
                    usable_luts: float) -> Tuple:
    """Admission is a pure function of this key.

    Shape knobs pick the candidate rows; the cone areas and the area-side
    constraints pick which rows are admitted.  Per-run knobs (frame
    geometry, min-fps, port width) are deliberately absent — changing only
    those re-uses the cached masks and re-costs only throughput columns.
    A knob that changes the areas (data format, device recalibration)
    changes the key and recomputes, correctness before reuse.
    """
    shape_key = (space.total_iterations, space.max_depth,
                 space.uniform_levels_only, tuple(space.window_sides),
                 space.max_cones_per_depth)
    area_key = tuple(sorted(
        (window, depth, float(entry.area_luts))
        for (window, depth), entry in characterizations.items()))
    constraint_key = (
        bool(constraints.device_only),
        None if constraints.max_area_luts is None
        else float(constraints.max_area_luts),
        float(usable_luts) if constraints.device_only else None)
    return (shape_key, area_key, constraint_key)


def _compute_admissions(space: ArchitectureSpace,
                        splits: Tuple[Tuple[int, ...], ...],
                        characterizations: Mapping[Tuple[int, int],
                                                   "ConeCharacterization"],
                        constraints: DseConstraints,
                        usable_luts: float
                        ) -> Dict[Tuple[int, int], _GroupAdmission]:
    n_counts = space.max_cones_per_depth
    area_limit = math.inf
    if constraints.device_only:
        area_limit = min(area_limit, usable_luts)
    if constraints.max_area_luts is not None:
        area_limit = min(area_limit, constraints.max_area_luts)
    admissions: Dict[Tuple[int, int], _GroupAdmission] = {}
    for window_index, window in enumerate(space.window_sides):
        for split_index, split in enumerate(splits):
            depths = sorted(set(split))
            if any((window, depth) not in characterizations
                   for depth in depths):
                admissions[(window_index, split_index)] = _GroupAdmission(
                    evaluable=False, admit_len=0, pruned=0)
                continue
            if math.isinf(area_limit):
                admit = n_counts
            else:
                area_by_depth = {
                    depth: characterizations[(window, depth)].area_luts
                    for depth in depths}
                admit = _admitted_prefix(n_counts, area_limit, depths,
                                         depths[-1], area_by_depth)
            admissions[(window_index, split_index)] = _GroupAdmission(
                evaluable=True, admit_len=admit, pruned=n_counts - admit)
    return admissions


# ---------------------------------------------------------------------- #
# the streaming exploration


@dataclass
class _GroupContext:
    """Hoisted per-(window, split) evaluation state (built on first use)."""

    window: int
    split: Tuple[int, ...]
    depths: List[int]
    primary: int
    area_by_depth: Dict[int, float]
    area_estimated: bool
    representative: object
    cone_performance: Dict[int, ConePerformance]


def _group_context(space: ArchitectureSpace,
                   characterizations: Mapping[Tuple[int, int],
                                              "ConeCharacterization"],
                   window: int, split: Tuple[int, ...]) -> _GroupContext:
    """Build one group's evaluation context from pure index arithmetic.

    Shared by the fold workers, the throughput-pushdown probes, and the
    point builder — a worker process rebuilds contexts from the (small,
    picklable) space + characterizations instead of receiving materialized
    columns, so chunk shards ship as descriptors only.
    """
    depths = sorted(set(split))
    area_by_depth = {
        depth: characterizations[(window, depth)].area_luts
        for depth in depths}
    return _GroupContext(
        window=window, split=split, depths=depths,
        primary=depths[-1], area_by_depth=area_by_depth,
        area_estimated=any(
            not characterizations[(window, depth)].synthesized
            for depth in depths),
        representative=space.materialize_row_parts(window, split, 1),
        cone_performance={
            depth: ConePerformance(
                depth=depth, window_side=window,
                latency_cycles=characterizations[
                    (window, depth)].latency_cycles,
                initiation_interval=1)
            for depth in depths})


@dataclass(frozen=True)
class _GroupPlan:
    """One group's final admitted count-axis interval for one exploration.

    ``[start, stop)`` is the intersection of the area-admitted prefix
    (cached across per-run knob changes) with the throughput-admitted
    suffix (recomputed per call — it depends on frame geometry and the fps
    floor).  ``post_filter`` marks groups where the suffix probe declined
    (non-monotone overrides, nonpositive frame times): the min-fps floor is
    then applied after costing, exactly like the columnar engine.
    """

    evaluable: bool
    start: int
    stop: int
    post_filter: bool


def _throughput_admitted_start(admit_len: int, min_fps: float,
                               context: _GroupContext,
                               throughput_model: ThroughputModel,
                               frame_width: int,
                               frame_height: int) -> Optional[int]:
    """Zero-based count index where the fps-admitted suffix begins.

    Compute cycles per tile are nonincreasing in the primary instance count
    (more instances, fewer serialized execution batches), and every other
    term of the frame time is count-constant, so ``frames_per_second`` is
    nondecreasing along the count axis and a min-fps floor admits a suffix
    ``[start, admit_len)`` — found by O(log n) single-count probes of the
    exact batch formula (elementwise over the count axis, hence
    bit-identical to the full-column values).  Returns ``None`` when the
    monotonicity argument does not hold and the caller must fall back to
    post-cost filtering: a (pathological) negative execution interval on
    the primary level, or a nonpositive frame time anywhere in the prefix
    (``frames_per_second`` snaps to 0 there, breaking the suffix shape).
    """
    def columns_at(count: int) -> Mapping[str, object]:
        return throughput_model.estimate_batch(
            context.representative, context.cone_performance,
            frame_width, frame_height,
            np.asarray([count], dtype=np.int64))

    interval = throughput_model.execution_interval_cycles(
        context.representative, context.primary,
        context.cone_performance[context.primary])
    if interval < 0:
        return None
    tail = columns_at(admit_len)
    # seconds_per_frame is nonincreasing in the count, so its minimum over
    # the prefix sits at admit_len: positive there means positive (and the
    # fps column exactly 1/seconds) everywhere.
    if not float(tail["seconds_per_frame"][0]) > 0.0:
        return None

    def admits(count: int) -> bool:
        return bool(columns_at(count)["frames_per_second"][0] >= min_fps)

    if not bool(tail["frames_per_second"][0] >= min_fps):
        return admit_len  # even the fastest admitted row fails the floor
    if admits(1):
        return 0
    low, high = 1, admit_len  # fps(low) fails the floor, fps(high) passes
    while high - low > 1:
        mid = (low + high) // 2
        if admits(mid):
            high = mid
        else:
            low = mid
    return high - 1  # count `high` is the smallest admitted count


def _plan_groups(space: ArchitectureSpace,
                 splits: Tuple[Tuple[int, ...], ...],
                 characterizations: Mapping[Tuple[int, int],
                                            "ConeCharacterization"],
                 throughput_model: ThroughputModel,
                 frame_width: int, frame_height: int,
                 constraints: DseConstraints,
                 admissions: Mapping[Tuple[int, int], _GroupAdmission]
                 ) -> Tuple[Dict[Tuple[int, int], _GroupPlan], int]:
    """Intersect the cached area prefixes with the fps suffix per group.

    Returns the per-group plans plus the total rows the throughput-side
    pushdown pruned (rows inside the area prefix but below the floor).
    The suffix probe is gated on the stock batch formula
    (:func:`repro.dse.engine.supports_columnar`); models that override it
    keep the post-cost filter, bit-identical either way.
    """
    min_fps = constraints.min_frames_per_second
    if min_fps is not None:
        # lazy: keeps `import repro.dse.stream` NumPy+stdlib-only (the
        # check.sh import guard); engine is equally light but imports the
        # enumeration table machinery this module exists to avoid.
        from repro.dse.engine import supports_columnar
        pushdown = supports_columnar(throughput_model)
    else:
        pushdown = False
    plans: Dict[Tuple[int, int], _GroupPlan] = {}
    fps_pruned = 0
    for group_key, admission in admissions.items():
        if (not admission.evaluable or admission.admit_len <= 0
                or min_fps is None):
            plans[group_key] = _GroupPlan(
                evaluable=admission.evaluable, start=0,
                stop=admission.admit_len, post_filter=False)
            continue
        if not pushdown:
            plans[group_key] = _GroupPlan(
                evaluable=True, start=0, stop=admission.admit_len,
                post_filter=True)
            continue
        window_index, split_index = group_key
        context = _group_context(space, characterizations,
                                 space.window_sides[window_index],
                                 splits[split_index])
        start = _throughput_admitted_start(
            admission.admit_len, min_fps, context, throughput_model,
            frame_width, frame_height)
        if start is None:
            plans[group_key] = _GroupPlan(
                evaluable=True, start=0, stop=admission.admit_len,
                post_filter=True)
        else:
            fps_pruned += start
            plans[group_key] = _GroupPlan(
                evaluable=True, start=start, stop=admission.admit_len,
                post_filter=False)
    return plans, fps_pruned


@dataclass
class StreamingExploration:
    """What :func:`explore_stream` produces.

    Only frontier/top-k members are ever materialized as
    :class:`DesignPoint` objects — ``pareto`` matches the columnar
    engine's ``materialize="frontier"`` output exactly (same points, same
    order), and ``pareto_row_index`` holds their global enumeration rows.
    """

    space_rows: int
    admitted_rows: int
    pruned_rows: int
    chunk_rows: int
    chunks_total: int
    #: Chunks never materialized: fully pruned by pushdown, outside the
    #: admitted interval, or in a group without characterizations.
    chunks_skipped: int
    #: Largest number of rows actually materialized at once (per worker).
    peak_chunk_rows: int
    #: Largest frontier state observed while streaming (on any worker, or
    #: after a merge).
    frontier_peak: int
    mask_cache_hit: bool
    pareto_row_index: "np.ndarray"
    pareto: List[DesignPoint]
    top_k: int
    top_points: List[DesignPoint]
    #: Rows pruned by the min-fps suffix pushdown (included in
    #: ``pruned_rows``); 0 when no floor was set or the model declined.
    throughput_pruned_rows: int = 0
    #: Effective worker count the chunk schedule was dispatched across.
    jobs: int = 1

    @property
    def pruned_fraction(self) -> float:
        return self.pruned_rows / self.space_rows if self.space_rows else 0.0


def _validate_jobs(jobs: Optional[int]) -> int:
    """The effective worker count (``None`` means serial in-process)."""
    if jobs is None:
        return 1
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        raise ValueError(
            f"jobs must be a positive integer or None (got {jobs!r})")
    return jobs


def _shard_schedule(schedule: Sequence[int], jobs: int) -> List[List[int]]:
    """Split the chunk schedule into up to ``jobs`` contiguous shards.

    Contiguous slices keep each worker's group contexts warm (consecutive
    chunks usually share a group); the balanced bounds are a pure function
    of (len, jobs), so the partition — like everything else here — is
    deterministic.  Merge associativity makes the results independent of
    the partition anyway; this only shapes the wall-clock.
    """
    total = len(schedule)
    if total == 0:
        return [[]]
    jobs = min(jobs, total)
    bounds = [round(shard * total / jobs) for shard in range(jobs + 1)]
    return [list(schedule[bounds[i]:bounds[i + 1]])
            for i in range(jobs) if bounds[i] < bounds[i + 1]]


#: One shard's work order: everything a worker needs to fold its chunks,
#: descriptors only (picklable for process pools; no tables, no columns).
_ShardPayload = Tuple


def _fold_chunk_shard(payload: _ShardPayload) -> Dict[str, object]:
    """Worker entry point: fold one shard of chunks into private state.

    Runs identically on the calling thread (serial path), in a thread pool,
    or in a worker process — it touches no module-level mutable state (the
    counters are updated by the parent from the returned report, so process
    workers are not special-cased).  Returns the private frontier/top-k
    plus the shard's accounting and the global indices of the chunks it
    materialized (the parent asserts the shards did not overlap).

    The payload's trailing ``trace_context`` (a span handoff payload, or
    ``None``) parents a per-shard ``stream.shard`` span into the caller's
    trace.  In-process workers record straight into the live recorder;
    a worker process (recorder off in a fresh interpreter) captures its
    spans locally and ships them back under ``report["spans"]`` — same
    ship-through-the-report pattern as the counters, so no worker ever
    mutates parent state.  ``report["fold_wall_s"]`` always carries the
    shard's fold wall time for the parent's chunk-fold histogram.
    """
    (space, characterizations, throughput_model, frame_width, frame_height,
     shard, plans, top_k, min_fps, trace_context) = payload
    fold_started = time.perf_counter()

    def traced_fold() -> Dict[str, object]:
        with obs_trace.adopt(trace_context):
            with obs_trace.span("stream.shard", chunks=len(shard)) as span:
                report = fold()
                span.set_attributes(
                    chunks_materialized=len(report["materialized"]),
                    admitted_rows=report["admitted_rows"])
                return report

    if trace_context is None:
        report = fold_shard(space, characterizations, throughput_model,
                            frame_width, frame_height, shard, plans,
                            top_k, min_fps)
    else:
        def fold() -> Dict[str, object]:
            return fold_shard(space, characterizations, throughput_model,
                              frame_width, frame_height, shard, plans,
                              top_k, min_fps)

        if obs_trace.enabled():
            report = traced_fold()
        else:
            shipped: List[Dict[str, object]] = []
            with obs_trace.capture(shipped):
                report = traced_fold()
            report["spans"] = shipped
    report["fold_wall_s"] = time.perf_counter() - fold_started
    return report


def fold_shard(space: ArchitectureSpace,
               characterizations: Mapping[Tuple[int, int],
                                          "ConeCharacterization"],
               throughput_model: ThroughputModel,
               frame_width: int, frame_height: int,
               shard: Sequence[Tuple[int, SpaceChunk]],
               plans: Mapping[Tuple[int, int], _GroupPlan],
               top_k: int, min_fps: Optional[float]) -> Dict[str, object]:
    """The pure fold over one shard's chunks (see :func:`_fold_chunk_shard`)."""
    frontier = StreamingFrontier()
    topk = StreamingTopK(top_k)
    contexts: Dict[Tuple[int, int], _GroupContext] = {}
    admitted_rows = 0
    chunks_skipped = 0
    peak_chunk_rows = 0
    frontier_peak = 0
    materialized: List[int] = []

    for chunk_index, chunk in shard:
        group_key = (chunk.window_index, chunk.split_index)
        plan = plans[group_key]
        start = max(chunk.count_start, plan.start)
        stop = min(chunk.count_stop, plan.stop)
        if not plan.evaluable or stop <= start:
            chunks_skipped += 1
            continue
        context = contexts.get(group_key)
        if context is None:
            context = _group_context(space, characterizations,
                                     chunk.window, chunk.split)
            contexts[group_key] = context

        counts = chunk.counts(start=start, stop=stop)
        materialized.append(chunk_index)
        peak_chunk_rows = max(peak_chunk_rows, int(counts.size))
        area = _group_area(counts, context.depths, context.primary,
                           context.area_by_depth)
        columns = throughput_model.estimate_batch(
            context.representative, context.cone_performance,
            frame_width, frame_height, counts)
        times = np.asarray(columns["seconds_per_frame"])
        rows = chunk.base_row + np.arange(start, stop, dtype=np.int64)
        if plan.post_filter and min_fps is not None:
            admitted = columns["frames_per_second"] >= min_fps
            area, times, rows = area[admitted], times[admitted], rows[admitted]
        if rows.size == 0:
            continue
        admitted_rows += int(rows.size)
        frontier.update(area, times, rows)
        topk.update(area, times, rows)
        frontier_peak = max(frontier_peak, len(frontier))

    return {"frontier": frontier, "topk": topk,
            "admitted_rows": admitted_rows,
            "chunks_skipped": chunks_skipped,
            "peak_chunk_rows": peak_chunk_rows,
            "frontier_peak": frontier_peak,
            "materialized": materialized}


def _map_shards(payloads: List[_ShardPayload], executor: object,
                jobs: int) -> List[Dict[str, object]]:
    """Dispatch shard payloads through an executor strategy.

    ``executor`` is anything :func:`repro.api.executor.resolve_strategy`
    accepts (``None`` → ``"threads"``, a registered name, or a strategy
    instance).  Strategies expose chunk-shard fan-out through
    ``map_tasks(fn, payloads, max_workers)``; one without it (a custom
    ``run_batch``-only backend) degrades to an in-process loop — correct,
    just not parallel.
    """
    # lazy: keeps `import repro.dse.stream` NumPy+stdlib-only (the check.sh
    # import guard) and avoids the api-layer dependency on the serial path.
    from repro.api.executor import resolve_strategy

    strategy = resolve_strategy(executor)
    map_tasks = getattr(strategy, "map_tasks", None)
    if map_tasks is None:
        return [_fold_chunk_shard(payload) for payload in payloads]
    return list(map_tasks(_fold_chunk_shard, payloads, max_workers=jobs))


def explore_stream(space: ArchitectureSpace,
                   characterizations: Mapping[Tuple[int, int],
                                              "ConeCharacterization"],
                   throughput_model: ThroughputModel,
                   frame_width: int, frame_height: int,
                   constraints: Optional[DseConstraints] = None,
                   usable_luts: float = math.inf,
                   chunk_rows: int = DEFAULT_CHUNK_ROWS,
                   top_k: int = DEFAULT_TOP_K,
                   chunk_order: Optional[Sequence[int]] = None,
                   use_mask_cache: bool = True,
                   jobs: Optional[int] = None,
                   executor: object = None) -> StreamingExploration:
    """Evaluate a whole architecture space at bounded memory.

    Visits the same candidates as :func:`repro.dse.engine.explore_columnar`
    and produces the identical Pareto frontier (same design points, same
    order, bit-identical serializations) — whatever ``chunk_rows`` is,
    whatever order ``chunk_order`` (a permutation of the planned chunk
    indices, mainly for tests) processes the chunks in, and whatever
    ``jobs``/``executor`` the chunk schedule is dispatched across (shards
    fold privately and reduce via the associative ``merge``).  Peak memory
    is bounded by the per-worker chunk size plus the frontier/top-k state,
    never by the space.

    ``pruned_rows`` counts every row skipped before costing: the area-side
    prefix pushdown (identical to the columnar engine's accounting) plus
    the min-fps suffix pushdown (``throughput_pruned_rows``; the columnar
    engine filters those after costing without counting them), so with an
    fps floor ``admitted_rows + pruned_rows`` covers all evaluable rows.
    """
    constraints = constraints or DseConstraints()
    jobs = _validate_jobs(jobs)
    chunks = plan_chunks(space, chunk_rows)
    splits = tuple(tuple(split) for split in space.level_splits())
    n_counts = space.max_cones_per_depth

    if chunk_order is None:
        schedule: List[int] = list(range(len(chunks)))
    else:
        schedule = list(chunk_order)
        if sorted(schedule) != list(range(len(chunks))):
            raise ValueError(
                f"chunk_order must be a permutation of range({len(chunks)})")

    key = _mask_cache_key(space, characterizations, constraints, usable_luts)
    admissions = _mask_cache.get(key) if use_mask_cache else None
    mask_cache_hit = admissions is not None
    if admissions is None:
        admissions = _compute_admissions(space, splits, characterizations,
                                         constraints, usable_luts)
        if use_mask_cache:
            _mask_cache.put(key, admissions)
    plans, throughput_pruned = _plan_groups(
        space, splits, characterizations, throughput_model,
        frame_width, frame_height, constraints, admissions)
    pruned_rows = (sum(entry.pruned for entry in admissions.values())
                   + throughput_pruned)

    min_fps = constraints.min_frames_per_second
    shards = _shard_schedule(schedule, jobs) if jobs > 1 else [schedule]
    frontier = StreamingFrontier()
    topk = StreamingTopK(top_k)
    admitted_rows = 0
    chunks_skipped = 0
    peak_chunk_rows = 0
    frontier_peak = 0
    materialized: List[int] = []
    fold_histogram = obs_metrics.registry().histogram(
        "repro_stream_chunk_fold_seconds")
    with obs_trace.span("stream.explore", chunks=len(chunks), jobs=jobs,
                        shards=len(shards)):
        # capture the span handoff *inside* the span so every shard —
        # same thread, pool thread, or worker process — parents to it
        trace_context = obs_trace.context_payload()
        payloads = [
            (space, characterizations, throughput_model, frame_width,
             frame_height, [(index, chunks[index]) for index in shard],
             plans, top_k, min_fps, trace_context)
            for shard in shards]
        if len(payloads) > 1:
            folds = _map_shards(payloads, executor, jobs)
        else:
            folds = [_fold_chunk_shard(payload) for payload in payloads]

        for fold in folds:
            frontier.merge(fold["frontier"])
            topk.merge(fold["topk"])
            admitted_rows += fold["admitted_rows"]
            chunks_skipped += fold["chunks_skipped"]
            peak_chunk_rows = max(peak_chunk_rows, fold["peak_chunk_rows"])
            frontier_peak = max(frontier_peak, fold["frontier_peak"],
                                len(frontier))
            materialized.extend(fold["materialized"])
            fold_histogram.observe(fold["fold_wall_s"])
            obs_trace.absorb(fold.get("spans"))
    duplicates = len(materialized) - len(set(materialized))
    _counters.add(runs=1,
                  parallel_runs=1 if len(folds) > 1 else 0,
                  chunks_materialized=len(materialized),
                  duplicate_chunk_materializations=duplicates,
                  throughput_pruned_rows=throughput_pruned)

    pareto_area, _pareto_time, pareto_rows = frontier.result()
    top_area, _top_time, top_rows = topk.result()
    builder = _PointBuilder(space, characterizations, throughput_model,
                            frame_width, frame_height, usable_luts,
                            splits, n_counts)
    return StreamingExploration(
        space_rows=space.size(),
        admitted_rows=admitted_rows,
        pruned_rows=pruned_rows,
        chunk_rows=chunk_rows,
        chunks_total=len(chunks),
        chunks_skipped=chunks_skipped,
        peak_chunk_rows=peak_chunk_rows,
        frontier_peak=frontier_peak,
        mask_cache_hit=mask_cache_hit,
        pareto_row_index=pareto_rows,
        pareto=builder.build(pareto_rows, pareto_area),
        top_k=top_k,
        top_points=builder.build(top_rows, top_area),
        throughput_pruned_rows=throughput_pruned,
        jobs=len(folds),
    )


class _PointBuilder:
    """Rebuilds :class:`DesignPoint`s for surviving global rows.

    The throughput columns are recomputed by ``estimate_batch`` on just the
    survivors' counts, batched per (window, split) group; every column is
    elementwise over the count axis, so the subset evaluation reproduces
    the full-table values bit for bit (the stored frontier areas are reused
    directly — they came from the same accumulation).  Group contexts are
    rebuilt lazily per surviving group: the fold may have happened on
    worker threads or in worker processes, so the parent holds none.
    """

    def __init__(self, space, characterizations, throughput_model,
                 frame_width, frame_height, usable_luts, splits,
                 n_counts) -> None:
        self.space = space
        self.characterizations = characterizations
        self.throughput_model = throughput_model
        self.frame_width = frame_width
        self.frame_height = frame_height
        self.usable_luts = usable_luts
        self.splits = splits
        self.n_counts = n_counts
        self.contexts: Dict[Tuple[int, int], _GroupContext] = {}

    def _context(self, group: Tuple[int, int]) -> _GroupContext:
        context = self.contexts.get(group)
        if context is None:
            window_index, split_index = group
            context = _group_context(self.space, self.characterizations,
                                     self.space.window_sides[window_index],
                                     self.splits[split_index])
            self.contexts[group] = context
        return context

    def build(self, rows: "np.ndarray",
              areas: "np.ndarray") -> List[DesignPoint]:
        if rows.size == 0:
            return []
        n_splits = len(self.splits)
        count_index = rows % self.n_counts
        split_index = (rows // self.n_counts) % n_splits
        window_index = rows // (self.n_counts * n_splits)
        points: List[Optional[DesignPoint]] = [None] * rows.size
        by_group: Dict[Tuple[int, int], List[int]] = {}
        for position in range(rows.size):
            group = (int(window_index[position]), int(split_index[position]))
            by_group.setdefault(group, []).append(position)
        for group, positions in by_group.items():
            context = self._context(group)
            counts = np.asarray([int(count_index[p]) + 1 for p in positions],
                                dtype=np.int64)
            columns = self.throughput_model.estimate_batch(
                context.representative, context.cone_performance,
                self.frame_width, self.frame_height, counts)
            for offset, position in enumerate(positions):
                architecture = self.space.materialize_row_parts(
                    context.window, context.split, int(counts[offset]))
                area = float(areas[position])
                points[position] = DesignPoint(
                    architecture=architecture,
                    area_luts=area,
                    area_estimated=context.area_estimated,
                    performance=performance_from_columns(columns, offset),
                    fits_device=bool(area <= self.usable_luts),
                    cone_area_by_depth=dict(context.area_by_depth),
                )
        return [point for point in points if point is not None]
