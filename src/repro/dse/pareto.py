"""Pareto-set extraction over (area, time-per-frame).

The paper extracts the Pareto set "by means of an exhaustive search that
typically requires the evaluation of a few hundreds of solutions"; the
characterised design points are cheap to compare, so a simple sort-and-scan
suffices.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.dse.design_point import DesignPoint


def is_dominated(candidate: DesignPoint, other: DesignPoint) -> bool:
    """True when ``other`` is at least as good on both objectives and better on one."""
    better_or_equal = (other.area_luts <= candidate.area_luts
                       and other.seconds_per_frame <= candidate.seconds_per_frame)
    strictly_better = (other.area_luts < candidate.area_luts
                       or other.seconds_per_frame < candidate.seconds_per_frame)
    return better_or_equal and strictly_better


def pareto_front(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Return the non-dominated subset, sorted by increasing area.

    Ties on both objectives keep a single representative (the first seen),
    matching how the paper's Pareto charts plot one marker per cost/latency
    pair.
    """
    candidates = sorted(points, key=lambda p: (p.area_luts, p.seconds_per_frame))
    front: List[DesignPoint] = []
    best_time = float("inf")
    for point in candidates:
        if point.seconds_per_frame < best_time:
            front.append(point)
            best_time = point.seconds_per_frame
    return front
