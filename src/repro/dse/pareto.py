"""Pareto-set extraction over (area, time-per-frame).

The paper extracts the Pareto set "by means of an exhaustive search that
typically requires the evaluation of a few hundreds of solutions"; the
characterised design points are cheap to compare, so a simple sort-and-scan
suffices.

Determinism contract (shared by the pure-Python scan, the vectorized NumPy
path, and the columnar engine's :func:`pareto_indices`):

* the frontier is returned sorted by increasing area, ties on area by
  increasing time;
* points equal on *both* objectives keep a single representative — the one
  appearing first in the input (both sorts are stable), matching how the
  paper's Pareto charts plot one marker per cost/latency pair;
* non-finite objectives (NaN or infinity) are rejected with a
  :exc:`ValueError` — NaN has no ordering and an infinite objective means
  the estimation upstream produced garbage, so silently dropping or keeping
  such points would hide the bug.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.dse.design_point import DesignPoint

#: Below this many points the plain-Python scan wins (no array setup cost);
#: production sweeps evaluate hundreds to thousands of points per workload
#: and take the vectorized path.
_VECTORIZE_THRESHOLD = 64

#: The one diagnostic for non-finite objectives, shared by every extractor
#: (scalar scan, vectorized path, and the streaming accumulators in
#: :mod:`repro.dse.stream`) so callers can match on a single message.
FINITE_OBJECTIVES_ERROR = (
    "Pareto extraction needs finite objectives; got NaN or infinite "
    "area/time values (an upstream estimate produced garbage)")


def is_dominated(candidate: DesignPoint, other: DesignPoint) -> bool:
    """True when ``other`` is at least as good on both objectives and better on one."""
    better_or_equal = (other.area_luts <= candidate.area_luts
                       and other.seconds_per_frame <= candidate.seconds_per_frame)
    strictly_better = (other.area_luts < candidate.area_luts
                       or other.seconds_per_frame < candidate.seconds_per_frame)
    return better_or_equal and strictly_better


def pareto_indices(area_luts: "np.ndarray",
                   seconds_per_frame: "np.ndarray") -> "np.ndarray":
    """Indices of the non-dominated rows of two parallel objective columns.

    The columnar twin of :func:`pareto_front`: a row survives iff its time
    is a strict running minimum over the (area, time)-lexsorted order.
    ``np.lexsort`` is stable like ``list.sort``, so rows equal on both
    objectives keep their first-seen representative and the returned index
    order (increasing area, ties by time, both stable) is identical to the
    scalar scan's output order.  Raises :exc:`ValueError` on NaN/inf
    objectives (see the module determinism contract).
    """
    areas = np.asarray(area_luts, dtype=np.float64)
    times = np.asarray(seconds_per_frame, dtype=np.float64)
    if areas.shape != times.shape or areas.ndim != 1:
        raise ValueError("area_luts and seconds_per_frame must be 1-D "
                         "arrays of equal length")
    if not (np.isfinite(areas).all() and np.isfinite(times).all()):
        raise ValueError(FINITE_OBJECTIVES_ERROR)
    if areas.size == 0:
        return np.empty(0, dtype=np.intp)
    order = np.lexsort((times, areas))
    sorted_times = times[order]
    keep = np.empty(areas.size, dtype=bool)
    keep[0] = True
    keep[1:] = sorted_times[1:] < np.minimum.accumulate(sorted_times)[:-1]
    return order[keep]


def pareto_front(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Return the non-dominated subset, sorted by increasing area.

    Ties on both objectives keep a single representative (the first seen in
    the input — see the module determinism contract).  Large inputs take a
    vectorized NumPy path (:func:`pareto_indices`) that selects exactly the
    same subset in the same order as the scalar scan; non-finite objectives
    raise :exc:`ValueError` on either path.
    """
    candidates = list(points)
    if len(candidates) >= _VECTORIZE_THRESHOLD:
        order = pareto_indices(
            np.array([p.area_luts for p in candidates], dtype=np.float64),
            np.array([p.seconds_per_frame for p in candidates],
                     dtype=np.float64))
        return [candidates[index] for index in order]
    for point in candidates:
        if not (math.isfinite(point.area_luts)
                and math.isfinite(point.seconds_per_frame)):
            raise ValueError(FINITE_OBJECTIVES_ERROR)
    candidates.sort(key=lambda p: (p.area_luts, p.seconds_per_frame))
    front: List[DesignPoint] = []
    best_time = float("inf")
    for point in candidates:
        if point.seconds_per_frame < best_time:
            front.append(point)
            best_time = point.seconds_per_frame
    return front
