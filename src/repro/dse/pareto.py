"""Pareto-set extraction over (area, time-per-frame).

The paper extracts the Pareto set "by means of an exhaustive search that
typically requires the evaluation of a few hundreds of solutions"; the
characterised design points are cheap to compare, so a simple sort-and-scan
suffices.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.dse.design_point import DesignPoint

#: Below this many points the plain-Python scan wins (no array setup cost);
#: production sweeps evaluate hundreds to thousands of points per workload
#: and take the vectorized path.
_VECTORIZE_THRESHOLD = 64


def is_dominated(candidate: DesignPoint, other: DesignPoint) -> bool:
    """True when ``other`` is at least as good on both objectives and better on one."""
    better_or_equal = (other.area_luts <= candidate.area_luts
                       and other.seconds_per_frame <= candidate.seconds_per_frame)
    strictly_better = (other.area_luts < candidate.area_luts
                       or other.seconds_per_frame < candidate.seconds_per_frame)
    return better_or_equal and strictly_better


def pareto_front(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Return the non-dominated subset, sorted by increasing area.

    Ties on both objectives keep a single representative (the first seen),
    matching how the paper's Pareto charts plot one marker per cost/latency
    pair.  Large inputs take a vectorized NumPy path (stable lexsort +
    running-minimum scan) that selects exactly the same subset in the same
    order as the scalar scan.
    """
    candidates = list(points)
    if len(candidates) >= _VECTORIZE_THRESHOLD:
        return _pareto_front_vectorized(candidates)
    candidates.sort(key=lambda p: (p.area_luts, p.seconds_per_frame))
    front: List[DesignPoint] = []
    best_time = float("inf")
    for point in candidates:
        if point.seconds_per_frame < best_time:
            front.append(point)
            best_time = point.seconds_per_frame
    return front


def _pareto_front_vectorized(candidates: Sequence[DesignPoint]
                             ) -> List[DesignPoint]:
    """NumPy twin of the sort-and-scan: a point survives iff its time is a
    strict running minimum over the (area, time)-sorted order.

    ``lexsort`` is stable like ``list.sort``, so equal (area, time) pairs
    keep their first-seen representative and the output ordering is
    identical to the scalar path's.
    """
    areas = np.array([p.area_luts for p in candidates], dtype=np.float64)
    times = np.array([p.seconds_per_frame for p in candidates],
                     dtype=np.float64)
    order = np.lexsort((times, areas))
    sorted_times = times[order]
    keep = np.empty(len(candidates), dtype=bool)
    keep[0] = sorted_times[0] < np.inf  # mirrors the scalar scan exactly
    keep[1:] = sorted_times[1:] < np.minimum.accumulate(sorted_times)[:-1]
    return [candidates[index] for index in order[keep]]
