"""Typed metrics: Counter / Gauge / Histogram behind a global registry.

The service/fleet ``/metrics`` endpoints render two sources: the
``stats()`` document walk (now classified counter-vs-gauge by leaf name,
see :mod:`repro.service.metrics`) and this registry, which holds the
instruments the walkers cannot express — log-spaced latency histograms
(queue wait, pipeline stage, chunk fold) and labelled counters (per-role
submits).  Everything is process-global so one exposition shows the
whole process, and thread-safe behind one registry lock plus per-metric
locks.

:func:`parse_exposition` is a strict validator for the Prometheus text
format 0.0.4 (``# TYPE`` before samples, histogram ``le`` buckets
cumulative and capped by ``+Inf`` == ``_count``); the ``check.sh --obs``
smoke runs a live server's ``/metrics`` body through it.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter", "DEFAULT_LATENCY_BUCKETS", "Gauge", "Histogram",
    "MetricsRegistry", "parse_exposition", "registry",
]

#: Fixed log-spaced latency buckets (seconds): a 1-2.5-5 ladder from
#: 500 microseconds to 50 s.  Fixed so buckets never depend on traffic
#: and series stay mergeable across processes.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing value (``# TYPE ... counter``)."""

    kind = "counter"
    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = _validate_name(name)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """Freely settable value (``# TYPE ... gauge``)."""

    kind = "gauge"
    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = _validate_name(name)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Cumulative-bucket histogram (``# TYPE ... histogram``)."""

    kind = "histogram"
    __slots__ = ("name", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, name: str,
                 buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) \
            -> None:
        self.name = _validate_name(name)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs >= 1 bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name} buckets must be finite")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name} buckets must be strictly "
                             f"increasing (got {bounds})")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)  # per-bucket, non-cumulative
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative ``(le, count)`` pairs plus sum/count."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative.append((bound, running))
        return {"type": self.kind, "buckets": cumulative,
                "sum": acc, "count": total}


class MetricsRegistry:
    """Name-keyed get-or-create store of typed instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise TypeError(f"metric {name!r} already registered as "
                                f"{metric.kind}, not {kind}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None) -> Histogram:
        return self._get_or_create(
            name,
            lambda: Histogram(name, buckets or DEFAULT_LATENCY_BUCKETS),
            "histogram")

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Name-sorted JSON-ready view of every instrument."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot()
                for name, metric in sorted(metrics)}

    def reset(self) -> None:
        """Drop every instrument (tests only)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every layer instruments into."""
    return _REGISTRY


# ---------------------------------------------------------------------- #
# strict exposition-format parser (0.0.4 text format)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
_LABEL_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"\\]*)"$')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not text:
        return labels
    for part in text.split(","):
        match = _LABEL_RE.match(part.strip())
        if match is None:
            raise ValueError(f"malformed label pair {part!r}")
        if match.group("key") in labels:
            raise ValueError(f"duplicate label {match.group('key')!r}")
        labels[match.group("key")] = match.group("value")
    return labels


def _family_of(name: str, types: Dict[str, str]) -> Optional[str]:
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[:-len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Validate Prometheus 0.0.4 text exposition, strictly.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``
    and raises :class:`ValueError` on any violation: samples preceding
    their ``# TYPE`` line, samples outside any declared family,
    non-float values, duplicate series, non-cumulative histogram
    buckets, or a histogram missing its ``+Inf`` bucket / ``_sum`` /
    ``_count`` or whose ``+Inf`` count disagrees with ``_count``.
    """
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    types: Dict[str, str] = {}
    families: Dict[str, Dict[str, Any]] = {}
    seen_series = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(
                    f"line {line_number}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise ValueError(
                        f"line {line_number}: malformed TYPE line {line!r}")
                family = parts[2]
                if family in types:
                    raise ValueError(
                        f"line {line_number}: duplicate TYPE for {family}")
                types[family] = parts[3]
                families[family] = {"type": parts[3], "samples": []}
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample "
                             f"{line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(f"line {line_number}: non-float value in "
                             f"{line!r}") from None
        family = _family_of(name, types)
        if family is None:
            raise ValueError(f"line {line_number}: sample {name!r} has no "
                             f"preceding # TYPE line")
        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            raise ValueError(f"line {line_number}: duplicate series "
                             f"{series_key!r}")
        seen_series.add(series_key)
        families[family]["samples"].append((name, labels, value))
    _check_histograms(families)
    return families


def _check_histograms(families: Dict[str, Dict[str, Any]]) -> None:
    for family, entry in families.items():
        if entry["type"] != "histogram":
            continue
        buckets: List[Tuple[float, float]] = []
        total = None
        for name, labels, value in entry["samples"]:
            if name == f"{family}_bucket":
                if "le" not in labels:
                    raise ValueError(f"{family}: bucket without le label")
                bound = (math.inf if labels["le"] == "+Inf"
                         else float(labels["le"]))
                buckets.append((bound, value))
            elif name == f"{family}_count":
                total = value
        if not buckets or total is None:
            raise ValueError(f"{family}: histogram missing buckets or "
                             f"_count")
        names = {name for name, _labels, _value in entry["samples"]}
        if f"{family}_sum" not in names:
            raise ValueError(f"{family}: histogram missing _sum")
        bounds = [bound for bound, _count in buckets]
        if bounds != sorted(bounds):
            raise ValueError(f"{family}: bucket bounds out of order")
        counts = [count for _bound, count in buckets]
        if counts != sorted(counts):
            raise ValueError(f"{family}: bucket counts not cumulative")
        if bounds[-1] != math.inf:
            raise ValueError(f"{family}: missing +Inf bucket")
        if counts[-1] != total:
            raise ValueError(f"{family}: +Inf bucket ({counts[-1]}) != "
                             f"_count ({total})")
