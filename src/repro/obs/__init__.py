"""Observability substrate: tracing, typed metrics, profiling.

``repro.obs`` is stdlib-only (NumPy allowed but unused) and holds the
same import-hygiene bar as :mod:`repro.dse.engine`: importing it must
never pull in test/plot/config frameworks.  Three modules:

:mod:`repro.obs.trace`
    A ``Span`` tree with ids/parent-ids, wall+CPU timings, and typed
    attributes.  Context propagates through ``contextvars`` inside a
    process, through the ``X-Repro-Trace`` header across the
    service/fleet HTTP hops, and through explicit picklable payloads
    into executor workers and ``explore_stream`` chunk shards.  Spans
    land in a ring-buffer :class:`~repro.obs.trace.TraceStore` and
    export as JSONL or Chrome ``trace_event`` JSON.

:mod:`repro.obs.metrics`
    ``Counter`` / ``Gauge`` / ``Histogram`` (fixed log-spaced latency
    buckets) behind a process-global registry, plus a strict parser for
    the Prometheus text exposition format used by the ``--obs`` smoke.

:mod:`repro.obs.profile`
    An opt-in sampling profiler (``REPRO_OBS_PROFILE=1`` / ``--profile``)
    that attributes hot-path samples to the enclosing span and writes
    flamegraph-ready folded-stack JSON.

Everything is ~zero-cost when disabled: the recorder is a no-op
singleton behind one module-global check (pinned by the ``obs_overhead``
section of ``scripts/bench.py``), and tracing is bit-neutral — spans are
a side channel that never touches result payloads or digests.
"""

from repro.obs import metrics, profile, trace

__all__ = ["metrics", "profile", "trace"]
