"""Opt-in sampling profiler attributing hot-path time to spans.

A background thread snapshots every Python thread's stack (via
``sys._current_frames``) at a fixed interval and aggregates folded
stacks — the flamegraph input format — plus a per-span sample count
taken from the tracer's thread→span bookkeeping, so profile time joins
the trace on span names.  Strictly opt-in (``REPRO_OBS_PROFILE=1`` or
``--profile``): when off, nothing is imported into the hot path and the
tracer skips its per-span thread bookkeeping entirely.

The snapshot is flamegraph-ready JSON: ``{"stacks": {"a;b;c": n, ...}}``
feeds any folded-stack renderer (e.g. speedscope or flamegraph.pl after
a one-line ``"stack count"`` dump).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Optional

from repro.obs import trace as _trace

__all__ = ["PROFILE_ENV", "SamplingProfiler", "maybe_profile",
           "profiling_requested"]

#: Environment switch honored by :func:`maybe_profile`.
PROFILE_ENV = "REPRO_OBS_PROFILE"

#: How deep a sampled stack may go before it is truncated.
MAX_STACK_DEPTH = 64


def profiling_requested(flag: Optional[bool] = None) -> bool:
    """Should profiling run?  CLI flag wins; else the env var decides."""
    if flag:
        return True
    value = os.environ.get(PROFILE_ENV, "").strip().lower()
    return value not in ("", "0", "off", "false", "no")


class SamplingProfiler:
    """Periodic whole-process stack sampler (start/stop lifecycle)."""

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0 (got {interval_s})")
        self.interval_s = interval_s
        self._lock = threading.Lock()
        self._stacks: Dict[str, int] = {}
        self._span_samples: Dict[str, int] = {}
        self._samples = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._thread_spans: Dict[int, list] = {}
        self._started_wall = 0.0
        self._stopped_wall = 0.0

    # -- lifecycle ----------------------------------------------------- #

    def start(self) -> "SamplingProfiler":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._started_wall = time.time()
        # hand the tracer a live dict so Span start/finish maintain a
        # per-thread span-name stack only while we sample
        _trace._THREAD_SPANS = self._thread_spans
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        if _trace._THREAD_SPANS is self._thread_spans:
            _trace._THREAD_SPANS = None
        self._stopped_wall = time.time()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *_exc) -> bool:
        self.stop()
        return False

    # -- sampling ------------------------------------------------------ #

    def _loop(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own_ident)

    def _sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        spans = self._thread_spans
        with self._lock:
            self._samples += 1
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                parts = []
                depth = 0
                while frame is not None and depth < MAX_STACK_DEPTH:
                    code = frame.f_code
                    module = frame.f_globals.get("__name__", "?")
                    parts.append(f"{module}:{code.co_name}")
                    frame = frame.f_back
                    depth += 1
                folded = ";".join(reversed(parts))
                self._stacks[folded] = self._stacks.get(folded, 0) + 1
                stack = spans.get(ident)
                if stack:
                    name = stack[-1]
                    self._span_samples[name] = \
                        self._span_samples.get(name, 0) + 1

    # -- output -------------------------------------------------------- #

    def snapshot(self) -> Dict[str, Any]:
        """Flamegraph-ready JSON: folded stacks + per-span samples."""
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "samples": self._samples,
                "duration_s": ((self._stopped_wall or time.time())
                               - self._started_wall),
                "stacks": dict(sorted(self._stacks.items())),
                "spans": dict(sorted(self._span_samples.items())),
            }

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


class maybe_profile:
    """``with maybe_profile(args.profile) as prof:`` — prof is ``None``
    unless the flag or ``REPRO_OBS_PROFILE`` asked for sampling; on exit
    the flamegraph JSON lands at ``path``."""

    def __init__(self, flag: Optional[bool] = None,
                 path: str = "repro-profile.json",
                 interval_s: float = 0.005) -> None:
        self._wanted = profiling_requested(flag)
        self._path = path
        self._interval_s = interval_s
        self.profiler: Optional[SamplingProfiler] = None
        self.output: Optional[str] = None

    def __enter__(self) -> Optional[SamplingProfiler]:
        if self._wanted:
            self.profiler = SamplingProfiler(
                interval_s=self._interval_s).start()
        return self.profiler

    def __exit__(self, *_exc) -> bool:
        if self.profiler is not None:
            self.profiler.stop()
            self.output = self.profiler.write(self._path)
        return False
