"""Span-tree tracing with cross-process context propagation.

One trace is a tree of :class:`Span` records sharing a ``trace_id``;
every span knows its ``parent_id``, wall and per-thread CPU durations,
and a flat dict of typed attributes.  Three propagation edges:

* **in-process** — the active ``(trace_id, span_id)`` pair lives in a
  :mod:`contextvars` variable, so nested ``with span(...)`` blocks
  parent correctly across the session/scheduler call graph;
* **HTTP** — :func:`header_value` / :func:`parse_header` round-trip the
  context through the ``X-Repro-Trace`` request header
  (``<32-hex trace>-<16-hex span>``); a malformed or absent header
  degrades to a fresh root span, never an error;
* **worker handoff** — :func:`context_payload` produces a picklable
  ``{"trace_id", "span_id", "pid"}`` dict that executor shards and
  ``explore_stream`` chunk workers re-enter with :func:`adopt`; spans
  recorded in a child process are captured with :func:`capture` and
  re-anchored parent-side with :func:`absorb`.

Recording is off by default.  When disabled, :func:`span` returns a
shared no-op handle and :func:`current_ids` short-circuits on one global
flag — the instrumentation left in the hot paths costs one attribute
load.  :func:`enable` routes finished spans into the process-global
ring-buffer :class:`TraceStore` (and any extra sinks), which backs the
``GET /trace/<id>`` HTTP surface and ``python -m repro trace``.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TRACE_HEADER", "Span", "TraceStore", "absorb", "adopt", "auto_enable",
    "capture", "context_payload", "current_ids", "disable", "enable",
    "enabled", "global_store", "header_value", "parse_header", "span",
    "start_span", "to_chrome_trace", "to_jsonl",
]

#: HTTP request header carrying the trace context across service hops.
TRACE_HEADER = "X-Repro-Trace"

#: Environment variable gating server-side auto-enablement.
OBS_ENV = "REPRO_OBS"

_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16

#: Active ``(trace_id, span_id)`` of the enclosing span, per context.
_CURRENT: "contextvars.ContextVar[Optional[Tuple[str, str]]]" = \
    contextvars.ContextVar("repro_obs_current", default=None)

_STATE_LOCK = threading.Lock()
_ENABLED = False
#: Immutable tuple of ``sink(span_dict)`` callables; swapped whole under
#: the state lock so the hot path reads it without locking.
_SINKS: Tuple[Callable[[Dict[str, Any]], None], ...] = ()

#: ``thread ident -> [span names]`` maintained only while the sampling
#: profiler is attributing samples to spans (see repro.obs.profile).
_THREAD_SPANS: Optional[Dict[int, List[str]]] = None


def _new_trace_id() -> str:
    return os.urandom(_TRACE_ID_HEX // 2).hex()


def _new_span_id() -> str:
    return os.urandom(_SPAN_ID_HEX // 2).hex()


# ---------------------------------------------------------------------- #
# recorder state


def enabled() -> bool:
    """Is span recording on in this process?"""
    return _ENABLED


def enable(store: Optional["TraceStore"] = None) -> None:
    """Turn recording on, routing spans into ``store`` (default: the
    process-global ring buffer).  Idempotent; extra stores accumulate as
    additional sinks."""
    global _ENABLED, _SINKS
    with _STATE_LOCK:
        sink = (store or _GLOBAL_STORE).add
        if sink not in _SINKS:
            _SINKS = _SINKS + (sink,)
        _ENABLED = True


def disable() -> None:
    """Turn recording off and drop every sink (stores keep their spans)."""
    global _ENABLED, _SINKS
    with _STATE_LOCK:
        _ENABLED = False
        _SINKS = ()


def auto_enable() -> bool:
    """Server-side default: enable tracing unless ``REPRO_OBS`` opts out.

    Long-lived daemons (service/fleet) call this at construction so one
    ``submit --fleet`` yields a trace out of the box; library sessions
    stay zero-cost unless the caller enables explicitly.
    """
    if os.environ.get(OBS_ENV, "1").strip().lower() in (
            "0", "off", "false", "no"):
        return False
    enable()
    return True


def global_store() -> "TraceStore":
    """The process-global ring-buffer store servers expose over HTTP."""
    return _GLOBAL_STORE


def _record(span_dict: Dict[str, Any]) -> None:
    for sink in _SINKS:
        sink(span_dict)


# ---------------------------------------------------------------------- #
# spans


class Span:
    """One timed node of a trace tree (context manager or manual).

    ``with span("stage.explore", kernel="blur"):`` is the common form;
    :func:`start_span` returns an un-activated handle for spans whose
    start and finish live on different threads (e.g. a service job span
    opened at admission and closed at completion).
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attributes",
                 "status", "error", "_start_wall", "_start_perf",
                 "_start_cpu", "_tid", "_thread", "_token", "_finished")

    def __init__(self, name: str,
                 parent: Optional[Dict[str, Any]] = None,
                 activate: bool = True,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        if parent is not None:
            self.trace_id = parent["trace_id"]
            self.parent_id = parent["span_id"]
        else:
            current = _CURRENT.get()
            if current is None:
                self.trace_id = _new_trace_id()
                self.parent_id = None
            else:
                self.trace_id, self.parent_id = current
        self.span_id = _new_span_id()
        self.attributes: Dict[str, Any] = dict(attributes) if attributes \
            else {}
        self.status = "ok"
        self.error: Optional[str] = None
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        self._start_cpu = time.thread_time()
        self._tid = threading.get_ident()
        self._thread = threading.current_thread().name
        self._token = (_CURRENT.set((self.trace_id, self.span_id))
                       if activate else None)
        self._finished = False
        tracked = _THREAD_SPANS
        if tracked is not None:
            tracked.setdefault(self._tid, []).append(name)

    # -- context-manager protocol -------------------------------------- #

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc_value, _tb) -> bool:
        if exc_type is not None:
            self.set_error(exc_value if exc_value is not None
                           else exc_type())
        self.finish()
        return False

    # -- mutation ------------------------------------------------------ #

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def set_error(self, error: BaseException) -> None:
        self.status = "error"
        self.error = f"{type(error).__name__}: {error}"

    def finish(self) -> None:
        """Close the span and hand it to the sinks (idempotent)."""
        if self._finished:
            return
        self._finished = True
        wall_s = time.perf_counter() - self._start_perf
        cpu_s = time.thread_time() - self._start_cpu
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:
                pass  # finished on a different thread than it started
        tracked = _THREAD_SPANS
        if tracked is not None:
            stack = tracked.get(self._tid)
            if stack and stack[-1] == self.name:
                stack.pop()
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self._start_wall,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "pid": os.getpid(),
            "tid": self._tid,
            "thread": self._thread,
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.attributes:
            record["attributes"] = self.attributes
        _record(record)

    # -- propagation --------------------------------------------------- #

    def context_payload(self) -> Dict[str, Any]:
        """Picklable handoff payload making this span the parent."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "pid": os.getpid()}


class _NoopSpan:
    """Shared do-nothing handle returned while recording is disabled."""

    __slots__ = ()
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    status = "ok"

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def set_error(self, error: BaseException) -> None:
        pass

    def finish(self) -> None:
        pass

    def context_payload(self) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def span(name: str, **attributes: Any):
    """Open a child span of the current context (no-op when disabled)."""
    if not _ENABLED:
        return _NOOP_SPAN
    return Span(name, attributes=attributes or None)


def start_span(name: str, parent: Optional[Dict[str, Any]] = None,
               **attributes: Any):
    """Start a span without activating it in the current context.

    Use for spans finished on another thread: the handle is stashed on
    the carrying object (e.g. a service job) and ``finish()``ed there,
    while children parent under it through explicit
    ``adopt(handle.context_payload())`` blocks.
    """
    if not _ENABLED:
        return _NOOP_SPAN
    return Span(name, parent=parent, activate=False,
                attributes=attributes or None)


def current_ids() -> Tuple[Optional[str], Optional[str]]:
    """``(trace_id, span_id)`` of the enclosing span, or ``(None, None)``."""
    if not _ENABLED:
        return (None, None)
    current = _CURRENT.get()
    if current is None:
        return (None, None)
    return current


def context_payload() -> Optional[Dict[str, Any]]:
    """Picklable snapshot of the current context for worker handoff."""
    if not _ENABLED:
        return None
    current = _CURRENT.get()
    if current is None:
        return None
    return {"trace_id": current[0], "span_id": current[1],
            "pid": os.getpid()}


class adopt:
    """Re-enter a handed-off context: children parent under ``payload``.

    Accepts ``None`` or a malformed payload (both no-ops), so callers
    can pass whatever arrived without pre-validating.
    """

    __slots__ = ("_payload", "_token")

    def __init__(self, payload: Optional[Dict[str, Any]]) -> None:
        self._payload = payload
        self._token = None

    def __enter__(self) -> "adopt":
        payload = self._payload
        if _ENABLED and isinstance(payload, dict):
            trace_id = payload.get("trace_id")
            span_id = payload.get("span_id")
            if isinstance(trace_id, str) and isinstance(span_id, str):
                self._token = _CURRENT.set((trace_id, span_id))
        return self

    def __exit__(self, *_exc) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


class capture:
    """Temporarily record spans into a plain list (worker-side).

    Child processes start with recording disabled; ``with
    capture(spans):`` turns it on with the list as an extra sink so the
    worker can ship its spans back inside its result payload, where the
    parent re-anchors them with :func:`absorb`.  Restores the previous
    recorder state on exit.
    """

    __slots__ = ("_into", "_prev")

    def __init__(self, into: List[Dict[str, Any]]) -> None:
        self._into = into
        self._prev = None

    def __enter__(self) -> List[Dict[str, Any]]:
        global _ENABLED, _SINKS
        with _STATE_LOCK:
            self._prev = (_ENABLED, _SINKS)
            _SINKS = _SINKS + (self._into.append,)
            _ENABLED = True
        return self._into

    def __exit__(self, *_exc) -> bool:
        global _ENABLED, _SINKS
        with _STATE_LOCK:
            _ENABLED, _SINKS = self._prev
        return False


def absorb(spans: Optional[Iterable[Dict[str, Any]]]) -> int:
    """Re-record span dicts shipped back from a worker process."""
    if not spans or not _ENABLED:
        return 0
    count = 0
    for item in spans:
        if isinstance(item, dict) and "trace_id" in item:
            _record(dict(item))
            count += 1
    return count


# ---------------------------------------------------------------------- #
# HTTP header codec


def header_value(payload: Optional[Dict[str, Any]] = None) -> Optional[str]:
    """``X-Repro-Trace`` value for the current (or given) context."""
    if payload is None:
        payload = context_payload()
    if not payload:
        return None
    return f"{payload['trace_id']}-{payload['span_id']}"


def parse_header(value: Optional[str]) -> Optional[Dict[str, Any]]:
    """Strictly decode a header value; ``None`` on anything malformed.

    Absent/garbage headers must degrade to a fresh root span — never an
    error — so this returns ``None`` rather than raising.
    """
    if not isinstance(value, str):
        return None
    parts = value.strip().split("-")
    if len(parts) != 2:
        return None
    trace_id, span_id = parts
    if len(trace_id) != _TRACE_ID_HEX or len(span_id) != _SPAN_ID_HEX:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return {"trace_id": trace_id.lower(), "span_id": span_id.lower()}


# ---------------------------------------------------------------------- #
# trace store


class TraceStore:
    """Ring buffer of finished spans, grouped and evicted per trace."""

    def __init__(self, max_traces: int = 128,
                 max_spans_per_trace: int = 4096) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1 (got {max_traces})")
        if max_spans_per_trace < 1:
            raise ValueError("max_spans_per_trace must be >= 1 "
                             f"(got {max_spans_per_trace})")
        self._max_traces = max_traces
        self._max_spans = max_spans_per_trace
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = \
            OrderedDict()
        self._spans_added = 0
        self._traces_evicted = 0
        self._spans_dropped = 0

    def add(self, span_dict: Dict[str, Any]) -> None:
        trace_id = span_dict.get("trace_id")
        if not isinstance(trace_id, str):
            return
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                while len(self._traces) >= self._max_traces:
                    self._traces.popitem(last=False)
                    self._traces_evicted += 1
                bucket = self._traces[trace_id] = []
            else:
                self._traces.move_to_end(trace_id)
            if len(bucket) >= self._max_spans:
                self._spans_dropped += 1
                return
            bucket.append(span_dict)
            self._spans_added += 1

    def get(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """Spans of one trace in finish order (copies), or ``None``."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                return None
            return [dict(span_dict) for span_dict in bucket]

    def trace_ids(self) -> List[str]:
        """Known trace ids, least- to most-recently touched."""
        with self._lock:
            return list(self._traces)

    def summaries(self) -> List[Dict[str, Any]]:
        """JSON-ready per-trace digest for the ``GET /trace`` index."""
        with self._lock:
            out = []
            for trace_id, bucket in self._traces.items():
                roots = [s for s in bucket if s.get("parent_id") is None]
                out.append({
                    "trace_id": trace_id,
                    "spans": len(bucket),
                    "root": roots[0]["name"] if roots else None,
                    "start_s": min(s["start_s"] for s in bucket),
                    "wall_s": max(s["start_s"] + s["wall_s"]
                                  for s in bucket)
                              - min(s["start_s"] for s in bucket),
                })
            return out

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def stats_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": sum(len(b) for b in self._traces.values()),
                "max_traces": self._max_traces,
                "spans_added": self._spans_added,
                "traces_evicted": self._traces_evicted,
                "spans_dropped": self._spans_dropped,
            }


_GLOBAL_STORE = TraceStore()


# ---------------------------------------------------------------------- #
# exporters


def to_jsonl(spans: Iterable[Dict[str, Any]]) -> str:
    """One span dict per line (the ``repro trace`` default output)."""
    return "".join(json.dumps(span_dict, sort_keys=True) + "\n"
                   for span_dict in spans)


def to_chrome_trace(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON (load in chrome://tracing / Perfetto).

    Each span becomes one complete ("ph": "X") event; ids and
    attributes ride in ``args`` so the trace joins back to logs.
    """
    events = []
    for span_dict in spans:
        args = {
            "trace_id": span_dict.get("trace_id"),
            "span_id": span_dict.get("span_id"),
            "parent_id": span_dict.get("parent_id"),
            "cpu_s": span_dict.get("cpu_s"),
            "status": span_dict.get("status"),
        }
        args.update(span_dict.get("attributes") or {})
        events.append({
            "name": span_dict.get("name", "span"),
            "cat": "repro",
            "ph": "X",
            "ts": span_dict.get("start_s", 0.0) * 1e6,
            "dur": max(span_dict.get("wall_s", 0.0), 0.0) * 1e6,
            "pid": span_dict.get("pid", 0),
            "tid": span_dict.get("tid", 0),
            "args": args,
        })
    events.sort(key=lambda event: (event["pid"], event["tid"],
                                   event["ts"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
