"""Section 4.1 (text) — IGF vs the manually optimised literature design.

Paper comparison: the 20-iteration 3x3 convolution of Cope [16] runs at
13.5 fps on 1024x768 (and below 5 fps at Full HD) on a Virtex-II Pro, while
the cone architectures found automatically by the flow reach 35 fps at Full
HD on the same device class and 110 fps at 1024x768 on a Virtex-6.  The
reproduction checks the *relations* (automatic >= manual on the old device,
much faster on the modern device), not the absolute numbers.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.baselines.manual_designs import literature_design
from repro.dse.explorer import DesignSpaceExplorer
from repro.ir.operators import DataFormat
from repro.simulation.framebuffer_baseline import FrameBufferArchitecture
from repro.synth.fpga_device import VIRTEX2P_XC2VP30, VIRTEX6_XC6VLX760
from repro.utils.tables import Table

from _support import print_banner

ITERATIONS = 20      # the literature comparison uses a 20-iteration convolution


def explore(device, frame):
    explorer = DesignSpaceExplorer(
        get_algorithm("conv3x3").kernel(),
        device=device,
        data_format=DataFormat.FIXED16,
        window_sides=(2, 4, 6, 8),
        max_depth=4,
        max_cones_per_depth=12,
    )
    return explorer.explore(ITERATIONS, *frame)


@pytest.mark.benchmark(group="sec41")
def test_sec41_igf_vs_literature(benchmark):
    cope = literature_design("cope_convolution")

    results = {}

    def run_comparison():
        results["v2p_1024"] = explore(VIRTEX2P_XC2VP30, (1024, 768))
        results["v2p_fhd"] = explore(VIRTEX2P_XC2VP30, (1920, 1080))
        results["v6_1024"] = explore(VIRTEX6_XC6VLX760, (1024, 768))
        return results

    benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    v2p_1024 = results["v2p_1024"].best_fitting_point()
    v2p_fhd = results["v2p_fhd"].best_fitting_point()
    v6_1024 = results["v6_1024"].best_fitting_point()
    framebuffer = FrameBufferArchitecture(
        get_algorithm("conv3x3").kernel(), VIRTEX2P_XC2VP30,
        DataFormat.FIXED16).evaluate(1024, 768, ITERATIONS)

    print_banner("Section 4.1 — 20-iteration 3x3 convolution vs the literature")
    table = Table(["implementation", "device", "frame", "fps"])
    table.add_row(["Cope [16] (manual)", "XC2VP30", "1024x768", cope.fps((1024, 768))])
    table.add_row(["Cope [16] (manual)", "XC2VP30", "1920x1080", cope.fps((1920, 1080))])
    table.add_row(["frame-buffer baseline", "XC2VP30", "1024x768",
                   round(framebuffer.frames_per_second, 2)])
    table.add_row(["cone flow (this repo)", "XC2VP30", "1024x768",
                   round(v2p_1024.frames_per_second, 2)])
    table.add_row(["cone flow (this repo)", "XC2VP30", "1920x1080",
                   round(v2p_fhd.frames_per_second, 2)])
    table.add_row(["cone flow (this repo)", "XC6VLX760", "1024x768",
                   round(v6_1024.frames_per_second, 2)])
    table.add_row(["paper's flow (published)", "XC6VLX760", "1024x768",
                   literature_design("paper_cone_igf").fps((1024, 768))])
    print(table)

    # Shape checks.  The headline relation of Section 4.1 — the automatically
    # generated architecture on a modern FPGA far exceeds the hand design on
    # the old device — holds; the secondary claim (beating the hand design on
    # the *same* Virtex-II Pro) does not reproduce under our conservative
    # tile-cascade model, because on a 27k-LUT device only a single small cone
    # fits and the halo recomputation of 20 iterations dominates.  See
    # EXPERIMENTS.md (E7) for the discussion of this deviation.
    assert v6_1024.frames_per_second > 1.3 * cope.fps((1024, 768))
    assert v6_1024.frames_per_second > 20.0
    assert v6_1024.frames_per_second > 3 * v2p_1024.frames_per_second
    # bigger frames are proportionally slower on the same device
    assert v2p_fhd.frames_per_second < v2p_1024.frames_per_second
    # the old-device cone design stays within an order of magnitude of the
    # published manual figure even in this pessimistic setting
    assert v2p_1024.frames_per_second > cope.fps((1024, 768)) / 15.0
