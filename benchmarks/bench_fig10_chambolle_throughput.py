"""Figure 10 — Chambolle throughput vs output-window area on the Virtex-6.

Key qualitative claim of the paper: the best solution is *not* the one with
the largest output window (9x9) but the 8x8 one, because two instances of the
8x8 cone fit on the device where only one 9x9 instance does.
"""

import pytest

from repro.flow.report import throughput_table

from _support import best_fps, print_banner


@pytest.mark.benchmark(group="fig10")
def test_fig10_chambolle_throughput(benchmark, chambolle_exploration):
    exploration = chambolle_exploration
    depths = (1, 2, 3, 4, 5)
    windows = tuple(sorted({p.architecture.window_side
                            for p in exploration.design_points}))

    def sweep():
        return {(w, d): best_fps(exploration, w, d)
                for w in windows for d in depths}

    fps = benchmark.pedantic(sweep, rounds=3, iterations=1)

    print_banner("Figure 10 — Chambolle throughput (fps) vs output window area, "
                 "XC6VLX760, 11 iterations, 1024x768")
    print(throughput_table(exploration, depths=depths))

    best_8x8 = max(fps[(8, d)] for d in depths)
    best_9x9 = max(fps[(9, d)] for d in depths)
    peak = max(fps.values())
    print(f"peak throughput  : {peak:.2f} fps (paper: ~24 fps best on device)")
    print(f"best 8x8 solution: {best_8x8:.2f} fps   best 9x9 solution: {best_9x9:.2f} fps")
    count_8 = max((p.cone_count for p in exploration.design_points
                   if p.architecture.window_side == 8 and p.fits_device),
                  default=0)
    count_9 = max((p.cone_count for p in exploration.design_points
                   if p.architecture.window_side == 9 and p.fits_device),
                  default=0)
    print(f"cone instances that fit: {count_8} (8x8) vs {count_9} (9x9)")

    # shape checks
    assert 5.0 < peak < 80.0
    # The paper's qualitative point for this figure: the largest window is not
    # automatically the best, because instance count on the device matters.
    # More 8x8 instances fit than 9x9 instances, and for at least one depth the
    # 8x8 solution matches or beats the 9x9 one.  (With the synthetic operator
    # cost model the overall best lands within a few percent of either window;
    # see EXPERIMENTS.md for the discussion.)
    assert count_8 > count_9
    assert any(fps[(8, d)] >= fps[(9, d)] for d in depths if fps[(9, d)] > 0)
    assert abs(best_8x8 - best_9x9) / best_9x9 < 0.25
    # throughput grows with the window area for shallow depths
    assert fps[(8, 1)] > fps[(3, 1)] > fps[(1, 1)]
