"""Figure 7 — IGF throughput vs output-window area on the Virtex-6 XC6VLX760.

Paper claims reproduced in shape: throughput grows (non-monotonically) with
the output window area; cone depths that divide the iteration count (1, 2, 5
for 10 iterations) outperform the ones that do not (3, 4), because the
remainder iterations need an additional dedicated cone; the best
configurations reach the order of 100 fps on a 1024x768 frame.
"""

import pytest

from repro.flow.report import throughput_table
from _support import print_banner


def best_fps(exploration, window, depth):
    points = [p for p in exploration.design_points
              if p.architecture.window_side == window
              and p.primary_depth == depth and p.fits_device]
    return max((p.frames_per_second for p in points), default=0.0)


@pytest.mark.benchmark(group="fig07")
def test_fig07_igf_throughput(benchmark, igf_exploration, igf_explorer):
    exploration = igf_exploration
    depths = (1, 2, 3, 4, 5)
    windows = tuple(sorted({p.architecture.window_side
                            for p in exploration.design_points}))

    def sweep():
        return {(w, d): best_fps(exploration, w, d)
                for w in windows for d in depths}

    fps = benchmark.pedantic(sweep, rounds=3, iterations=1)

    print_banner("Figure 7 — IGF throughput (fps) vs output window area, "
                 "XC6VLX760, 10 iterations, 1024x768")
    print(throughput_table(exploration, depths=depths))

    peak = max(fps.values())
    print(f"peak throughput: {peak:.1f} fps (paper: ~110 fps)")

    divisor_best = max(fps[(9, d)] for d in (1, 2, 5))
    non_divisor_best = max(fps[(9, d)] for d in (3, 4))
    print(f"window 81: best divisor depth {divisor_best:.1f} fps, "
          f"best non-divisor depth {non_divisor_best:.1f} fps")

    # shape checks
    assert 40.0 < peak < 400.0
    # throughput grows with the window area for the shallow depths
    for depth in (1, 2):
        assert fps[(9, depth)] > fps[(3, depth)] > fps[(1, depth)]
    # divisors of the iteration count beat non-divisors (Figure 7 discussion)
    assert divisor_best > non_divisor_best
    # the trend is not monotone everywhere (the paper points this out)
    non_monotone = any(fps[(windows[i + 1], d)] < fps[(windows[i], d)]
                       for d in depths for i in range(len(windows) - 1)
                       if fps[(windows[i], d)] > 0)
    assert non_monotone
