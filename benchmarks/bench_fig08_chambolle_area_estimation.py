"""Figure 8 — Chambolle area estimation: actual vs Equation-1 estimate.

Paper accuracy: maximum error 6.36 %, average error 2.19 %.  Same structure
as Figure 5, on the algorithm with the more complex data dependencies
(two-component dual field, division and square root in the datapath).
"""

import pytest

from repro.estimation.area_model import CalibrationPoint, RegisterAreaModel
from repro.utils.tables import Table

from _support import print_banner


def _estimate_all_depths(exploration, library):
    estimates = {}
    for depth in sorted({d for _, d in exploration.characterizations}):
        family = sorted((w for w, dd in exploration.characterizations if dd == depth))
        registers = {w * w: exploration.characterization(w, depth).register_count
                     for w in family}
        calibration = [
            CalibrationPoint(w * w,
                             exploration.characterization(w, depth).register_count,
                             exploration.characterization(w, depth).actual_area_luts)
            for w in family[:2]
        ]
        model = RegisterAreaModel(library)
        model.calibrate(calibration)
        estimates[depth] = {e.key: e.estimated_area_luts
                            for e in model.estimate_series(registers)}
    return estimates


@pytest.mark.benchmark(group="fig08")
def test_fig08_chambolle_area_estimation(benchmark, chambolle_exploration,
                                         chambolle_explorer):
    exploration = chambolle_exploration

    estimates = benchmark.pedantic(
        _estimate_all_depths, args=(exploration, chambolle_explorer.library),
        rounds=3, iterations=1)

    print_banner("Figure 8 — Chambolle area estimation "
                 "(slice LUTs vs output window area)")
    depths = sorted({d for _, d in exploration.characterizations})
    windows = sorted({w for w, _ in exploration.characterizations})
    table = Table(["window area"]
                  + [f"d{d} actual" for d in depths]
                  + [f"d{d} estimated" for d in depths])
    for window in windows:
        row = [window * window]
        for depth in depths:
            row.append(round(exploration.characterization(window, depth).actual_area_luts))
        for depth in depths:
            row.append(round(estimates[depth][window * window]))
        table.add_row(row)
    print(table)

    errors = []
    for depth, validation in sorted(exploration.area_validations.items()):
        print(f"depth {depth}: max error {validation.max_error_percent:.2f}%, "
              f"mean error {validation.mean_error_percent:.2f}%")
        errors.extend(validation.errors_percent)
    max_error = max(errors)
    mean_error = sum(errors) / len(errors)
    print(f"overall: max {max_error:.2f}% (paper 6.36%), "
          f"mean {mean_error:.2f}% (paper 2.19%)")

    # shape checks: errors stay small even for the div/sqrt-heavy datapath
    assert max_error < 12.0
    assert mean_error < 5.0
    # Chambolle cones are larger than IGF cones of the same shape (more
    # state components and costlier operators), reflected in absolute areas
    assert exploration.characterization(9, 5).actual_area_luts > 200_000
