"""Session-scoped fixtures for the benchmark harness.

The expensive artefact — the full cone characterisation and design-space
exploration of each case study — is computed once per session and shared by
the figure benches, which then time the stage the figure is actually about
(area estimation, Pareto extraction, throughput evaluation, ...) and print
the series the figure plots.  See DESIGN.md for the experiment index.
"""

from __future__ import annotations

import pytest

from _support import CHAMBOLLE_ITERATIONS, FRAME, IGF_ITERATIONS, make_explorer


@pytest.fixture(scope="session")
def igf_explorer():
    return make_explorer("blur")


@pytest.fixture(scope="session")
def igf_exploration(igf_explorer):
    return igf_explorer.explore(IGF_ITERATIONS, *FRAME)


@pytest.fixture(scope="session")
def chambolle_explorer():
    return make_explorer("chamb")


@pytest.fixture(scope="session")
def chambolle_exploration(chambolle_explorer):
    return chambolle_explorer.explore(CHAMBOLLE_ITERATIONS, *FRAME)
