"""Shared helpers for the benchmark harness (imported by the bench modules)."""

from __future__ import annotations

from repro.algorithms import get_algorithm
from repro.dse.explorer import DesignSpaceExplorer
from repro.ir.operators import DataFormat

#: Frame size used throughout Section 4 of the paper.
FRAME = (1024, 768)
IGF_ITERATIONS = 10
CHAMBOLLE_ITERATIONS = 11


def make_explorer(algorithm: str) -> DesignSpaceExplorer:
    """Build the full-space explorer used by the Section 4 experiments."""
    spec = get_algorithm(algorithm)
    return DesignSpaceExplorer(
        spec.kernel(),
        data_format=DataFormat.FIXED16,
        window_sides=(1, 2, 3, 4, 5, 6, 7, 8, 9),
        max_depth=5,
        max_cones_per_depth=16,
        synthesize_all=True,
    )


def print_banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def best_fps(exploration, window: int, depth: int) -> float:
    """Best device-fitting frame rate for one (window, primary depth) pair."""
    points = [p for p in exploration.design_points
              if p.architecture.window_side == window
              and p.primary_depth == depth and p.fits_device]
    return max((p.frames_per_second for p in points), default=0.0)
