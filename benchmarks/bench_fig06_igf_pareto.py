"""Figure 6 — IGF Pareto curve (time per frame vs kLUTs) for a 1024x768 frame.

The benchmark times the Pareto-set extraction over the full design-point set
(the paper: "an exhaustive search that typically requires the evaluation of a
few hundreds of solutions") and prints the regenerated curve.
"""

import pytest

from repro.dse.pareto import is_dominated, pareto_front
from repro.flow.report import pareto_table

from _support import print_banner


@pytest.mark.benchmark(group="fig06")
def test_fig06_igf_pareto_curve(benchmark, igf_exploration):
    exploration = igf_exploration

    front = benchmark.pedantic(pareto_front, args=(exploration.design_points,),
                               rounds=5, iterations=1)

    print_banner("Figure 6 — IGF Pareto curve (1024x768)")
    print(f"design points evaluated: {len(exploration.design_points)}")
    print(f"Pareto-optimal points  : {len(front)}")
    print(pareto_table(front))

    # shape checks: a real trade-off curve spanning orders of magnitude
    assert len(exploration.design_points) >= 300
    assert 5 <= len(front) <= 100
    areas = [p.area_luts for p in front]
    times = [p.seconds_per_frame for p in front]
    assert areas == sorted(areas)
    assert times == sorted(times, reverse=True)
    assert times[0] / times[-1] > 50          # slowest vs fastest
    for a in front:
        assert not any(is_dominated(a, b) for b in front if b is not a)
