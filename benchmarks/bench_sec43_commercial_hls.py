"""Section 4.3 — evaluation of commercial HLS tools on the IGF.

Paper findings reproduced: the best directive combination reaches only about
0.14 fps on a 1024x768 frame; enabling loop merging fails because of the
inter-iteration dependencies; pipelining plus full loop flattening aborts
with an out-of-memory error on a 16 GB synthesis host; and the cone flow is
orders of magnitude faster than anything the generic tool produces.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.baselines.commercial_hls import (
    CommercialHlsTool,
    HlsConfiguration,
    HlsStatus,
)
from repro.utils.tables import Table

from _support import FRAME, IGF_ITERATIONS, print_banner


@pytest.mark.benchmark(group="sec43")
def test_sec43_commercial_hls_tools(benchmark, igf_exploration):
    tool = CommercialHlsTool(get_algorithm("blur").kernel())

    configurations = [
        ("baseline (no directives)", HlsConfiguration()),
        ("unroll x8", HlsConfiguration(unroll_factor=8)),
        ("pipeline", HlsConfiguration(pipeline=True)),
        ("pipeline + partition x8",
         HlsConfiguration(pipeline=True, array_partition_factor=8, unroll_factor=8)),
        ("loop merge", HlsConfiguration(loop_merge=True)),
        ("pipeline + flatten",
         HlsConfiguration(pipeline=True, loop_flatten=True)),
    ]

    def sweep():
        results = [(name, tool.run(config, *FRAME, IGF_ITERATIONS))
                   for name, config in configurations]
        best = tool.best_configuration(*FRAME, IGF_ITERATIONS)
        return results, best

    (results, best) = benchmark.pedantic(sweep, rounds=3, iterations=1)

    print_banner("Section 4.3 — commercial HLS tools on the IGF (1024x768, 10 iterations)")
    table = Table(["directive set", "status", "fps"])
    for name, result in results:
        fps = f"{result.frames_per_second:.3f}" if result.succeeded else "-"
        table.add_row([name, result.status.value, fps])
    print(table)
    print(f"best feasible configuration: {best.configuration.describe()} at "
          f"{best.frames_per_second:.3f} fps (paper: 0.14 fps)")

    cone_best = igf_exploration.best_fitting_point()
    speedup = cone_best.frames_per_second / best.frames_per_second
    print(f"cone flow best on device   : {cone_best.frames_per_second:.1f} fps "
          f"-> {speedup:.0f}x over the commercial tool")

    by_name = dict(results)
    # the three qualitative findings of Section 4.3
    assert by_name["loop merge"].status is HlsStatus.LOOP_MERGE_FAILED
    assert by_name["pipeline + flatten"].status is HlsStatus.OUT_OF_MEMORY
    assert 0.02 < best.frames_per_second < 1.5
    # headline claim: orders of magnitude
    assert speedup > 100.0
