"""Figure 9 — Chambolle Pareto curve (time per frame vs kLUTs), 1024x768."""

import pytest

from repro.dse.pareto import is_dominated, pareto_front
from repro.flow.report import pareto_table

from _support import print_banner


@pytest.mark.benchmark(group="fig09")
def test_fig09_chambolle_pareto_curve(benchmark, chambolle_exploration):
    exploration = chambolle_exploration

    front = benchmark.pedantic(pareto_front, args=(exploration.design_points,),
                               rounds=5, iterations=1)

    print_banner("Figure 9 — Chambolle Pareto curve (1024x768)")
    print(f"design points evaluated: {len(exploration.design_points)}")
    print(f"Pareto-optimal points  : {len(front)}")
    print(pareto_table(front))

    assert len(exploration.design_points) >= 300
    assert 5 <= len(front) <= 100
    areas = [p.area_luts for p in front]
    times = [p.seconds_per_frame for p in front]
    assert areas == sorted(areas)
    assert times == sorted(times, reverse=True)
    for a in front:
        assert not any(is_dominated(a, b) for b in front if b is not a)
    # Chambolle needs more area than the IGF for the same time-per-frame
    # band, so its curve sits higher/right: the cheapest Chambolle point is
    # larger than a few kLUTs.
    assert min(areas) > 1000
