"""Section 4.2 (text) — Chambolle vs the hand-optimised design of Akin et al. [19].

Paper comparison: the manual architecture (several months of design work)
reaches 38 fps at 1024x768 and 99 fps at 512x512; the automatically generated
cone architectures reach 24 fps and 72 fps respectively — i.e. the same order
of magnitude, with no manual effort.  The reproduction checks that ordering
and ratio band.
"""

import pytest

from repro.baselines.manual_designs import literature_design
from repro.utils.tables import Table

from _support import CHAMBOLLE_ITERATIONS, print_banner


@pytest.mark.benchmark(group="sec42")
def test_sec42_chambolle_vs_literature(benchmark, chambolle_explorer,
                                       chambolle_exploration):
    manual = literature_design("akin_chambolle")
    published = literature_design("paper_cone_chambolle")

    # 1024x768 comes from the shared session exploration; 512x512 reuses the
    # cached cone characterisations, so the benchmark times only the
    # architecture-space evaluation for the second frame size.
    def explore_small():
        return chambolle_explorer.explore(CHAMBOLLE_ITERATIONS, 512, 512)

    small = benchmark.pedantic(explore_small, rounds=1, iterations=1)
    large = chambolle_exploration

    best_large = large.best_fitting_point()
    best_small = small.best_fitting_point()

    print_banner("Section 4.2 — Chambolle vs the manual design of Akin et al. [19]")
    table = Table(["implementation", "frame", "fps"])
    table.add_row(["Akin et al. [19] (manual, months of work)", "1024x768",
                   manual.fps((1024, 768))])
    table.add_row(["Akin et al. [19] (manual, months of work)", "512x512",
                   manual.fps((512, 512))])
    table.add_row(["cone flow (this repo, automatic)", "1024x768",
                   round(best_large.frames_per_second, 2)])
    table.add_row(["cone flow (this repo, automatic)", "512x512",
                   round(best_small.frames_per_second, 2)])
    table.add_row(["paper's flow (published)", "1024x768",
                   published.fps((1024, 768))])
    table.add_row(["paper's flow (published)", "512x512",
                   published.fps((512, 512))])
    print(table)

    # shape checks: same order of magnitude as the manual design, and the
    # smaller frame is proportionally faster.
    ratio_large = best_large.frames_per_second / manual.fps((1024, 768))
    ratio_small = best_small.frames_per_second / manual.fps((512, 512))
    assert 0.2 < ratio_large < 2.0
    assert 0.2 < ratio_small < 2.0
    assert best_small.frames_per_second > 2.0 * best_large.frames_per_second
    # and the real-time threshold discussion: the automatic design is within
    # reach of 30 fps at 1024x768 (the paper reports 24 fps)
    assert best_large.frames_per_second > 10.0
