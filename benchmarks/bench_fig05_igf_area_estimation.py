"""Figure 5 — IGF area estimation: actual vs Equation-1 estimate.

Paper series: slice LUTs vs output-window area, one curve per cone depth
(1-5 iterations), estimated from two reference syntheses per depth.  Paper
accuracy: maximum error 6.58 %, average error 2.93 %.  The benchmark times
the calibration + estimation step (the thing the paper claims is cheap) and
prints the regenerated series plus the error statistics.
"""

import pytest

from repro.estimation.area_model import CalibrationPoint, RegisterAreaModel
from repro.utils.tables import Table

from _support import IGF_ITERATIONS, print_banner


def _estimate_all_depths(exploration, library):
    """Re-run Equation 1 for every depth family from two syntheses each."""
    estimates = {}
    for depth in sorted({d for _, d in exploration.characterizations}):
        family = sorted((w for w, dd in exploration.characterizations if dd == depth))
        registers = {w * w: exploration.characterization(w, depth).register_count
                     for w in family}
        calibration = [
            CalibrationPoint(w * w,
                             exploration.characterization(w, depth).register_count,
                             exploration.characterization(w, depth).actual_area_luts)
            for w in family[:2]
        ]
        model = RegisterAreaModel(library)
        model.calibrate(calibration)
        estimates[depth] = {e.key: e.estimated_area_luts
                            for e in model.estimate_series(registers)}
    return estimates


@pytest.mark.benchmark(group="fig05")
def test_fig05_igf_area_estimation(benchmark, igf_exploration, igf_explorer):
    exploration = igf_exploration

    estimates = benchmark.pedantic(
        _estimate_all_depths, args=(exploration, igf_explorer.library),
        rounds=3, iterations=1)

    print_banner("Figure 5 — IGF area estimation (slice LUTs vs output window area)")
    depths = sorted({d for _, d in exploration.characterizations})
    table = Table(["window area"]
                  + [f"d{d} actual" for d in depths]
                  + [f"d{d} estimated" for d in depths])
    windows = sorted({w for w, _ in exploration.characterizations})
    for window in windows:
        row = [window * window]
        for depth in depths:
            row.append(round(exploration.characterization(window, depth).actual_area_luts))
        for depth in depths:
            row.append(round(estimates[depth][window * window]))
        table.add_row(row)
    print(table)

    errors = []
    for depth, validation in sorted(exploration.area_validations.items()):
        print(f"depth {depth}: max error {validation.max_error_percent:.2f}%, "
              f"mean error {validation.mean_error_percent:.2f}%")
        errors.extend(validation.errors_percent)
    max_error = max(errors)
    mean_error = sum(errors) / len(errors)
    print(f"overall: max {max_error:.2f}% (paper 6.58%), "
          f"mean {mean_error:.2f}% (paper 2.93%)")
    print(f"syntheses needed for the estimate: 2 per depth "
          f"({2 * len(depths)} of {len(exploration.characterizations)} cones)")

    # shape checks: single-digit-ish accuracy, low mean error
    assert max_error < 12.0
    assert mean_error < 5.0
    # area grows with window area and with depth
    for depth in depths:
        series = [exploration.characterization(w, depth).actual_area_luts
                  for w in windows]
        assert series == sorted(series)
