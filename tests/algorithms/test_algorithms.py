"""Unit tests for the case-study algorithm definitions and the registry."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHMS,
    get_algorithm,
    list_algorithms,
    convolution_3x3_kernel,
)
from repro.algorithms.gaussian import CENTER_COEFF, CORNER_COEFF, EDGE_COEFF
from repro.frontend.extractor import extract_kernel_from_c
from repro.frontend.semantic import validate_kernel
from repro.simulation.frame import FrameSet
from repro.simulation.golden import GoldenExecutor


class TestRegistry:
    def test_paper_case_studies_registered(self):
        assert "blur" in ALGORITHMS
        assert "chamb" in ALGORITHMS
        assert get_algorithm("blur").paper_section == "4.1"
        assert get_algorithm("chamb").paper_section == "4.2"

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            get_algorithm("does-not-exist")

    def test_list_algorithms_sorted(self):
        names = list_algorithms()
        assert names == sorted(names)
        assert len(names) >= 6

    def test_every_spec_builds_a_valid_kernel(self):
        for name in list_algorithms():
            spec = get_algorithm(name)
            kernel = spec.kernel()
            properties = validate_kernel(kernel)
            assert properties.is_domain_narrow
            assert spec.default_iterations >= 1

    def test_c_sources_extract_when_present(self):
        for name in list_algorithms():
            spec = get_algorithm(name)
            if spec.c_source is None:
                continue
            kernel = extract_kernel_from_c(spec.c_source)
            assert kernel.radius == spec.kernel().radius


class TestGaussianCoefficients:
    def test_kernel_is_normalised(self):
        total = CENTER_COEFF + 4 * EDGE_COEFF + 4 * CORNER_COEFF
        assert total == pytest.approx(1.0)

    def test_dsl_and_c_versions_produce_same_result(self):
        spec = get_algorithm("blur")
        dsl_kernel = spec.kernel()
        c_kernel = extract_kernel_from_c(spec.c_source)
        frames = FrameSet.for_kernel(dsl_kernel, 12, 12, seed=21)
        a = GoldenExecutor(dsl_kernel).run(frames, 3)["f"].data
        b = GoldenExecutor(c_kernel).run(
            FrameSet.for_kernel(c_kernel, 12, 12, seed=21), 3)["f"].data
        np.testing.assert_allclose(a, b)


class TestChambolle:
    def test_dsl_and_c_versions_agree(self):
        spec = get_algorithm("chamb")
        dsl_kernel = spec.kernel()
        c_kernel = extract_kernel_from_c(spec.c_source)
        rng = np.random.default_rng(22)
        initial = {"p": rng.normal(0, 0.2, (2, 10, 10)),
                   "g": rng.random((10, 10))}
        frames_dsl = FrameSet.for_kernel(dsl_kernel, 10, 10, initial=initial)
        frames_c = FrameSet.for_kernel(c_kernel, 10, 10, initial=initial)
        a = GoldenExecutor(dsl_kernel).run(frames_dsl, 2)["p"].data
        b = GoldenExecutor(c_kernel).run(frames_c, 2)["p"].data
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_denoising_effect_on_dual_divergence(self):
        """After Chambolle iterations the reconstruction u = g - lambda*div(p)
        is smoother than the noisy observation."""
        kernel = get_algorithm("chamb").kernel()
        rng = np.random.default_rng(0)
        clean = np.zeros((24, 24))
        clean[:, 12:] = 1.0
        noisy = clean + rng.normal(0, 0.15, clean.shape)
        frames = FrameSet.for_kernel(kernel, 24, 24,
                                     initial={"g": noisy,
                                              "p": np.zeros((2, 24, 24))})
        result = GoldenExecutor(kernel).run(frames, 30)
        p = result["p"].data
        div = np.zeros_like(noisy)
        div += p[0] - np.roll(p[0], 1, axis=1)
        div += p[1] - np.roll(p[1], 1, axis=0)
        reconstruction = noisy - 0.1 * div
        clean_grad = np.abs(np.diff(reconstruction, axis=0)).sum()
        noisy_grad = np.abs(np.diff(noisy, axis=0)).sum()
        assert clean_grad < noisy_grad


class TestConvolution:
    def test_requires_nine_coefficients(self):
        with pytest.raises(ValueError):
            convolution_3x3_kernel(coefficients=(1.0, 2.0))

    def test_custom_coefficients_used(self):
        identity = convolution_3x3_kernel(
            coefficients=(0, 0, 0, 0, 1.0, 0, 0, 0, 0), name="ident")
        frames = FrameSet.for_kernel(identity, 8, 8, seed=23)
        result = GoldenExecutor(identity).run(frames, 4)
        np.testing.assert_allclose(result["f"].data, frames["f"].data)


class TestMorphology:
    def test_iterated_erosion_equals_large_structuring_element(self):
        kernel = get_algorithm("erode").kernel()
        frames = FrameSet.for_kernel(kernel, 16, 16, seed=24)
        result = GoldenExecutor(kernel).run(frames, 2)["f"].data[0]
        data = frames["f"].data[0]
        # two 3x3 erosions == one 5x5 erosion (checked at an interior pixel)
        y, x = 8, 8
        assert result[y, x] == pytest.approx(data[y - 2:y + 3, x - 2:x + 3].min())

    def test_dilation_is_dual_of_erosion(self):
        erode = get_algorithm("erode").kernel()
        dilate = get_algorithm("dilate").kernel()
        frames = FrameSet.for_kernel(erode, 12, 12, seed=25)
        neg = FrameSet.for_kernel(dilate, 12, 12,
                                  initial={"f": -frames["f"].data[0]})
        eroded = GoldenExecutor(erode).run(frames, 2)["f"].data
        dilated_neg = GoldenExecutor(dilate).run(neg, 2)["f"].data
        np.testing.assert_allclose(eroded, -dilated_neg)


class TestJacobiAndHeat:
    def test_jacobi_converges_towards_harmonic_interior(self):
        kernel = get_algorithm("jacobi").kernel()
        height = width = 16
        u0 = np.zeros((height, width))
        u0[0, :] = 1.0   # boundary condition encoded in the initial frame edge
        frames = FrameSet.for_kernel(kernel, height, width,
                                     initial={"u": u0,
                                              "rhs": np.zeros((height, width))})
        result = GoldenExecutor(kernel).run(frames, 50)["u"].data[0]
        residual_initial = np.abs(np.diff(u0, 2, axis=0)).mean()
        residual_final = np.abs(np.diff(result, 2, axis=0)).mean()
        assert residual_final < residual_initial

    def test_heat_diffusion_reduces_peak(self):
        kernel = get_algorithm("heat").kernel()
        t0 = np.zeros((16, 16))
        t0[8, 8] = 10.0
        frames = FrameSet.for_kernel(kernel, 16, 16, initial={"t": t0})
        result = GoldenExecutor(kernel).run(frames, 10)["t"].data[0]
        assert result[8, 8] < 10.0
        assert result.max() < 10.0
        assert result[8, 8] == result.max()
