"""Server/transport tests: HTTP endpoint, client parity, lifecycle events,
timeouts/cancellation, graceful shutdown, registry integration, CLI submit."""

import hashlib
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Session, Workload
from repro.api.cli import main as cli_main
from repro.api.registry import create_backend, list_backends
from repro.service import (
    JobCancelledError,
    JobTimeoutError,
    ReproClient,
    ReproServer,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


def digest(result):
    return hashlib.sha256(json.dumps(result.to_dict(),
                                     sort_keys=True).encode()).hexdigest()


@pytest.fixture()
def http_server():
    server = ReproServer()
    host, port = server.serve_http("127.0.0.1", 0)
    yield server, f"http://{host}:{port}"
    server.close(drain=False)


class TestHttpTransport:
    def test_submit_result_round_trip_digest_identical(self, http_server):
        _server, url = http_server
        reference_digest = digest(Session().run(workload()))
        client = ReproClient(url)
        handle = client.submit(workload(), priority="interactive")
        result = handle.result(timeout=60)
        assert digest(result) == reference_digest
        assert handle.status()["state"] == "done"

    def test_http_coalescing_visible_in_receipts(self, http_server):
        server, url = http_server
        client = ReproClient(url)
        # hold the dispatcher off with a queued long-priority job? no:
        # submit twice back-to-back; the second either coalesces (still
        # in flight) or is served from the session cache — both must
        # yield identical digests and the same job semantics
        first = client.submit(workload())
        second = client.submit(workload())
        assert digest(first.result(timeout=60)) == digest(
            second.result(timeout=60))
        assert server.queue.stats_snapshot()["submitted"] == 2

    def test_healthz_stats_and_routes(self, http_server):
        _server, url = http_server
        client = ReproClient(url)
        health = client.healthz()
        assert health["ok"] and health["state"] == "serving"
        stats = client.stats()
        for key in ("state", "queue", "scheduler", "session", "store",
                    "shared_table", "uptime_s"):
            assert key in stats
        assert stats["store"] is None  # storeless server
        assert stats["shared_table"]["capacity"] >= 1

    def test_unknown_job_and_unknown_route(self, http_server):
        _server, url = http_server
        client = ReproClient(url)
        with pytest.raises(UnknownJobError):
            client.status("job-404")
        request = urllib.request.Request(url + "/no-such-route")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 404

    def test_malformed_submit_is_a_400(self, http_server):
        _server, url = http_server
        request = urllib.request.Request(
            url + "/submit", data=b'{"workload": {"bogus": 1}}',
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_bad_url_scheme_rejected(self):
        with pytest.raises(ValueError):
            ReproClient("ftp://example.org")


class TestLifecycleEvents:
    def test_job_events_stream_through_session_protocol(self):
        events = []
        server = ReproServer(start=False,
                             on_event=lambda event: events.append(event))
        try:
            client = ReproClient(server)
            handle = client.submit(workload())
            client.submit(workload())  # coalesces
            server.start()
            handle.result(timeout=60)
            kinds = [event.kind for event in events]
            assert "job-queued" in kinds
            assert "job-coalesced" in kinds
            assert "job-started" in kinds
            assert "job-finished" in kinds
            # the session's own stage events ride the same callback
            assert "stage-finished" in kinds
            queued = next(e for e in events if e.kind == "job-queued")
            assert queued.detail == handle.id
        finally:
            server.close(drain=False)


class TestTimeoutsAndCancellation:
    def test_queued_job_times_out_before_dispatch(self):
        server = ReproServer(start=False)
        try:
            client = ReproClient(server)
            handle = client.submit(workload(), timeout_s=0.0)
            time.sleep(0.02)
            server.start()
            with pytest.raises(JobTimeoutError):
                handle.result(timeout=10)
            assert handle.status()["state"] == "timeout"
        finally:
            server.close(drain=False)

    def test_result_wait_timeout_is_not_terminal(self):
        server = ReproServer(start=False)  # nothing will run
        try:
            client = ReproClient(server)
            handle = client.submit(workload())
            with pytest.raises(JobTimeoutError) as excinfo:
                handle.result(timeout=0.05)
            assert not getattr(excinfo.value, "terminal", True)
            assert handle.status()["state"] == "queued"
        finally:
            server.close(drain=False)

    def test_cancel_releases_queued_job(self):
        server = ReproServer(start=False)
        try:
            client = ReproClient(server)
            handle = client.submit(workload())
            receipt = handle.cancel()
            assert receipt["state"] == "cancelled"
            assert receipt["still_running"] is False
            with pytest.raises(JobCancelledError):
                handle.result(timeout=5)
        finally:
            server.close(drain=False)

    def test_cancel_over_http(self, http_server):
        server, url = http_server
        # park the dispatcher behind a slow-ish job so the target stays
        # queued long enough to cancel deterministically: simpler — stop
        # accepting by cancelling right after submitting on a paused
        # scheduler is not possible here (fixture starts it), so accept
        # either a queued-cancel or a lost race with completion
        client = ReproClient(url)
        handle = client.submit(workload(frame_width=272))
        receipt = client.cancel(handle.id)
        assert receipt["state"] in ("cancelled", "running", "done")


class TestGracefulShutdown:
    def test_drain_completes_queued_work(self):
        server = ReproServer(start=False)
        client = ReproClient(server)
        handles = [client.submit(workload(frame_width=256 + 16 * i))
                   for i in range(3)]
        server.start()
        server.close(drain=True)
        for handle in handles:
            assert handle.result(timeout=5).design_points
        assert server.healthz()["state"] == "stopped"

    def test_submissions_rejected_while_draining(self):
        server = ReproServer()
        server.close(drain=True)
        with pytest.raises(ServiceClosedError):
            server.submit(workload())

    def test_http_shutdown_drains_and_stops_listener(self, http_server):
        server, url = http_server
        client = ReproClient(url)
        handle = client.submit(workload())
        assert client.shutdown(drain=True)["ok"]
        # the in-flight job still completes during the drain
        assert server.queue.job(handle.id).wait(30)
        server.close()
        with pytest.raises(ServiceError):
            ReproClient(url).healthz()

    def test_context_manager_closes(self):
        with ReproServer() as server:
            assert ReproClient(server).healthz()["ok"]
        assert server.healthz()["state"] == "stopped"


class TestRegistryIntegration:
    def test_service_kind_lists_local_backend(self):
        assert "local" in list_backends("service")["service"]

    def test_create_backend_builds_a_server(self):
        server = create_backend("service", "local", start=False,
                                max_batch=4)
        try:
            assert isinstance(server, ReproServer)
            assert server.scheduler.stats_snapshot()["max_batch"] == 4
        finally:
            server.close(drain=False)

    def test_session_and_store_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ReproServer(session=Session(), store="/tmp/somewhere",
                        start=False)


class TestCliSubmit:
    def test_cli_submit_against_live_server(self, http_server, capsys):
        _server, url = http_server
        status = cli_main([
            "submit", "blur", "--server", url, "--frame", "320x240",
            "--iterations", "4", "--windows", "1,2,3", "--max-depth", "2",
            "--max-cones", "3", "--priority", "interactive", "--json",
        ])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exploration"]["design_points"]

    def test_cli_submit_no_wait_prints_job_id(self, http_server, capsys):
        _server, url = http_server
        status = cli_main([
            "submit", "blur", "--server", url, "--frame", "320x240",
            "--iterations", "4", "--windows", "1,2,3", "--max-depth", "2",
            "--max-cones", "3", "--no-wait",
        ])
        assert status == 0
        assert capsys.readouterr().out.strip().startswith("job-")

    def test_cli_submit_unreachable_server_fails_cleanly(self, capsys):
        status = cli_main([
            "submit", "blur", "--server", "http://127.0.0.1:9",
            "--frame", "320x240", "--iterations", "4",
        ])
        assert status == 1
        assert "cannot reach" in capsys.readouterr().err
