"""Unit tests for the service job records and the coalescing queue."""

import threading
import time

import pytest

from repro.api import Workload
from repro.service import (
    JobQueue,
    PRIORITY_CLASSES,
    ServiceClosedError,
    UnknownJobError,
    parse_priority,
    priority_name,
)
from repro.service.jobs import JobTimeoutError


SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


class TestPriorities:
    def test_names_map_to_numbers(self):
        assert parse_priority("interactive") < parse_priority("batch")
        assert parse_priority("batch") < parse_priority("background")
        assert parse_priority(None) == PRIORITY_CLASSES["batch"]
        assert parse_priority(" Interactive ") == 0
        assert parse_priority(2) == PRIORITY_CLASSES["background"]

    def test_round_trip_names(self):
        for name, number in PRIORITY_CLASSES.items():
            assert priority_name(parse_priority(name)) == name
            assert parse_priority(number) == number

    @pytest.mark.parametrize("bad", ["urgent", 7, -1, True, 1.5])
    def test_unknown_priorities_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_priority(bad)


class TestCoalescing:
    def test_identical_workloads_share_one_job(self):
        queue = JobQueue()
        first, coalesced_first = queue.submit(workload())
        second, coalesced_second = queue.submit(workload())
        assert first is second
        assert not coalesced_first and coalesced_second
        assert first.requesters == 2 and first.coalesced == 1
        stats = queue.stats_snapshot()
        assert stats["submitted"] == 2 and stats["coalesced"] == 1
        assert stats["coalesce_hit_rate"] == pytest.approx(0.5)

    def test_distinct_workloads_do_not_coalesce(self):
        queue = JobQueue()
        a, _ = queue.submit(workload())
        b, coalesced = queue.submit(workload(frame_width=640))
        assert a is not b and not coalesced

    def test_coalescing_onto_a_running_job(self):
        queue = JobQueue()
        job, _ = queue.submit(workload())
        [running] = queue.drain_batch(max_batch=4)
        assert running is job and job.state == "running"
        again, coalesced = queue.submit(workload())
        assert coalesced and again is job

    def test_terminal_jobs_do_not_coalesce(self):
        queue = JobQueue()
        job, _ = queue.submit(workload())
        [job] = queue.drain_batch(max_batch=1)
        queue.finish(job, result="sentinel")
        fresh, coalesced = queue.submit(workload())
        assert fresh is not job and not coalesced


class TestPriorityOrder:
    def test_drain_is_priority_then_submission_order(self):
        queue = JobQueue()
        low, _ = queue.submit(workload(frame_width=100), "background")
        mid, _ = queue.submit(workload(frame_width=200), "batch")
        high, _ = queue.submit(workload(frame_width=300), "interactive")
        mid2, _ = queue.submit(workload(frame_width=400), "batch")
        assert queue.drain_batch(max_batch=10) == [high]
        assert queue.drain_batch(max_batch=10) == [mid, mid2]
        assert queue.drain_batch(max_batch=10) == [low]

    def test_batch_respects_max_batch(self):
        queue = JobQueue()
        jobs = [queue.submit(workload(frame_width=100 + i), "batch")[0]
                for i in range(5)]
        first = queue.drain_batch(max_batch=3)
        assert first == jobs[:3]
        assert all(job.batch_size == 3 for job in first)
        assert queue.drain_batch(max_batch=3) == jobs[3:]

    def test_coalesced_resubmission_promotes_priority(self):
        queue = JobQueue()
        slow, _ = queue.submit(workload(frame_width=100), "background")
        other, _ = queue.submit(workload(frame_width=200), "batch")
        promoted, coalesced = queue.submit(workload(frame_width=100),
                                           "interactive")
        assert coalesced and promoted is slow
        assert queue.drain_batch(max_batch=1) == [slow]


class TestCancellation:
    def test_last_requester_cancels_queued_job(self):
        queue = JobQueue()
        job, _ = queue.submit(workload())
        assert queue.cancel(job.id) is False
        assert job.state == "cancelled" and job.done()
        assert queue.pending_count() == 0

    def test_coalesced_job_survives_one_cancel(self):
        queue = JobQueue()
        job, _ = queue.submit(workload())
        queue.submit(workload())
        assert queue.cancel(job.id) is True
        assert job.state == "queued"
        assert queue.drain_batch(max_batch=1) == [job]

    def test_running_job_cannot_be_cancelled(self):
        queue = JobQueue()
        job, _ = queue.submit(workload())
        queue.drain_batch(max_batch=1)
        assert queue.cancel(job.id) is True
        assert job.state == "running"

    def test_unknown_job_raises(self):
        with pytest.raises(UnknownJobError):
            JobQueue().job("job-404")


class TestTimeouts:
    def test_expired_queued_job_is_never_dispatched(self):
        queue = JobQueue()
        doomed, _ = queue.submit(workload(frame_width=100), timeout_s=0.0)
        live, _ = queue.submit(workload(frame_width=200))
        time.sleep(0.01)
        assert queue.drain_batch(max_batch=4) == [live]
        assert doomed.state == "timeout"
        assert isinstance(doomed.error, JobTimeoutError)
        assert queue.stats_snapshot()["timed_out"] == 1

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            JobQueue().submit(workload(), timeout_s=-1)

    def test_coalesced_tight_timeout_cannot_expire_patient_requesters(self):
        """One requester's small timeout_s must never time the shared job
        out for a requester that asked for no (or a longer) deadline."""
        queue = JobQueue()
        job, _ = queue.submit(workload())            # unbounded requester
        queue.submit(workload(), timeout_s=0.0)      # impatient follower
        assert job.deadline is None                  # stays unbounded
        time.sleep(0.01)
        assert queue.drain_batch(max_batch=1) == [job]

    def test_coalescing_keeps_the_most_patient_deadline(self):
        queue = JobQueue()
        job, _ = queue.submit(workload(), timeout_s=0.0)
        queue.submit(workload(), timeout_s=60.0)     # extends the deadline
        assert job.timeout_s == 60.0
        assert queue.drain_batch(max_batch=1) == [job]
        unbounded_job, _ = queue.submit(workload(frame_width=200),
                                        timeout_s=0.0)
        queue.submit(workload(frame_width=200))      # clears the deadline
        assert unbounded_job.deadline is None

    def test_idle_drain_honours_wait_timeout(self):
        queue = JobQueue()
        started = time.monotonic()
        assert queue.drain_batch(max_batch=1, wait_timeout=0.05) == []
        assert time.monotonic() - started < 2.0


class TestBatchWindow:
    def test_linger_survives_early_wakeups(self):
        """The linger window must wait out its full duration (not return
        on the first submit's notify), so a staggered burst lands in one
        batch instead of a size-2 batch plus stragglers."""
        queue = JobQueue()
        queue.submit(workload(frame_width=100))
        batch_holder = []

        def drain():
            batch_holder.append(queue.drain_batch(max_batch=16,
                                                  linger_s=0.6))

        drainer = threading.Thread(target=drain)
        drainer.start()
        # stagger three more submissions into the open window; each one
        # notifies the queue condition — a single-wait implementation
        # would seal the batch after the first
        for index in range(3):
            time.sleep(0.1)
            queue.submit(workload(frame_width=200 + index))
        drainer.join(timeout=5.0)
        assert not drainer.is_alive()
        assert len(batch_holder[0]) == 4

    def test_linger_seals_early_once_the_batch_is_full(self):
        queue = JobQueue()
        for index in range(3):
            queue.submit(workload(frame_width=100 + index))
        started = time.monotonic()
        batch = queue.drain_batch(max_batch=3, linger_s=30.0)
        assert len(batch) == 3
        assert time.monotonic() - started < 5.0


class TestShutdown:
    def test_closed_queue_rejects_submissions(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(ServiceClosedError):
            queue.submit(workload())

    def test_drain_after_close_empties_then_signals_exit(self):
        queue = JobQueue()
        job, _ = queue.submit(workload())
        queue.close()
        assert queue.drain_batch(max_batch=1) == [job]
        queue.finish(job, result=None)
        assert queue.drain_batch(max_batch=1) is None

    def test_close_cancel_pending_releases_waiters(self):
        queue = JobQueue()
        job, _ = queue.submit(workload())
        released = threading.Event()

        def wait():
            job.wait(5.0)
            released.set()

        waiter = threading.Thread(target=wait)
        waiter.start()
        queue.close(cancel_pending=True)
        assert released.wait(5.0)
        waiter.join()
        assert job.state == "cancelled"
        assert queue.drain_batch(max_batch=1) is None
