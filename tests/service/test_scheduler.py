"""Scheduler tests: coalescing determinism, batched dispatch, priorities.

Carries the ISSUE 5 acceptance criteria: 16 concurrent identical
submissions trigger exactly one exploration with every served result
digest-identical to a direct ``Session.run``, and a mixed 4-device x
2-format burst is dispatched as one batched ``run_many`` call instead of
per-job serial runs.
"""

import hashlib
import json
import threading

import pytest

from repro.api import Session, Workload
from repro.api.registry import list_devices
from repro.ir.operators import DataFormat
from repro.service import JobFailedError, ReproClient, ReproServer

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


def digest(result):
    return hashlib.sha256(json.dumps(result.to_dict(),
                                     sort_keys=True).encode()).hexdigest()


@pytest.fixture()
def paused_server():
    """A server whose dispatcher has not started: submissions pile up
    deterministically, then ``start()`` releases the burst at once."""
    server = ReproServer(start=False)
    yield server
    server.close(drain=False)


class TestCoalescingDeterminism:
    def test_16_identical_submissions_one_exploration(self, paused_server):
        """ISSUE 5 acceptance: N identical in-flight submits share one
        computation and every served result is digest-identical to a
        direct ``Session.run``."""
        reference = Session().run(workload())
        reference_digest = digest(reference)
        expected_runs = Session()
        expected_runs.run(workload())
        single_run_synthesis = expected_runs.stats.synthesis_runs

        client = ReproClient(paused_server)
        handles = []
        lock = threading.Lock()
        barrier = threading.Barrier(16)

        def submit():
            barrier.wait()
            handle = client.submit(workload(), priority="interactive")
            with lock:
                handles.append(handle)

        threads = [threading.Thread(target=submit) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # all 16 landed before dispatch: exactly one queued computation
        assert sum(handle.coalesced for handle in handles) == 15
        queue_stats = paused_server.queue.stats_snapshot()
        assert queue_stats["submitted"] == 16
        assert queue_stats["coalesced"] == 15
        assert queue_stats["coalesce_hit_rate"] == pytest.approx(15 / 16)
        assert queue_stats["pending"] == 1

        paused_server.start()
        results = [handle.result(timeout=60) for handle in handles]
        assert all(digest(result) == reference_digest
                   for result in results)
        # one exploration: the shared session synthesized exactly as much
        # as a single direct run, and ran exactly one workload
        stats = paused_server.session.stats
        assert stats.synthesis_runs == single_run_synthesis
        assert stats.workloads_run == 1

    def test_duplicate_job_ids_share_identity(self, paused_server):
        client = ReproClient(paused_server)
        first = client.submit(workload())
        second = client.submit(workload())
        assert first.id == second.id
        assert not first.coalesced and second.coalesced


class TestBatchedDispatch:
    def test_mixed_device_format_burst_is_batched(self, paused_server):
        """ISSUE 5 acceptance: a 4-device x 2-format burst rides >= 1
        batched ``run_many`` dispatch, and the served results are
        byte-identical to a direct ``Session.run_many``."""
        devices = sorted(list_devices())[:4]
        assert len(devices) == 4
        burst = [workload(device=device, data_format=data_format)
                 for device in devices
                 for data_format in (DataFormat.FIXED16,
                                     DataFormat.FIXED32)]
        reference = Session().run_many(burst)
        reference_digests = [digest(result) for result in reference]

        client = ReproClient(paused_server)
        handles = [client.submit(each) for each in burst]
        paused_server.start()
        results = [handle.result(timeout=120) for handle in handles]
        assert [digest(result) for result in results] == reference_digests

        scheduler_stats = paused_server.scheduler.stats_snapshot()
        # one dispatch took the whole burst through run_many, not 8
        # serial single-job dispatches
        assert scheduler_stats["batched_dispatches"] >= 1
        assert scheduler_stats["largest_batch"] == len(burst)
        assert scheduler_stats["batches"] == 1
        assert scheduler_stats["recent_batch_sizes"] == [len(burst)]

    def test_singleton_dispatches_still_complete(self):
        server = ReproServer()
        try:
            client = ReproClient(server)
            result = client.run(workload(), timeout=60)
            assert result.design_points
            assert server.scheduler.stats_snapshot()["jobs_completed"] == 1
        finally:
            server.close()


class TestPriorityScheduling:
    def test_mixed_priority_burst_completes_in_priority_order(
            self, paused_server):
        finished = []
        paused_server.on_event(
            lambda event: finished.append(event.workload.frame_width)
            if event.kind == "job-finished" else None)
        client = ReproClient(paused_server)
        by_priority = {
            "background": [workload(frame_width=310 + i) for i in range(2)],
            "batch": [workload(frame_width=320 + i) for i in range(2)],
            "interactive": [workload(frame_width=330 + i)
                            for i in range(2)],
        }
        handles = {}
        for priority, workloads in by_priority.items():
            for each in workloads:
                handles[each.frame_width] = client.submit(each,
                                                          priority=priority)
        paused_server.start()
        for handle in handles.values():
            handle.result(timeout=120)
        expected = ([w.frame_width for w in by_priority["interactive"]]
                    + [w.frame_width for w in by_priority["batch"]]
                    + [w.frame_width for w in by_priority["background"]])
        assert finished == expected


class TestFailureAttribution:
    def test_poisoned_batch_member_fails_alone(self, paused_server):
        client = ReproClient(paused_server)
        good = client.submit(workload(frame_width=352))
        # an unknown backend name resolves (and fails) only inside run():
        # the job must fail individually without poisoning its batch
        bad = client.submit(workload(frame_width=368,
                                     synthesizer="no-such-backend"))
        also_good = client.submit(workload(frame_width=384))
        paused_server.start()
        assert good.result(timeout=60).design_points
        assert also_good.result(timeout=60).design_points
        with pytest.raises(JobFailedError, match="no-such-backend"):
            bad.result(timeout=60)
        assert bad.status()["state"] == "failed"
        stats = paused_server.scheduler.stats_snapshot()
        assert stats["jobs_failed"] == 1
        assert stats["jobs_completed"] == 2

    def test_failing_singleton_is_not_replayed(self):
        """A batch of one failing job must fail directly — not pay the
        broken pipeline a second time in the attribution replay."""
        server = ReproServer()
        try:
            client = ReproClient(server)
            handle = client.submit(workload(synthesizer="no-such-backend"))
            with pytest.raises(JobFailedError, match="no-such-backend"):
                handle.result(timeout=60)
            # one failed run, not two (a replay would double the counter)
            assert server.session.stats.workloads_failed == 1
        finally:
            server.close(drain=False)
