"""Satellite-surface tests: Prometheus rendering, the bounded queue's
shed path, and the client's deterministic shed-retry backoff."""

import math

import pytest

from repro.api import Workload
from repro.service import (
    JobQueue,
    QueueFullError,
    ReproClient,
    ReproServer,
    render_prometheus,
)
from repro.service.metrics import METRICS_CONTENT_TYPE
from repro.service.queue import (
    SHED_RETRY_AFTER_BASE_S,
    SHED_RETRY_AFTER_CAP_S,
    SHED_RETRY_AFTER_PER_JOB_S,
)

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


class TestRenderPrometheus:
    def test_flattens_nested_mappings_with_sorted_keys(self):
        text = render_prometheus({"queue": {"pending": 3, "running": 1},
                                  "uptime_s": 1.5})
        assert text.index("repro_queue_pending 3") \
            < text.index("repro_queue_running 1") \
            < text.index("repro_uptime_s 1.5")
        assert "# TYPE repro_queue_pending gauge" in text
        assert text.endswith("\n")

    def test_skips_labels_and_non_finite_samples(self):
        text = render_prometheus({
            "state": "serving",           # string: a label, not a sample
            "fleet": None,
            "members": ["a", "b"],
            "bad": float("nan"),
            "worse": float("inf"),
            "ok": 2,
        })
        assert text == "# TYPE repro_ok gauge\nrepro_ok 2\n"

    def test_booleans_render_as_integers(self):
        text = render_prometheus({"ok": True, "store_shared": False})
        assert "repro_ok 1" in text and "repro_store_shared 0" in text

    def test_names_are_sanitized(self):
        text = render_prometheus({"workers": {"worker-0": {"jobs": 4}},
                                  "0day": 1})
        assert "repro_workers_worker_0_jobs 4" in text
        assert "repro_0day 1" in text

    def test_content_type_is_the_prometheus_text_format(self):
        assert METRICS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in METRICS_CONTENT_TYPE

    def test_server_metrics_cover_every_stats_layer(self):
        server = ReproServer(start=False)
        try:
            text = server.metrics_text()
            for name in ("repro_queue_submitted", "repro_queue_shed",
                         "repro_session_synthesis_runs",
                         "repro_scheduler_batches",
                         "repro_uptime_s"):
                assert name in text, f"missing {name}"
        finally:
            server.close(drain=False)


class TestBoundedQueue:
    def test_unbounded_by_default(self):
        queue = JobQueue()
        for index, name in enumerate(["blur", "erode", "dilate"]):
            queue.submit(workload(name))
        assert queue.stats_snapshot()["max_pending"] is None
        assert queue.stats_snapshot()["shed"] == 0

    def test_bound_validated(self):
        with pytest.raises(ValueError):
            JobQueue(max_pending=0)

    def test_saturation_sheds_with_a_deterministic_hint(self):
        queue = JobQueue(max_pending=2)
        queue.submit(workload("blur"))
        queue.submit(workload("erode"))
        with pytest.raises(QueueFullError) as caught:
            queue.submit(workload("dilate"))
        expected = min(SHED_RETRY_AFTER_CAP_S,
                       SHED_RETRY_AFTER_BASE_S
                       + 2 * SHED_RETRY_AFTER_PER_JOB_S)
        assert caught.value.retry_after_s == pytest.approx(expected)
        snapshot = queue.stats_snapshot()
        assert snapshot["shed"] == 1
        # a shed submission is not a submission (coalesce-rate semantics)
        assert snapshot["submitted"] == 2

    def test_coalescing_is_admitted_even_when_full(self):
        # attaching to in-flight work adds no load; shedding it would
        # punish exactly the duplicate the queue exists to absorb
        queue = JobQueue(max_pending=1)
        job, coalesced = queue.submit(workload())
        again, coalesced_again = queue.submit(workload())
        assert not coalesced and coalesced_again
        assert again.id == job.id

    def test_hint_caps_at_the_ceiling(self):
        queue = JobQueue(max_pending=120)
        for index in range(120):
            queue.submit(workload(frame_width=320 + index))
        with pytest.raises(QueueFullError) as caught:
            queue.submit(workload(frame_width=999_999))
        assert caught.value.retry_after_s == SHED_RETRY_AFTER_CAP_S


class TestClientBackoff:
    def test_same_seed_backs_off_identically(self):
        server = ReproServer(start=False)
        try:
            a = ReproClient(server, retry_jitter_seed=7)
            b = ReproClient(server, retry_jitter_seed=7)
            c = ReproClient(server, retry_jitter_seed=8)
            sequence_a = [a._backoff_delay(i, None) for i in range(5)]
            sequence_b = [b._backoff_delay(i, None) for i in range(5)]
            sequence_c = [c._backoff_delay(i, None) for i in range(5)]
            assert sequence_a == sequence_b
            assert sequence_a != sequence_c  # distinct seeds de-sync
        finally:
            server.close(drain=False)

    def test_delay_honors_hint_floor_cap_and_jitter_band(self):
        server = ReproServer(start=False)
        try:
            client = ReproClient(server, backoff_base_s=0.25,
                                 backoff_cap_s=4.0)
            for attempt in range(8):
                for hint in (None, 0.5, 2.0, 60.0):
                    delay = client._backoff_delay(attempt, hint)
                    exponential = 0.25 * (2 ** attempt)
                    floored = (exponential if hint is None
                               else max(exponential, hint))
                    full = min(floored, 4.0)
                    assert 0.5 * full <= delay <= full
        finally:
            server.close(drain=False)

    def test_negative_retries_rejected(self):
        server = ReproServer(start=False)
        try:
            with pytest.raises(ValueError):
                ReproClient(server, retries=-1)
        finally:
            server.close(drain=False)
