"""End-to-end tests for the ``validate`` job class: in-process and HTTP
submission, result typing and JSON round-trip, kind-aware coalescing, job-kind
parsing, fleet routing, and the CLI ``validate`` verb."""

import json

import pytest

from repro.api import Session, ValidationResult, Workload
from repro.api.cli import main as cli_main
from repro.fleet import FleetRouter
from repro.service import ReproClient, ReproServer, parse_job_kind

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=96, frame_height=64)


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


@pytest.fixture()
def http_server():
    server = ReproServer()
    host, port = server.serve_http("127.0.0.1", 0)
    yield server, f"http://{host}:{port}"
    server.close(drain=False)


class TestJobKindParsing:
    def test_default_is_explore(self):
        assert parse_job_kind(None) == "explore"

    def test_normalises_case_and_whitespace(self):
        assert parse_job_kind("  Validate ") == "validate"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            parse_job_kind("fuzz")

    def test_non_string_kind_rejected(self):
        with pytest.raises(ValueError, match="invalid job kind"):
            parse_job_kind(7)


class TestInProcessValidateJob:
    def test_submit_returns_validation_result(self):
        server = ReproServer()
        try:
            client = ReproClient(server)
            handle = client.submit(workload(), job="validate")
            result = handle.result(timeout=60)
            assert isinstance(result, ValidationResult)
            assert result.passed
            assert result.max_abs_error == 0.0
            assert handle.status()["kind"] == "validate"
        finally:
            server.close(drain=False)

    def test_matches_direct_session_validate(self):
        reference = Session().validate(workload())
        server = ReproServer()
        try:
            result = ReproClient(server).submit(
                workload(), job="validate").result(timeout=60)
            assert result == reference
        finally:
            server.close(drain=False)

    def test_explore_job_unaffected(self):
        server = ReproServer()
        try:
            result = ReproClient(server).submit(
                workload(), job="explore").result(timeout=60)
            assert not isinstance(result, ValidationResult)
            assert result.exploration.design_points
        finally:
            server.close(drain=False)


class TestKindAwareCoalescing:
    def test_identical_validate_jobs_coalesce(self):
        server = ReproServer(start=False)  # hold dispatch so both queue
        try:
            client = ReproClient(server)
            first = client.submit(workload(), job="validate")
            second = client.submit(workload(), job="validate")
            assert second.status()["coalesced"]
            server.start()
            assert first.result(timeout=60) == second.result(timeout=60)
            assert server.queue.stats_snapshot()["coalesced"] == 1
        finally:
            server.close(drain=False)

    def test_validate_never_coalesces_with_explore(self):
        server = ReproServer(start=False)
        try:
            client = ReproClient(server)
            explore = client.submit(workload(), job="explore")
            validate = client.submit(workload(), job="validate")
            assert not validate.status()["coalesced"]
            server.start()
            assert isinstance(validate.result(timeout=60), ValidationResult)
            assert not isinstance(explore.result(timeout=60),
                                  ValidationResult)
            assert server.queue.stats_snapshot()["coalesced"] == 0
        finally:
            server.close(drain=False)


class TestHttpValidateJob:
    def test_http_round_trip_equals_in_process(self, http_server):
        _server, url = http_server
        reference = Session().validate(workload())
        handle = ReproClient(url).submit(workload(), job="validate")
        result = handle.result(timeout=60)
        assert isinstance(result, ValidationResult)
        # from_dict(to_dict()) over the wire must reconstruct the exact
        # evidence the server-side session produced
        assert result == reference
        assert handle.status()["kind"] == "validate"

    def test_json_round_trip_is_lossless(self, http_server):
        _server, url = http_server
        result = ReproClient(url).submit(
            workload(), job="validate").result(timeout=60)
        rebuilt = ValidationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result

    def test_bad_job_kind_is_a_400(self, http_server):
        _server, url = http_server
        with pytest.raises(Exception) as excinfo:
            ReproClient(url).submit(workload(), job="fuzz")
        assert "unknown job kind" in str(excinfo.value)


class TestFleetValidateJob:
    def test_fleet_routes_validate_job(self):
        with FleetRouter.local(2, healthcheck_interval_s=0) as fleet:
            client = ReproClient(fleet)
            handle = client.submit(workload(), job="validate")
            result = handle.result(timeout=120)
            assert isinstance(result, ValidationResult)
            assert result.passed
            assert handle.status()["kind"] == "validate"


class TestCliValidate:
    ARGS = ["--frame", "96x64", "--iterations", "4", "--windows", "1,2,3",
            "--max-depth", "2", "--max-cones", "3"]

    def test_validate_verb_prints_pass_summary(self, capsys):
        status = cli_main(["validate", "blur", "--quiet"] + self.ARGS)
        assert status == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_validate_verb_json_payload(self, capsys):
        status = cli_main(["validate", "blur", "--json", "--quiet"]
                          + self.ARGS)
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_abs_error"] == 0.0
        assert ValidationResult.from_dict(payload).passed

    def test_submit_job_validate_against_live_server(self, http_server,
                                                     capsys):
        _server, url = http_server
        status = cli_main(["submit", "blur", "--server", url,
                           "--job", "validate"] + self.ARGS)
        assert status == 0
        assert "PASS" in capsys.readouterr().out
